//! # data-market-platform
//!
//! Facade crate for the full-system Rust reproduction of *Data Market
//! Platforms: Trading Data Assets to Solve Data Problems* (Fernandez,
//! Subramaniam, Franklin — PVLDB 13(11), 2020).
//!
//! Re-exports every subsystem crate under one roof:
//!
//! ```
//! use data_market_platform as dmp;
//! let rel = dmp::relation::RelationBuilder::new("quickstart")
//!     .column("k", dmp::relation::DataType::Int)
//!     .row(vec![dmp::relation::Value::Int(1)])
//!     .build()
//!     .unwrap();
//! assert_eq!(rel.len(), 1);
//! ```
//!
//! See the `examples/` directory for end-to-end walkthroughs and
//! DESIGN.md / EXPERIMENTS.md for the paper-reproduction map.

pub use dmp_core as core;
pub use dmp_discovery as discovery;
pub use dmp_integration as integration;
pub use dmp_mechanism as mechanism;
pub use dmp_privacy as privacy;
pub use dmp_relation as relation;
pub use dmp_service as service;
pub use dmp_simulator as simulator;
pub use dmp_tasks as tasks;
pub use dmp_telemetry as telemetry;
pub use dmp_valuation as valuation;
