//! The seller platform's privacy path (§4.2): a dataset with PII is
//! refused at registration; the seller releases a differentially private
//! version instead, spending from a declared ε budget, and the
//! privacy–value trade-off shows up in the price the data fetches.
//!
//! ```text
//! cargo run --release --example private_seller
//! ```

use data_market_platform::core::error::MarketError;
use data_market_platform::core::market::{DataMarket, MarketConfig};
use data_market_platform::mechanism::design::MarketDesign;
use data_market_platform::mechanism::wtp::PriceCurve;
use data_market_platform::privacy::dp::DpParams;
use data_market_platform::relation::{DataType, RelationBuilder, Value};

fn main() {
    let market = DataMarket::new(
        MarketConfig::external(9).with_design(MarketDesign::posted_price_baseline(15.0)),
    );
    let hospital = market.seller("hospital");

    // A patient table with emails: the PII detector refuses it outright.
    let mut b = RelationBuilder::new("patients")
        .column("contact", DataType::Str)
        .column("stay_days", DataType::Int);
    for i in 0..200 {
        b = b.row(vec![
            Value::str(format!("patient{i}@clinic.example")),
            Value::Int((i % 14) as i64 + 1),
        ]);
    }
    let raw = b.build().unwrap();
    match hospital.share(raw.clone()) {
        Err(MarketError::RegistrationRefused(msg)) => {
            println!("raw share refused: {msg}");
        }
        other => println!("unexpected: {other:?}"),
    }

    // The safe path: drop the contact column, Laplace-perturb the numeric
    // column with ε = 1.0 out of a declared budget of 2.0.
    let deidentified = raw.project(&["stay_days"]).unwrap().named("patients_safe");
    let id = hospital
        .share_private(deidentified, &["stay_days"], DpParams::new(1.0, 1.0), 2.0)
        .expect("private release accepted");
    println!("private release registered as {id} (epsilon 1.0 of 2.0 budget)");

    // A research buyer asks for aggregate completeness over stay lengths.
    let buyer = market.buyer("research-lab");
    buyer.deposit(100.0);
    buyer
        .wtp(["stay_days"])
        .aggregate_completeness("stay_days", 14)
        .price_curve(PriceCurve::Linear {
            min_satisfaction: 0.3,
            max_price: 50.0,
        })
        .submit()
        .unwrap();
    let report = market.run_round();
    println!(
        "sale: {} transaction(s), revenue {:.2}",
        report.sales.len(),
        report.revenue
    );

    // Accountability (§4.2): the seller sees exactly what happened.
    let acct = hospital.accountability(id).unwrap();
    println!(
        "accountability: mashups {:?}, revenue {:.2}, privacy spent {:.2}",
        acct.mashups, acct.revenue, acct.privacy_spent
    );
    // The audit chain records the privacy release for the regulator.
    assert!(market.audit_log().verify_chain());
    println!(
        "audit events touching {id}: {}",
        market.audit_log().events_for_dataset(id).len()
    );
}
