//! Serve a durable, sharded market over a real TCP socket and drive it
//! with concurrent HTTP clients — the platform boundary around the
//! paper's DMMS: every mutation is journaled before it is applied, so
//! the market state survives a crash (`snapshot + journal replay`).
//!
//! ```text
//! cargo run --release --example serve
//! ```

use std::sync::Arc;

use data_market_platform::core::market::MarketConfig;
use data_market_platform::mechanism::design::MarketDesign;
use data_market_platform::service::client::Client;
use data_market_platform::service::gateway::{Gateway, GatewayConfig};
use data_market_platform::service::node::{ServiceConfig, ServiceNode};
use data_market_platform::service::shard::fnv1a;
use data_market_platform::service::wire::Json;

const SHARDS: usize = 4;

fn main() {
    // 1. Open a durable node: journal + snapshots live in `dir`.
    let dir = std::env::temp_dir().join(format!("dmp-serve-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let market = MarketConfig::external(7).with_design(MarketDesign::posted_price_baseline(20.0));
    let cfg = ServiceConfig::new(&dir, market).with_shards(SHARDS);
    let node = Arc::new(ServiceNode::open(cfg).expect("open service node"));

    // 2. Put the HTTP gateway in front of it (ephemeral port).
    let gateway =
        Gateway::serve(Arc::clone(&node), GatewayConfig::default()).expect("bind gateway");
    let addr = gateway.addr();
    println!("market gateway listening on http://{addr}");
    println!("journal + snapshots in {}", dir.display());

    // 3. Four concurrent clients, each running a seller/buyer session
    //    over the wire: enroll → ask → offer.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let buyer = format!("analytics-{i}");
                // Offers match within a shard, so give each buyer a
                // co-located seller (cross-shard trades: see ROADMAP).
                let shard = fnv1a(buyer.as_bytes()) % SHARDS as u64;
                let seller = (0..)
                    .map(|j| format!("sensor-net-{i}-{j}"))
                    .find(|n| fnv1a(n.as_bytes()) % SHARDS as u64 == shard)
                    .unwrap();

                c.post(
                    "/enroll",
                    &Json::obj([
                        ("name", Json::str(seller.clone())),
                        ("role", Json::str("seller")),
                    ]),
                )
                .expect("enroll seller");
                c.post(
                    "/enroll",
                    &Json::obj([
                        ("name", Json::str(buyer.clone())),
                        ("role", Json::str("buyer")),
                        ("deposit", Json::Num(200.0)),
                    ]),
                )
                .expect("enroll buyer");
                c.post(
                    "/asks",
                    &Json::parse(&format!(
                        r#"{{"seller":"{seller}","table":{{"name":"readings-{i}",
                            "columns":[["site","str"],["pm25","float"]],
                            "rows":[["river",12.1],["hill",8.4],["dock",16.9]]}},
                            "reserve":2.0}}"#
                    ))
                    .unwrap(),
                )
                .expect("post ask");
                c.post(
                    "/offers",
                    &Json::parse(&format!(
                        r#"{{"buyer":"{buyer}","attributes":["site","pm25"],
                            "curve":{{"kind":"linear","min_satisfaction":0.5,"max_price":60}}}}"#
                    ))
                    .unwrap(),
                )
                .expect("post offer");
                (buyer, seller)
            })
        })
        .collect();
    let sessions: Vec<(String, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    println!("4 concurrent sessions enrolled, asked and offered");

    // 4. One admin client clears the market and reads the ledger back.
    let mut admin = Client::connect(addr).expect("connect admin");
    let rounds = admin
        .post("/rounds", &Json::parse(r#"{"rounds":1}"#).unwrap())
        .expect("run round");
    let round = &rounds.req_arr("rounds").unwrap()[0];
    println!(
        "round {}: {} sale(s), revenue {:.2}, fees {:.2} (merged across {SHARDS} shards)",
        round.req_u64("round").unwrap(),
        round.req_u64("sales").unwrap(),
        round.req_f64("revenue").unwrap(),
        round.req_f64("fees").unwrap(),
    );
    for (buyer, seller) in &sessions {
        let b = admin.get(&format!("/ledger/{buyer}")).expect("read buyer");
        let s = admin
            .get(&format!("/ledger/{seller}"))
            .expect("read seller");
        println!(
            "  {buyer}: {:.2} credits | {seller}: {:.2} credits",
            b.req_f64("balance").unwrap(),
            s.req_f64("balance").unwrap(),
        );
    }

    // 5. Checkpoint and show durability state.
    admin
        .post("/snapshot", &Json::Obj(Vec::new()))
        .expect("snapshot");
    let health = admin.get("/health").expect("health");
    println!(
        "health: applied={} round={} — journal + snapshot on disk; \
         restart this process against the same dir to recover bit-identically",
        health.req_u64("applied").unwrap(),
        health.req_u64("round").unwrap(),
    );

    // 6. Scrape the Prometheus exposition over the wire and lint it —
    //    CI runs this example, so a malformed exposition fails there.
    let exposition = admin.get_text("/metrics").expect("scrape /metrics");
    data_market_platform::telemetry::lint_exposition(&exposition)
        .expect("malformed /metrics exposition");
    println!(
        "scraped /metrics: {} series across {} families, exposition lints clean",
        exposition
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .count(),
        exposition
            .lines()
            .filter(|l| l.starts_with("# TYPE"))
            .count(),
    );

    gateway.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
