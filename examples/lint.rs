//! Tour of the dmp-lint rulebook: every rule, the invariant it guards,
//! an offending snippet, and the fix — then a live demonstration of the
//! pass catching a violation and honoring an annotated suppression.
//!
//! ```text
//! cargo run --example lint
//! ```
//!
//! The real pass runs as `cargo run -p dmp-lint -- --deny-all` (CI) and
//! as the `workspace_is_lint_clean` test under `cargo test`.

use dmp_lint::{explain, lint_source, summarize, MODULE_MAP, RULES};

fn main() {
    // 1. The rulebook: each rule with its offending snippet and fix.
    println!("=== dmp-lint rulebook ({} rules) ===\n", RULES.len());
    for info in RULES {
        println!("{}", explain(info));
    }

    // 2. The module map: which paths carry which obligations.
    println!("=== module map ({} entries) ===\n", MODULE_MAP.len());
    for entry in MODULE_MAP {
        println!("  {}\n    -> {}\n", entry.pattern, entry.why);
    }

    // 3. Live: lint a replay-critical snippet with one violation and
    //    one annotated suppression.
    let src = "\
use std::collections::BTreeMap;

pub fn tally(xs: &[(u64, u64)]) -> u64 {
    let mut m = std::collections::HashMap::new();
    for &(k, v) in xs {
        *m.entry(k).or_insert(0) += v;
    }
    // dmp-lint: allow(det-wall-clock) -- latency telemetry only, never applied state
    let _started = std::time::Instant::now();
    m.len() as u64
}
";
    println!("=== live pass over a replay-critical snippet ===\n");
    let findings = lint_source("crates/core/src/market.rs", src);
    for f in &findings {
        println!("  {}", f.render());
    }
    println!("\n{}", summarize(&findings));
    println!("\nThe HashMap fires; the annotated Instant::now does not.");
}
