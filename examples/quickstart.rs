//! Quickstart: deploy a data market, share a dataset, buy it, and watch
//! the money flow back to the seller.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use data_market_platform::core::market::{DataMarket, MarketConfig};
use data_market_platform::mechanism::design::MarketDesign;
use data_market_platform::mechanism::wtp::PriceCurve;
use data_market_platform::relation::{DataType, RelationBuilder, Value};

fn main() {
    // 1. Deploy a market: external (money) with a posted-price design.
    let market = DataMarket::new(
        MarketConfig::external(7).with_design(MarketDesign::posted_price_baseline(25.0)),
    );

    // 2. A seller shares a small weather dataset.
    let seller = market.seller("weather-co");
    let mut b = RelationBuilder::new("city_temps")
        .column("city", DataType::Str)
        .column("temp_c", DataType::Float);
    for (city, t) in [
        ("chicago", 3.5),
        ("boston", 1.0),
        ("austin", 21.0),
        ("seattle", 9.5),
    ] {
        b = b.row(vec![Value::str(city), Value::Float(t)]);
    }
    let dataset = seller
        .share(b.build().expect("valid rows"))
        .expect("no PII");
    println!("seller registered dataset {dataset}");

    // 3. A buyer states its need through a WTP-function: the attributes
    //    it wants and what a satisfying mashup is worth to it.
    let buyer = market.buyer("analytics-inc");
    buyer.deposit(100.0);
    let offer = buyer
        .wtp(["city", "temp_c"])
        .price_curve(PriceCurve::Linear {
            min_satisfaction: 0.5,
            max_price: 60.0,
        })
        .submit()
        .expect("offer accepted");
    println!("buyer submitted offer {offer}");

    // 4. The arbiter runs a market round: discovery, mashup building,
    //    WTP evaluation, pricing, settlement, revenue sharing.
    let report = market.run_round();
    println!(
        "round {}: {} sale(s), revenue {:.2}",
        report.round,
        report.sales.len(),
        report.revenue
    );

    // 5. Inspect outcomes.
    for d in buyer.deliveries() {
        println!("buyer received mashup with {} rows:", d.relation.len());
        println!("{}", d.relation);
    }
    println!("seller balance: {:.2}", seller.balance());
    println!("buyer balance:  {:.2}", buyer.balance());
    let acct = seller.accountability(dataset).expect("own dataset");
    println!(
        "accountability: sold in {:?}, total revenue {:.2}",
        acct.mashups, acct.revenue
    );
    assert!(market.audit_log().verify_chain(), "audit chain intact");
    println!(
        "audit chain verified ({} entries)",
        market.audit_log().len()
    );
}
