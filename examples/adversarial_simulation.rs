//! Market-design simulation under adversarial behavior (§6.1, Fig. 1
//! (3)): before deploying a design, test it against shading buyers,
//! colluders, spammers, overpricers and faulty sellers.
//!
//! ```text
//! cargo run --release --example adversarial_simulation
//! ```

use data_market_platform::mechanism::design::MarketDesign;
use data_market_platform::simulator::report::{f2, pct, render_table};
use data_market_platform::simulator::scenario::Scenario;

fn main() {
    let mut rows = Vec::new();
    for (name, design) in [
        (
            "posted-price(20)",
            MarketDesign::posted_price_baseline(20.0),
        ),
        ("rsop digital-goods", MarketDesign::external_revenue(21)),
        ("vickrey-reserve", MarketDesign::scarce_licenses(3, 10.0)),
    ] {
        for frac in [0.0, 0.3, 0.6] {
            let result = Scenario::adversarial(17, frac, design.clone()).run();
            rows.push(vec![
                name.to_string(),
                pct(frac),
                result.metrics.transactions.to_string(),
                f2(result.metrics.revenue),
                f2(result.metrics.welfare),
                pct(result.metrics.fill_rate),
                f2(result.metrics.seller_gini),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "market designs under adversarial mixes (8 rounds, 30 buyers, 10 sellers)",
            &[
                "design",
                "adversarial",
                "tx",
                "revenue",
                "welfare",
                "fill",
                "seller gini"
            ],
            &rows,
        )
    );
    println!(
        "reading: welfare degrades as the adversarial share grows; the\n\
         simulator quantifies *how fast* per design — the evidence the\n\
         paper's evaluation plan wants before deployment."
    );
}
