//! The paper's running example (§1), end to end:
//!
//! * Buyer b1 wants to train a classifier to ≥ 80 % accuracy and will pay
//!   $100 at 80 % and $150 beyond 90 % (§3.2.2.1's step curve);
//! * Seller 1 owns s1 = ⟨a, b, c⟩;
//! * Seller 2 owns s2 = ⟨a, b′, f(d)⟩ with f(d) = 1.8·d + 32.
//!
//! Neither dataset alone satisfies b1 (Challenge-3); the arbiter's mashup
//! of both does, and the revenue is shared between the sellers through
//! provenance (§3.2.3).
//!
//! ```text
//! cargo run --release --example intro_example
//! ```

use data_market_platform::core::market::{DataMarket, MarketConfig};
use data_market_platform::integration::mapping;
use data_market_platform::mechanism::design::MarketDesign;
use data_market_platform::mechanism::wtp::TaskKind;
use data_market_platform::relation::Value;
use data_market_platform::tasks::synth::intro_example;

fn main() {
    let ex = intro_example(600, 42);
    let market = DataMarket::new(
        MarketConfig::external(4).with_design(MarketDesign::posted_price_baseline(40.0)),
    );

    let seller1 = market.seller("seller1");
    seller1.share(ex.s1.clone()).expect("s1 clean");
    let seller2 = market.seller("seller2");
    seller2.share(ex.s2.clone()).expect("s2 clean");

    let b1 = market.buyer("b1");
    b1.deposit(500.0);

    // b1's WTP-function: the task package (classifier on `label`), the
    // owned data (labels keyed by a), the attribute need, and the step
    // price curve from the paper.
    let offer = b1
        .wtp(["a", "b", "c", "fd"])
        .classification("label")
        .pay_steps(&[(0.8, 100.0), (0.9, 150.0)])
        .with_owned_data(ex.buyer_owned.clone())
        .min_rows(50)
        .submit()
        .expect("offer accepted");
    let _ = TaskKind::AttributeCoverage; // (explicit task enum also available)

    let report = market.run_round();
    let sale = report.sales.first().expect("the mashup should clear 80%");
    println!(
        "offer {offer}: classifier accuracy {:.3} -> price {:.2}",
        sale.satisfaction, sale.price
    );
    println!("seller1 revenue: {:.2}", seller1.balance());
    println!("seller2 revenue: {:.2}", seller2.balance());

    // Challenge-3's integration detail: f(d) is invertible; the arbiter
    // can recover d from paired samples (e.g. from a negotiation round).
    let pairs: Vec<(Value, Value)> = (0..10)
        .map(|i| {
            let d = i as f64;
            (Value::Float(1.8 * d + 32.0), Value::Float(d))
        })
        .collect();
    match mapping::discover(&pairs) {
        Some(mapping::Mapping::Affine { scale, offset }) => {
            println!("inverse mapping f'(fd) = {scale:.4}*fd + {offset:.2} discovered");
        }
        other => println!("unexpected mapping: {other:?}"),
    }

    // The counterfactual: with s1 alone the classifier misses the 80 %
    // bar and the buyer pays nothing — the incentive for Seller 2 to
    // join the market (Challenge-1).
    let solo = DataMarket::new(
        MarketConfig::external(4).with_design(MarketDesign::posted_price_baseline(40.0)),
    );
    solo.seller("seller1").share(ex.s1).unwrap();
    let b1_solo = solo.buyer("b1");
    b1_solo.deposit(500.0);
    b1_solo
        .wtp(["a", "b", "c", "fd"])
        .classification("label")
        .pay_steps(&[(0.8, 100.0), (0.9, 150.0)])
        .with_owned_data(ex.buyer_owned)
        .min_rows(50)
        .submit()
        .unwrap();
    let solo_report = solo.run_round();
    println!(
        "with s1 alone: {} sales (accuracy below the 80% threshold)",
        solo_report.sales.len()
    );
}
