//! An internal data market (§3.3): teams inside one organization break
//! down data silos. The design optimizes *social welfare* — data flows to
//! whoever values it, compensation is bonus points, and nobody pays for
//! access.
//!
//! ```text
//! cargo run --release --example internal_market
//! ```

use data_market_platform::core::market::{DataMarket, MarketConfig};
use data_market_platform::mechanism::wtp::PriceCurve;
use data_market_platform::relation::{DataType, RelationBuilder, Value};

fn main() {
    let market = DataMarket::new(MarketConfig::internal());

    // Three teams publish their silos through the batch interface.
    let growth = market.seller("team-growth");
    let mut b = RelationBuilder::new("signups")
        .column("user_id", DataType::Int)
        .column("channel", DataType::Str);
    for i in 0..300 {
        b = b.row(vec![
            Value::Int(i),
            Value::str(["ads", "organic", "referral"][i as usize % 3]),
        ]);
    }
    growth.share(b.build().unwrap()).unwrap();

    let payments = market.seller("team-payments");
    let mut b = RelationBuilder::new("payments")
        .column("user_id", DataType::Int)
        .column("revenue", DataType::Float);
    for i in 0..300 {
        b = b.row(vec![Value::Int(i), Value::Float((i % 50) as f64 * 1.2)]);
    }
    payments.share(b.build().unwrap()).unwrap();

    let support = market.seller("team-support");
    let mut b = RelationBuilder::new("tickets")
        .column("user_id", DataType::Int)
        .column("tickets", DataType::Int);
    for i in 0..300 {
        b = b.row(vec![Value::Int(i), Value::Int(i % 7)]);
    }
    support.share(b.build().unwrap()).unwrap();

    // The finance team needs a cross-silo mashup: revenue by channel with
    // support load. It never talks to the other teams — the arbiter
    // discovers, joins and delivers.
    let finance = market.buyer("team-finance");
    finance
        .wtp(["user_id", "channel", "revenue", "tickets"])
        .price_curve(PriceCurve::Linear {
            min_satisfaction: 0.5,
            max_price: 30.0,
        })
        .min_rows(100)
        .submit()
        .unwrap();

    let report = market.run_round();
    println!(
        "round {}: {} mashup(s) delivered, total money charged: {:.2}",
        report.round,
        report.sales.len(),
        report.revenue
    );
    for d in finance.deliveries() {
        println!(
            "finance received {} rows x {} columns spanning {} silos",
            d.relation.len(),
            d.relation.schema().len(),
            d.datasets.len()
        );
        // Mashups compose further: revenue by channel.
        let by_channel = d
            .relation
            .aggregate(
                &["channel"],
                &[
                    data_market_platform::relation::ops::AggSpec::new(
                        "revenue",
                        data_market_platform::relation::ops::AggFun::Sum,
                        "total_revenue",
                    ),
                    data_market_platform::relation::ops::AggSpec::new(
                        "tickets",
                        data_market_platform::relation::ops::AggFun::Sum,
                        "total_tickets",
                    ),
                ],
            )
            .unwrap();
        println!("{by_channel}");
    }

    // Bonus points flowed to the contributing teams (the §3.3 incentive).
    for team in ["team-growth", "team-payments", "team-support"] {
        println!("{team}: {:.1} bonus points", market.balance(team));
    }
}
