//! Fine-grained lineage for seller accountability (§4.2):
//!
//! "The SMP must allow sellers to track how their datasets are being sold
//! in the market, e.g., as part of what mashups. [...] This permits the
//! SMP to maintain fine-grained lineage information that is made available
//! on demand."

use std::collections::HashMap;

use parking_lot::RwLock;

use dmp_relation::DatasetId;

/// One lineage event: a dataset participated in something.
#[derive(Debug, Clone, PartialEq)]
pub enum LineageEvent {
    /// Dataset was used to build a mashup.
    UsedInMashup {
        /// The mashup's identifier (assigned by the arbiter).
        mashup: String,
        /// How many of the dataset's rows contributed.
        rows_contributed: usize,
    },
    /// A mashup containing the dataset was sold.
    SoldInMashup {
        /// The mashup's identifier.
        mashup: String,
        /// Revenue allocated back to this dataset in that sale.
        revenue: f64,
    },
    /// Dataset contents were updated to a new version.
    Updated {
        /// New version number.
        version: u32,
    },
    /// A privacy-protected release was generated from the dataset.
    PrivateRelease {
        /// Privacy budget spent.
        epsilon: f64,
    },
}

/// Dataset-sorted lineage contents captured by
/// [`LineageLog::export_state`]: per dataset, the `(seq, event)` pairs
/// in record order.
pub type LineageImage = Vec<(DatasetId, Vec<(u64, LineageEvent)>)>;

/// Append-only per-dataset lineage log, with an optional access quota:
/// "the SMP incrementally updates the information recorded about those
/// datasets subject to an optional access quota established by the origin
/// system".
#[derive(Debug, Default)]
pub struct LineageLog {
    events: RwLock<HashMap<DatasetId, Vec<(u64, LineageEvent)>>>,
    seq: std::sync::atomic::AtomicU64,
    /// Max recorded events per dataset (None = unbounded).
    quota: Option<usize>,
}

impl LineageLog {
    /// Unbounded log.
    pub fn new() -> Self {
        LineageLog::default()
    }

    /// Log with a per-dataset quota; once full, oldest events are dropped.
    pub fn with_quota(quota: usize) -> Self {
        LineageLog {
            quota: Some(quota),
            ..Default::default()
        }
    }

    /// Record an event for a dataset. Returns the event sequence number.
    pub fn record(&self, dataset: DatasetId, event: LineageEvent) -> u64 {
        let seq = self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut map = self.events.write();
        let log = map.entry(dataset).or_default();
        log.push((seq, event));
        if let Some(q) = self.quota {
            if log.len() > q {
                let drop_n = log.len() - q;
                log.drain(0..drop_n);
            }
        }
        seq
    }

    /// All events for a dataset, in order.
    pub fn events(&self, dataset: DatasetId) -> Vec<(u64, LineageEvent)> {
        self.events
            .read()
            .get(&dataset)
            .cloned()
            .unwrap_or_default()
    }

    /// Total revenue attributed to a dataset across all sales.
    pub fn total_revenue(&self, dataset: DatasetId) -> f64 {
        self.events(dataset)
            .iter()
            .map(|(_, e)| match e {
                LineageEvent::SoldInMashup { revenue, .. } => *revenue,
                _ => 0.0,
            })
            .sum()
    }

    /// Distinct mashups the dataset participated in.
    pub fn mashups(&self, dataset: DatasetId) -> Vec<String> {
        let mut out: Vec<String> = self
            .events(dataset)
            .iter()
            .filter_map(|(_, e)| match e {
                LineageEvent::UsedInMashup { mashup, .. }
                | LineageEvent::SoldInMashup { mashup, .. } => Some(mashup.clone()),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Total privacy budget recorded as spent.
    pub fn privacy_spent(&self, dataset: DatasetId) -> f64 {
        self.events(dataset)
            .iter()
            .map(|(_, e)| match e {
                LineageEvent::PrivateRelease { epsilon } => *epsilon,
                _ => 0.0,
            })
            .sum()
    }

    /// All recorded events and the sequence counter, dataset-sorted,
    /// for materialized snapshots. The quota is configuration, not
    /// state, and is not exported.
    pub fn export_state(&self) -> (LineageImage, u64) {
        let mut entries: LineageImage = self
            .events
            .read()
            .iter()
            .map(|(&id, evs)| (id, evs.clone()))
            .collect();
        entries.sort_by_key(|(id, _)| *id);
        let seq = self.seq.load(std::sync::atomic::Ordering::SeqCst);
        (entries, seq)
    }

    /// Replace the log's contents with a previously exported image.
    pub fn restore_state(&self, entries: LineageImage, seq: u64) {
        let mut map = self.events.write();
        map.clear();
        for (id, evs) in entries {
            map.insert(id, evs);
        }
        self.seq.store(seq, std::sync::atomic::Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_in_order() {
        let log = LineageLog::new();
        let d = DatasetId(1);
        log.record(
            d,
            LineageEvent::UsedInMashup {
                mashup: "m1".into(),
                rows_contributed: 10,
            },
        );
        log.record(
            d,
            LineageEvent::SoldInMashup {
                mashup: "m1".into(),
                revenue: 42.0,
            },
        );
        let evs = log.events(d);
        assert_eq!(evs.len(), 2);
        assert!(evs[0].0 < evs[1].0);
    }

    #[test]
    fn revenue_accumulates() {
        let log = LineageLog::new();
        let d = DatasetId(1);
        log.record(
            d,
            LineageEvent::SoldInMashup {
                mashup: "m1".into(),
                revenue: 10.0,
            },
        );
        log.record(
            d,
            LineageEvent::SoldInMashup {
                mashup: "m2".into(),
                revenue: 5.5,
            },
        );
        assert!((log.total_revenue(d) - 15.5).abs() < 1e-12);
        assert_eq!(log.total_revenue(DatasetId(2)), 0.0);
    }

    #[test]
    fn mashups_dedupe() {
        let log = LineageLog::new();
        let d = DatasetId(1);
        log.record(
            d,
            LineageEvent::UsedInMashup {
                mashup: "m1".into(),
                rows_contributed: 1,
            },
        );
        log.record(
            d,
            LineageEvent::SoldInMashup {
                mashup: "m1".into(),
                revenue: 1.0,
            },
        );
        log.record(
            d,
            LineageEvent::UsedInMashup {
                mashup: "m2".into(),
                rows_contributed: 2,
            },
        );
        assert_eq!(log.mashups(d), vec!["m1".to_string(), "m2".to_string()]);
    }

    #[test]
    fn quota_drops_oldest() {
        let log = LineageLog::with_quota(2);
        let d = DatasetId(1);
        for v in 1..=5 {
            log.record(d, LineageEvent::Updated { version: v });
        }
        let evs = log.events(d);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].1, LineageEvent::Updated { version: 5 });
    }

    #[test]
    fn privacy_budget_tracked() {
        let log = LineageLog::new();
        let d = DatasetId(3);
        log.record(d, LineageEvent::PrivateRelease { epsilon: 0.5 });
        log.record(d, LineageEvent::PrivateRelease { epsilon: 0.25 });
        assert!((log.privacy_spent(d) - 0.75).abs() < 1e-12);
    }
}
