//! # dmp-discovery
//!
//! Data discovery substrate for the Mashup Builder (paper §5, Fig. 3;
//! DESIGN.md S2/S3). The paper bootstraps its mashup builder with Aurum
//! [19]: "it extracts metadata from the input datasets, it organizes that
//! metadata in an index and uses the index to identify datasets based on
//! the criteria indicated in the WTP-function". This crate rebuilds that
//! pipeline from scratch:
//!
//! * [`profile`] — per-column statistical profiles (the *data items* of
//!   §5.1) with type, cardinality, range, and content signatures;
//! * [`sketch`] — MinHash signatures (Jaccard/containment estimation) and
//!   a HyperLogLog distinct-count estimator;
//! * [`metadata`] — the always-on metadata engine: ingestion (batch and
//!   share interfaces), versioned context snapshots, lifecycle tracking;
//! * [`index`] — the index builder: inverted name/value indexes and the
//!   relationship index of join-candidate column pairs;
//! * [`search`] — discovery queries over the indexes (by keyword, by
//!   schema, by similarity);
//! * [`lineage`] — fine-grained lineage records for seller accountability
//!   (§4.2).

pub mod index;
pub mod lineage;
pub mod metadata;
pub mod profile;
pub mod search;
pub mod sketch;

pub use index::{IndexBuilder, JoinCandidate, RelationshipIndex};
pub use lineage::{LineageEvent, LineageLog};
pub use metadata::{ColumnRef, ContextSnapshot, DatasetEntry, MetadataEngine};
pub use profile::ColumnProfile;
pub use search::{DiscoveryEngine, SearchHit};
pub use sketch::{HyperLogLog, MinHash};
