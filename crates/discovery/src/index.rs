//! The index builder (§5.2): materializes the structures the DoD engine
//! consumes — an inverted index over column/dataset names, and the
//! **relationship index** of join-candidate column pairs.
//!
//! "Among other tasks, the index builder materializes join paths between
//! files, and it identifies candidate functions to map attributes to each
//! other; i.e., it facilitates the DoD's job."

use std::collections::HashMap;
use std::sync::Arc;

use dmp_relation::DatasetId;

use crate::metadata::{ColumnRef, DatasetEntry, MetadataEngine};
use crate::profile::ColumnProfile;

/// A candidate join edge between two columns, scored by content overlap.
#[derive(Debug, Clone)]
pub struct JoinCandidate {
    /// Left column.
    pub left: ColumnRef,
    /// Right column.
    pub right: ColumnRef,
    /// Estimated Jaccard similarity of value sets.
    pub jaccard: f64,
    /// Estimated containment of left values in right values.
    pub containment_l_in_r: f64,
    /// Estimated containment of right values in left values.
    pub containment_r_in_l: f64,
    /// Whether either side looks like a key column.
    pub keyish: bool,
}

impl JoinCandidate {
    /// A single score for ranking: max containment, with a small bonus
    /// when one side is key-like (PK–FK joins are the common case).
    pub fn score(&self) -> f64 {
        let c = self.containment_l_in_r.max(self.containment_r_in_l);
        c + if self.keyish { 0.05 } else { 0.0 }
    }
}

/// The relationship index: all join candidates above threshold, plus
/// adjacency lists for join-path search.
///
/// Edges live in **append-only segments behind `Arc`s**, so an
/// incrementally-extended index shares its predecessor's edge storage
/// instead of cloning it — extension cost is proportional to the *new*
/// edges, not the catalog. Edge order is the deterministic enumeration
/// order of the builds that produced each segment (entries in id order,
/// pairs lower-id-first), so replaying the same registration history
/// always yields the same index.
#[derive(Debug, Default, Clone)]
pub struct RelationshipIndex {
    /// Append-only edge segments (one per build/extension step).
    segments: Vec<Arc<Vec<JoinCandidate>>>,
    /// dataset -> `(segment, offset)` refs into `segments` (either side).
    by_dataset: HashMap<DatasetId, Vec<(u32, u32)>>,
}

impl RelationshipIndex {
    /// An index holding one segment of freshly-built edges.
    fn from_edges(edges: Vec<JoinCandidate>) -> Self {
        RelationshipIndex::default().appended(edges)
    }

    /// A new index sharing this one's segments plus `new_edges` as one
    /// more segment. O(new edges + adjacency refs); the existing edge
    /// storage is shared, not copied.
    fn appended(&self, new_edges: Vec<JoinCandidate>) -> Self {
        let mut idx = self.clone();
        if new_edges.is_empty() {
            return idx;
        }
        let seg = idx.segments.len() as u32;
        for (i, e) in new_edges.iter().enumerate() {
            idx.by_dataset
                .entry(e.left.dataset)
                .or_default()
                .push((seg, i as u32));
            idx.by_dataset
                .entry(e.right.dataset)
                .or_default()
                .push((seg, i as u32));
        }
        idx.segments.push(Arc::new(new_edges));
        idx
    }
}

impl RelationshipIndex {
    /// All edges, in segment order.
    pub fn edges(&self) -> impl Iterator<Item = &JoinCandidate> {
        self.segments.iter().flat_map(|s| s.iter())
    }

    /// Edges incident to a dataset.
    pub fn edges_of(&self, d: DatasetId) -> impl Iterator<Item = &JoinCandidate> {
        self.by_dataset
            .get(&d)
            .into_iter()
            .flatten()
            .map(move |&(seg, i)| &self.segments[seg as usize][i as usize])
    }

    /// Direct join candidates between two specific datasets.
    pub fn edges_between(&self, a: DatasetId, b: DatasetId) -> Vec<&JoinCandidate> {
        self.edges_of(a)
            .filter(|e| {
                (e.left.dataset == a && e.right.dataset == b)
                    || (e.left.dataset == b && e.right.dataset == a)
            })
            .collect()
    }

    /// Datasets reachable from `start` within `max_hops` join edges
    /// (BFS). Returns `(dataset, hops)` pairs, excluding `start`.
    pub fn reachable(&self, start: DatasetId, max_hops: usize) -> Vec<(DatasetId, usize)> {
        let mut seen: HashMap<DatasetId, usize> = HashMap::new();
        seen.insert(start, 0);
        let mut frontier = vec![start];
        for hop in 1..=max_hops {
            let mut next = Vec::new();
            for d in frontier {
                for e in self.edges_of(d) {
                    let peer = if e.left.dataset == d {
                        e.right.dataset
                    } else {
                        e.left.dataset
                    };
                    seen.entry(peer).or_insert_with(|| {
                        next.push(peer);
                        hop
                    });
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        let mut out: Vec<(DatasetId, usize)> =
            seen.into_iter().filter(|&(d, _)| d != start).collect();
        out.sort_unstable();
        out
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// True iff the index has no edges.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.is_empty())
    }
}

/// Tokenize an identifier for the name index: lowercase, split on
/// non-alphanumerics and camelCase boundaries.
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = name.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        let boundary =
            !c.is_alphanumeric() || (c.is_uppercase() && i > 0 && chars[i - 1].is_lowercase());
        if boundary && !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur).to_lowercase());
        }
        if c.is_alphanumeric() {
            cur.push(c);
        }
    }
    if !cur.is_empty() {
        tokens.push(cur.to_lowercase());
    }
    tokens
}

/// The index builder: consumes the metadata engine's output schema and
/// produces the name index + relationship index.
#[derive(Debug)]
pub struct IndexBuilder {
    /// Minimum containment for a join candidate (default 0.8).
    pub min_containment: f64,
    /// Minimum Jaccard for a *similarity* (fusion) candidate (default 0.5).
    pub min_jaccard: f64,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        IndexBuilder {
            min_containment: 0.8,
            min_jaccard: 0.5,
        }
    }
}

/// Built indexes handed to the search layer and DoD engine.
#[derive(Debug, Default, Clone)]
pub struct Indexes {
    /// token -> column refs whose name contains the token.
    pub name_index: HashMap<String, Vec<ColumnRef>>,
    /// token -> dataset ids whose name/tags contain the token.
    pub dataset_index: HashMap<String, Vec<DatasetId>>,
    /// Join candidates.
    pub relationships: RelationshipIndex,
}

impl IndexBuilder {
    /// Create with default thresholds.
    pub fn new() -> Self {
        IndexBuilder::default()
    }

    /// Build all indexes from the engine's current state.
    pub fn build(&self, engine: &MetadataEngine) -> Indexes {
        let entries = engine.entries();
        let mut idx = Indexes::default();
        self.build_name_indexes(&entries, &mut idx);
        idx.relationships = self.build_relationships(&entries);
        idx
    }

    fn build_name_indexes(&self, entries: &[DatasetEntry], idx: &mut Indexes) {
        for e in entries {
            for tok in tokenize(&e.name)
                .into_iter()
                .chain(e.tags.iter().flat_map(|t| tokenize(t)))
            {
                let v = idx.dataset_index.entry(tok).or_default();
                if !v.contains(&e.id) {
                    v.push(e.id);
                }
            }
            for p in &e.latest_snapshot().profiles {
                for tok in tokenize(&p.name) {
                    let cr = ColumnRef::new(e.id, p.name.clone());
                    let v = idx.name_index.entry(tok).or_default();
                    if !v.contains(&cr) {
                        v.push(cr);
                    }
                }
            }
        }
    }

    /// All-pairs column comparison via signatures. O(C²) over columns with
    /// cheap per-pair work — adequate at the thousands-of-tables scale the
    /// paper targets for a first system (and exactly what the F3 benchmark
    /// measures).
    fn build_relationships(&self, entries: &[DatasetEntry]) -> RelationshipIndex {
        let cols = collect_cols(entries);
        let mut edges = Vec::new();
        for i in 0..cols.len() {
            for j in (i + 1)..cols.len() {
                if let Some(edge) = self.compare(&cols[i], &cols[j]) {
                    edges.push(edge);
                }
            }
        }
        RelationshipIndex::from_edges(edges)
    }

    /// Score one column pair against the thresholds; `a` must come from
    /// the lower-id dataset so edge orientation is canonical.
    fn compare(&self, a: &ColInfo<'_>, b: &ColInfo<'_>) -> Option<JoinCandidate> {
        if a.dataset == b.dataset {
            return None; // self-joins are out of scope for discovery
        }
        let pa = a.profile;
        let pb = b.profile;
        // Cheap type gate before touching signatures.
        if !pa.dtype.unify(pb.dtype).is_numeric() && pa.dtype != pb.dtype {
            return None;
        }
        if pa.signature.is_empty() || pb.signature.is_empty() {
            return None;
        }
        let jaccard = pa.content_similarity(pb);
        let c_ab = pa.containment_in(pb);
        let c_ba = pb.containment_in(pa);
        if jaccard >= self.min_jaccard
            || c_ab >= self.min_containment
            || c_ba >= self.min_containment
        {
            Some(JoinCandidate {
                left: ColumnRef::new(a.dataset, pa.name.clone()),
                right: ColumnRef::new(b.dataset, pb.name.clone()),
                jaccard,
                containment_l_in_r: c_ab,
                containment_r_in_l: c_ba,
                keyish: pa.looks_like_key() || pb.looks_like_key(),
            })
        } else {
            None
        }
    }

    /// **Incrementally extend** `base` (built over `old_entries`) with
    /// `new_entries`: new columns are compared against the whole catalog
    /// — O(new × all) pair work instead of the full O(all²) rebuild —
    /// and the existing edge segments are *shared*, not copied. The
    /// result contains exactly the edges a fresh [`IndexBuilder::build`]
    /// over the union would find (pinned by test), differing only in
    /// storage order. This is the paper's "fully-incremental" metadata
    /// engine claim made real: steady-state ingestion cost is
    /// proportional to what changed, not to the catalog.
    pub fn extend(
        &self,
        base: &Indexes,
        old_entries: &[DatasetEntry],
        new_entries: &[DatasetEntry],
    ) -> Indexes {
        let mut idx = Indexes {
            name_index: base.name_index.clone(),
            dataset_index: base.dataset_index.clone(),
            relationships: RelationshipIndex::default(),
        };
        self.build_name_indexes(new_entries, &mut idx);

        let old_cols = collect_cols(old_entries);
        let new_cols = collect_cols(new_entries);
        let mut new_edges = Vec::new();
        for n in &new_cols {
            for o in &old_cols {
                // Canonical orientation: lower dataset id on the left
                // (new entries always carry higher ids than old ones).
                if let Some(edge) = self.compare(o, n) {
                    new_edges.push(edge);
                }
            }
        }
        for i in 0..new_cols.len() {
            for j in (i + 1)..new_cols.len() {
                if let Some(edge) = self.compare(&new_cols[i], &new_cols[j]) {
                    new_edges.push(edge);
                }
            }
        }
        idx.relationships = base.relationships.appended(new_edges);
        idx
    }
}

/// One column's identity + profile, flattened for pair comparison.
struct ColInfo<'a> {
    dataset: DatasetId,
    profile: &'a ColumnProfile,
}

fn collect_cols(entries: &[DatasetEntry]) -> Vec<ColInfo<'_>> {
    entries
        .iter()
        .flat_map(|e| {
            e.latest_snapshot().profiles.iter().map(move |p| ColInfo {
                dataset: e.id,
                profile: p,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::{DataType, RelationBuilder, Value};
    use std::sync::Arc;

    fn lake() -> MetadataEngine {
        let eng = MetadataEngine::new();
        // customers(cust_id key, region)
        let mut b = RelationBuilder::new("customers")
            .column("cust_id", DataType::Int)
            .column("region", DataType::Str);
        for i in 0..200 {
            b = b.row(vec![
                Value::Int(i),
                Value::str(if i % 2 == 0 { "eu" } else { "us" }),
            ]);
        }
        eng.register("customers", "alice", b.build().unwrap());
        // orders(order_id, customer -> customers.cust_id)
        let mut b = RelationBuilder::new("orders")
            .column("order_id", DataType::Int)
            .column("customer", DataType::Int);
        for i in 0..500 {
            b = b.row(vec![Value::Int(10_000 + i), Value::Int(i % 200)]);
        }
        eng.register("orders", "bob", b.build().unwrap());
        // weather(city, temp) — unrelated
        let mut b = RelationBuilder::new("weather")
            .column("city", DataType::Str)
            .column("temp", DataType::Float);
        for i in 0..50 {
            // Non-integral floats: integral ones would canonicalize to the
            // same reprs as customer ids and legitimately register as
            // containment edges.
            b = b.row(vec![
                Value::str(format!("city{i}")),
                Value::Float(i as f64 + 0.25),
            ]);
        }
        eng.register("weather", "carol", b.build().unwrap());
        eng
    }

    /// Canonical comparison form: the edge *set*, sorted (incremental
    /// extension may store edges in a different segment order).
    fn edge_keys(idx: &Indexes) -> Vec<(DatasetId, String, DatasetId, String, u64)> {
        let mut keys: Vec<_> = idx
            .relationships
            .edges()
            .map(|e| {
                (
                    e.left.dataset,
                    e.left.column.clone(),
                    e.right.dataset,
                    e.right.column.clone(),
                    e.jaccard.to_bits(),
                )
            })
            .collect();
        keys.sort();
        keys
    }

    #[test]
    fn incremental_extension_matches_full_rebuild() {
        let eng = lake();
        let builder = IndexBuilder::new();
        let entries_before = eng.entries();
        let base = builder.build(&eng);

        // Grow the catalog: one related table, one unrelated.
        let mut b = RelationBuilder::new("invoices")
            .column("invoice_id", DataType::Int)
            .column("customer", DataType::Int);
        for i in 0..150 {
            b = b.row(vec![Value::Int(50_000 + i), Value::Int(i % 200)]);
        }
        eng.register("invoices", "dave", b.build().unwrap());
        let mut b = RelationBuilder::new("notes").column("text", DataType::Str);
        for i in 0..10 {
            b = b.row(vec![Value::str(format!("note {i}"))]);
        }
        eng.register("notes", "erin", b.build().unwrap());

        let entries_after = eng.entries();
        let new_entries = &entries_after[entries_before.len()..];
        let extended = builder.extend(&base, &entries_before, new_entries);
        let full = builder.build(&eng);

        assert_eq!(
            edge_keys(&extended),
            edge_keys(&full),
            "incremental extension must be indistinguishable from a rebuild"
        );
        assert_eq!(extended.name_index, full.name_index);
        assert_eq!(extended.dataset_index, full.dataset_index);
        // The new join edge is actually found via the incremental path.
        let ids = eng.ids();
        assert!(
            !extended
                .relationships
                .edges_between(ids[0], ids[3])
                .is_empty(),
            "customers~invoices edge expected"
        );
    }

    #[test]
    fn cached_indexes_are_reused_and_track_mutations() {
        let eng = lake();
        let a = eng.cached_indexes();
        let b = eng.cached_indexes();
        assert!(Arc::ptr_eq(&a, &b), "same generation must share one build");

        // Appending a dataset produces a fresh (extended) index that
        // matches a from-scratch build.
        let mut rb = RelationBuilder::new("extra").column("cust_id", DataType::Int);
        for i in 0..120 {
            rb = rb.row(vec![Value::Int(i)]);
        }
        eng.register("extra", "frank", rb.build().unwrap());
        let c = eng.cached_indexes();
        assert!(!Arc::ptr_eq(&a, &c), "mutation must invalidate the cache");
        assert_eq!(edge_keys(&c), edge_keys(&IndexBuilder::new().build(&eng)));

        // A tag on an existing entry changes the name indexes too.
        let ids = eng.ids();
        eng.add_tag(ids[0], "gold");
        let d = eng.cached_indexes();
        assert!(d.dataset_index.contains_key("gold"));
    }

    #[test]
    fn finds_pk_fk_candidate() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let (cust, orders) = (ids[0], ids[1]);
        let edges = idx.relationships.edges_between(cust, orders);
        assert!(
            edges.iter().any(|e| {
                (e.left.column == "cust_id" && e.right.column == "customer")
                    || (e.left.column == "customer" && e.right.column == "cust_id")
            }),
            "expected cust_id~customer candidate, got {edges:?}"
        );
    }

    #[test]
    fn unrelated_datasets_have_no_edges() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let weather = ids[2];
        // weather.temp is numeric like ids, but value ranges barely overlap;
        // city is a string column with disjoint content.
        let edges = idx.relationships.edges_between(ids[0], weather);
        assert!(
            edges.iter().all(|e| e.score() < 0.9),
            "no high-confidence edge to weather expected"
        );
    }

    #[test]
    fn reachability_bfs() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let reach = idx.relationships.reachable(ids[0], 2);
        assert!(reach.iter().any(|&(d, h)| d == ids[1] && h == 1));
    }

    #[test]
    fn name_index_tokenizes() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        // "cust_id" tokenizes to ["cust", "id"]
        assert!(idx.name_index.contains_key("cust"));
        assert!(idx.name_index.contains_key("id"));
        assert!(idx.dataset_index.contains_key("orders"));
    }

    #[test]
    fn tokenizer_splits_camel_and_snake() {
        assert_eq!(tokenize("custId"), vec!["cust", "id"]);
        assert_eq!(tokenize("cust_id"), vec!["cust", "id"]);
        assert_eq!(tokenize("CustomerName2"), vec!["customer", "name2"]);
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn keyish_flag_set_for_pk() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let edge = idx
            .relationships
            .edges()
            .find(|e| e.left.column == "cust_id" || e.right.column == "cust_id");
        if let Some(e) = edge {
            assert!(e.keyish);
        }
    }

    #[test]
    fn tag_appears_in_dataset_index() {
        let eng = lake();
        let id = eng.ids()[2];
        eng.add_tag(id, "forecast signals");
        let idx = IndexBuilder::new().build(&eng);
        assert!(idx.dataset_index["forecast"].contains(&id));
    }
}
