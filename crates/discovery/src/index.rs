//! The index builder (§5.2): materializes the structures the DoD engine
//! consumes — an inverted index over column/dataset names, and the
//! **relationship index** of join-candidate column pairs.
//!
//! "Among other tasks, the index builder materializes join paths between
//! files, and it identifies candidate functions to map attributes to each
//! other; i.e., it facilitates the DoD's job."

use std::collections::HashMap;

use dmp_relation::DatasetId;

use crate::metadata::{ColumnRef, DatasetEntry, MetadataEngine};
use crate::profile::ColumnProfile;

/// A candidate join edge between two columns, scored by content overlap.
#[derive(Debug, Clone)]
pub struct JoinCandidate {
    /// Left column.
    pub left: ColumnRef,
    /// Right column.
    pub right: ColumnRef,
    /// Estimated Jaccard similarity of value sets.
    pub jaccard: f64,
    /// Estimated containment of left values in right values.
    pub containment_l_in_r: f64,
    /// Estimated containment of right values in left values.
    pub containment_r_in_l: f64,
    /// Whether either side looks like a key column.
    pub keyish: bool,
}

impl JoinCandidate {
    /// A single score for ranking: max containment, with a small bonus
    /// when one side is key-like (PK–FK joins are the common case).
    pub fn score(&self) -> f64 {
        let c = self.containment_l_in_r.max(self.containment_r_in_l);
        c + if self.keyish { 0.05 } else { 0.0 }
    }
}

/// The relationship index: all join candidates above threshold, plus
/// adjacency lists for join-path search.
#[derive(Debug, Default)]
pub struct RelationshipIndex {
    edges: Vec<JoinCandidate>,
    /// dataset -> indices into `edges` (either side).
    by_dataset: HashMap<DatasetId, Vec<usize>>,
}

impl RelationshipIndex {
    /// All edges.
    pub fn edges(&self) -> &[JoinCandidate] {
        &self.edges
    }

    /// Edges incident to a dataset.
    pub fn edges_of(&self, d: DatasetId) -> impl Iterator<Item = &JoinCandidate> {
        self.by_dataset
            .get(&d)
            .into_iter()
            .flatten()
            .map(move |&i| &self.edges[i])
    }

    /// Direct join candidates between two specific datasets.
    pub fn edges_between(&self, a: DatasetId, b: DatasetId) -> Vec<&JoinCandidate> {
        self.edges_of(a)
            .filter(|e| {
                (e.left.dataset == a && e.right.dataset == b)
                    || (e.left.dataset == b && e.right.dataset == a)
            })
            .collect()
    }

    /// Datasets reachable from `start` within `max_hops` join edges
    /// (BFS). Returns `(dataset, hops)` pairs, excluding `start`.
    pub fn reachable(&self, start: DatasetId, max_hops: usize) -> Vec<(DatasetId, usize)> {
        let mut seen: HashMap<DatasetId, usize> = HashMap::new();
        seen.insert(start, 0);
        let mut frontier = vec![start];
        for hop in 1..=max_hops {
            let mut next = Vec::new();
            for d in frontier {
                for e in self.edges_of(d) {
                    let peer = if e.left.dataset == d {
                        e.right.dataset
                    } else {
                        e.left.dataset
                    };
                    seen.entry(peer).or_insert_with(|| {
                        next.push(peer);
                        hop
                    });
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        let mut out: Vec<(DatasetId, usize)> =
            seen.into_iter().filter(|&(d, _)| d != start).collect();
        out.sort_unstable();
        out
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True iff the index has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Tokenize an identifier for the name index: lowercase, split on
/// non-alphanumerics and camelCase boundaries.
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = name.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        let boundary =
            !c.is_alphanumeric() || (c.is_uppercase() && i > 0 && chars[i - 1].is_lowercase());
        if boundary && !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur).to_lowercase());
        }
        if c.is_alphanumeric() {
            cur.push(c);
        }
    }
    if !cur.is_empty() {
        tokens.push(cur.to_lowercase());
    }
    tokens
}

/// The index builder: consumes the metadata engine's output schema and
/// produces the name index + relationship index.
#[derive(Debug)]
pub struct IndexBuilder {
    /// Minimum containment for a join candidate (default 0.8).
    pub min_containment: f64,
    /// Minimum Jaccard for a *similarity* (fusion) candidate (default 0.5).
    pub min_jaccard: f64,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        IndexBuilder {
            min_containment: 0.8,
            min_jaccard: 0.5,
        }
    }
}

/// Built indexes handed to the search layer and DoD engine.
#[derive(Debug, Default)]
pub struct Indexes {
    /// token -> column refs whose name contains the token.
    pub name_index: HashMap<String, Vec<ColumnRef>>,
    /// token -> dataset ids whose name/tags contain the token.
    pub dataset_index: HashMap<String, Vec<DatasetId>>,
    /// Join candidates.
    pub relationships: RelationshipIndex,
}

impl IndexBuilder {
    /// Create with default thresholds.
    pub fn new() -> Self {
        IndexBuilder::default()
    }

    /// Build all indexes from the engine's current state.
    pub fn build(&self, engine: &MetadataEngine) -> Indexes {
        let entries = engine.entries();
        let mut idx = Indexes::default();
        self.build_name_indexes(&entries, &mut idx);
        idx.relationships = self.build_relationships(&entries);
        idx
    }

    fn build_name_indexes(&self, entries: &[DatasetEntry], idx: &mut Indexes) {
        for e in entries {
            for tok in tokenize(&e.name)
                .into_iter()
                .chain(e.tags.iter().flat_map(|t| tokenize(t)))
            {
                let v = idx.dataset_index.entry(tok).or_default();
                if !v.contains(&e.id) {
                    v.push(e.id);
                }
            }
            for p in &e.latest_snapshot().profiles {
                for tok in tokenize(&p.name) {
                    let cr = ColumnRef::new(e.id, p.name.clone());
                    let v = idx.name_index.entry(tok).or_default();
                    if !v.contains(&cr) {
                        v.push(cr);
                    }
                }
            }
        }
    }

    /// All-pairs column comparison via signatures. O(C²) over columns with
    /// cheap per-pair work — adequate at the thousands-of-tables scale the
    /// paper targets for a first system (and exactly what the F3 benchmark
    /// measures).
    fn build_relationships(&self, entries: &[DatasetEntry]) -> RelationshipIndex {
        struct ColInfo<'a> {
            dataset: DatasetId,
            profile: &'a ColumnProfile,
        }
        let cols: Vec<ColInfo<'_>> = entries
            .iter()
            .flat_map(|e| {
                e.latest_snapshot().profiles.iter().map(move |p| ColInfo {
                    dataset: e.id,
                    profile: p,
                })
            })
            .collect();

        let mut rel = RelationshipIndex::default();
        for i in 0..cols.len() {
            for j in (i + 1)..cols.len() {
                let (a, b) = (&cols[i], &cols[j]);
                if a.dataset == b.dataset {
                    continue; // self-joins are out of scope for discovery
                }
                let pa = a.profile;
                let pb = b.profile;
                // Cheap type gate before touching signatures.
                if !pa.dtype.unify(pb.dtype).is_numeric() && pa.dtype != pb.dtype {
                    continue;
                }
                if pa.signature.is_empty() || pb.signature.is_empty() {
                    continue;
                }
                let jaccard = pa.content_similarity(pb);
                let c_ab = pa.containment_in(pb);
                let c_ba = pb.containment_in(pa);
                if jaccard >= self.min_jaccard
                    || c_ab >= self.min_containment
                    || c_ba >= self.min_containment
                {
                    let edge = JoinCandidate {
                        left: ColumnRef::new(a.dataset, pa.name.clone()),
                        right: ColumnRef::new(b.dataset, pb.name.clone()),
                        jaccard,
                        containment_l_in_r: c_ab,
                        containment_r_in_l: c_ba,
                        keyish: pa.looks_like_key() || pb.looks_like_key(),
                    };
                    let e_idx = rel.edges.len();
                    rel.by_dataset.entry(a.dataset).or_default().push(e_idx);
                    rel.by_dataset.entry(b.dataset).or_default().push(e_idx);
                    rel.edges.push(edge);
                }
            }
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::{DataType, RelationBuilder, Value};

    fn lake() -> MetadataEngine {
        let eng = MetadataEngine::new();
        // customers(cust_id key, region)
        let mut b = RelationBuilder::new("customers")
            .column("cust_id", DataType::Int)
            .column("region", DataType::Str);
        for i in 0..200 {
            b = b.row(vec![
                Value::Int(i),
                Value::str(if i % 2 == 0 { "eu" } else { "us" }),
            ]);
        }
        eng.register("customers", "alice", b.build().unwrap());
        // orders(order_id, customer -> customers.cust_id)
        let mut b = RelationBuilder::new("orders")
            .column("order_id", DataType::Int)
            .column("customer", DataType::Int);
        for i in 0..500 {
            b = b.row(vec![Value::Int(10_000 + i), Value::Int(i % 200)]);
        }
        eng.register("orders", "bob", b.build().unwrap());
        // weather(city, temp) — unrelated
        let mut b = RelationBuilder::new("weather")
            .column("city", DataType::Str)
            .column("temp", DataType::Float);
        for i in 0..50 {
            // Non-integral floats: integral ones would canonicalize to the
            // same reprs as customer ids and legitimately register as
            // containment edges.
            b = b.row(vec![
                Value::str(format!("city{i}")),
                Value::Float(i as f64 + 0.25),
            ]);
        }
        eng.register("weather", "carol", b.build().unwrap());
        eng
    }

    #[test]
    fn finds_pk_fk_candidate() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let (cust, orders) = (ids[0], ids[1]);
        let edges = idx.relationships.edges_between(cust, orders);
        assert!(
            edges.iter().any(|e| {
                (e.left.column == "cust_id" && e.right.column == "customer")
                    || (e.left.column == "customer" && e.right.column == "cust_id")
            }),
            "expected cust_id~customer candidate, got {edges:?}"
        );
    }

    #[test]
    fn unrelated_datasets_have_no_edges() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let weather = ids[2];
        // weather.temp is numeric like ids, but value ranges barely overlap;
        // city is a string column with disjoint content.
        let edges = idx.relationships.edges_between(ids[0], weather);
        assert!(
            edges.iter().all(|e| e.score() < 0.9),
            "no high-confidence edge to weather expected"
        );
    }

    #[test]
    fn reachability_bfs() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let reach = idx.relationships.reachable(ids[0], 2);
        assert!(reach.iter().any(|&(d, h)| d == ids[1] && h == 1));
    }

    #[test]
    fn name_index_tokenizes() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        // "cust_id" tokenizes to ["cust", "id"]
        assert!(idx.name_index.contains_key("cust"));
        assert!(idx.name_index.contains_key("id"));
        assert!(idx.dataset_index.contains_key("orders"));
    }

    #[test]
    fn tokenizer_splits_camel_and_snake() {
        assert_eq!(tokenize("custId"), vec!["cust", "id"]);
        assert_eq!(tokenize("cust_id"), vec!["cust", "id"]);
        assert_eq!(tokenize("CustomerName2"), vec!["customer", "name2"]);
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn keyish_flag_set_for_pk() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let edge = idx
            .relationships
            .edges()
            .iter()
            .find(|e| e.left.column == "cust_id" || e.right.column == "cust_id");
        if let Some(e) = edge {
            assert!(e.keyish);
        }
    }

    #[test]
    fn tag_appears_in_dataset_index() {
        let eng = lake();
        let id = eng.ids()[2];
        eng.add_tag(id, "forecast signals");
        let idx = IndexBuilder::new().build(&eng);
        assert!(idx.dataset_index["forecast"].contains(&id));
    }
}
