//! The metadata engine (§5.1): an always-on, fully-incremental registry of
//! datasets, their data items, and their lifecycle.
//!
//! "For each dataset, the metadata engine maintains a time-ordered list of
//! context snapshots. A context snapshot captures the properties of each
//! dataset's data item at each point in time. For example, signatures of
//! its contents, a collection of human or machine owners, as well as the
//! security credentials."

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dmp_relation::{DatasetId, Relation};

use crate::profile::ColumnProfile;

/// Refers to one column data item: `(dataset, column name)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Owning dataset.
    pub dataset: DatasetId,
    /// Column name within that dataset.
    pub column: String,
}

impl ColumnRef {
    /// Construct a reference.
    pub fn new(dataset: DatasetId, column: impl Into<String>) -> Self {
        ColumnRef {
            dataset,
            column: column.into(),
        }
    }
}

/// A point-in-time capture of a dataset's data-item properties.
#[derive(Debug, Clone)]
pub struct ContextSnapshot {
    /// Monotone dataset version this snapshot describes.
    pub version: u32,
    /// Logical time at which the snapshot was taken.
    pub at: u64,
    /// Row count at snapshot time.
    pub rows: usize,
    /// Content hash over all cells (change detection).
    pub content_hash: u64,
    /// Per-column statistical profiles (the content signatures).
    pub profiles: Vec<ColumnProfile>,
    /// Owners at snapshot time (humans or machine principals).
    pub owners: Vec<String>,
}

/// A registered dataset plus its lifecycle.
#[derive(Debug, Clone)]
pub struct DatasetEntry {
    /// Market-wide id.
    pub id: DatasetId,
    /// Human name.
    pub name: String,
    /// Registered owner (seller principal).
    pub owner: String,
    /// Current data (rows carry leaf provenance of `id`).
    pub relation: Arc<Relation>,
    /// Current version (bumps on update).
    pub version: u32,
    /// Logical registration time.
    pub registered_at: u64,
    /// Time-ordered context snapshots (latest last).
    pub snapshots: Vec<ContextSnapshot>,
    /// Free-form tags (topics, semantic annotations from negotiation).
    pub tags: Vec<String>,
}

impl DatasetEntry {
    /// The latest snapshot (always present).
    pub fn latest_snapshot(&self) -> &ContextSnapshot {
        self.snapshots
            .last()
            .expect("entry always has >= 1 snapshot")
    }

    /// Profile of a specific column in the latest snapshot.
    pub fn profile(&self, column: &str) -> Option<&ColumnProfile> {
        self.latest_snapshot()
            .profiles
            .iter()
            .find(|p| p.name == column)
    }
}

/// The always-on metadata engine. Thread-safe: ingestion and reads can
/// proceed concurrently (`parking_lot::RwLock` inside).
#[derive(Debug, Default)]
pub struct MetadataEngine {
    entries: RwLock<HashMap<DatasetId, DatasetEntry>>,
    next_id: AtomicU64,
    clock: AtomicU64,
    /// Catalog mutation counter: bumped by every register / update /
    /// tag / remove. Keys the built-index cache below.
    generation: AtomicU64,
    /// Default-threshold discovery indexes for `generation` — building
    /// the relationship index is O(columns²) over the whole catalog, so
    /// it is built at most once per catalog version, **extended
    /// incrementally** when the catalog only grew, and shared by every
    /// reader (every offer evaluation, every shard) instead of being
    /// rebuilt per query.
    index_cache: Mutex<Option<IndexCacheEntry>>,
}

/// One cached index build: the generation it reflects, the
/// `(id, version, tag count)` fingerprint of the catalog it was built
/// over (to detect pure-append growth — an update or new tag on an
/// *existing* entry perturbs the prefix and forces a full rebuild),
/// and the built indexes.
#[derive(Debug)]
struct IndexCacheEntry {
    generation: u64,
    fingerprint: Vec<(DatasetId, u32, u32)>,
    indexes: Arc<crate::index::Indexes>,
}

impl MetadataEngine {
    /// Create an empty engine.
    pub fn new() -> Self {
        MetadataEngine::default()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The catalog mutation generation (changes whenever a rebuild of
    /// derived structures would observe different contents).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Default-threshold discovery indexes for the current catalog
    /// version, built on first use and cached until the next mutation.
    /// When the catalog has only *grown* since the cached build (the
    /// common market flow: sellers register, nobody updates/withdraws),
    /// the cached index is extended incrementally — O(new × all) pair
    /// comparisons instead of O(all²) — and the result is bit-identical
    /// to a full rebuild ([`crate::index::IndexBuilder::extend`]).
    /// Racing builders produce identical indexes, and a mutation
    /// mid-build simply leaves a stale entry the next caller redoes.
    pub fn cached_indexes(&self) -> Arc<crate::index::Indexes> {
        let generation = self.generation();
        let previous = {
            let cache = self.index_cache.lock();
            match cache.as_ref() {
                Some(entry) if entry.generation == generation => {
                    return Arc::clone(&entry.indexes);
                }
                Some(entry) => Some((entry.fingerprint.clone(), Arc::clone(&entry.indexes))),
                None => None,
            }
        };
        // Build outside the cache lock: O(columns²) work must not block
        // readers that already have a current snapshot.
        let entries = self.entries();
        let fingerprint: Vec<(DatasetId, u32, u32)> = entries
            .iter()
            .map(|e| (e.id, e.version, e.tags.len() as u32))
            .collect();
        let builder = crate::index::IndexBuilder::new();
        let built = match previous {
            // Pure append since the cached build (ids are monotone, so
            // growth shows up as a strict fingerprint prefix): extend.
            Some((old_fp, old_idx))
                if fingerprint.len() >= old_fp.len()
                    && fingerprint[..old_fp.len()] == old_fp[..] =>
            {
                let (old_entries, new_entries) = entries.split_at(old_fp.len());
                Arc::new(builder.extend(&old_idx, old_entries, new_entries))
            }
            _ => Arc::new(builder.build(self)),
        };
        // Cache only if no mutation raced the snapshot: generation
        // bumps happen under the entries write lock, so generation
        // unchanged across the snapshot ⇒ the build describes exactly
        // generation `generation`. On a race, serve the (at least as
        // fresh) build uncached; the next caller rebuilds cleanly.
        if self.generation() == generation {
            *self.index_cache.lock() = Some(IndexCacheEntry {
                generation,
                fingerprint,
                indexes: Arc::clone(&built),
            });
        }
        built
    }

    /// Raise the engine's logical clock to at least `at_least`. Callers
    /// embedding the engine in a larger system (the market) use this to
    /// keep registration timestamps comparable with their own clock.
    pub fn sync_clock(&self, at_least: u64) {
        self.clock.fetch_max(at_least, Ordering::Relaxed);
    }

    /// Register a dataset via the *share interface* (a user shares one
    /// specific dataset). Stamps leaf provenance and takes the initial
    /// context snapshot. Returns the assigned id.
    pub fn register(
        &self,
        name: impl Into<String>,
        owner: impl Into<String>,
        rel: Relation,
    ) -> DatasetId {
        let id = DatasetId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let name = name.into();
        let owner = owner.into();
        let rel = rel.with_source(id);
        let at = self.tick();
        let snapshot = snapshot_of(&rel, 1, at, std::slice::from_ref(&owner));
        let entry = DatasetEntry {
            id,
            name,
            owner,
            relation: Arc::new(rel),
            version: 1,
            registered_at: at,
            snapshots: vec![snapshot],
            tags: Vec::new(),
        };
        let mut entries = self.entries.write();
        entries.insert(id, entry);
        // Bump under the write lock: readers that snapshot the entries
        // and then read the generation can tell exactly which catalog
        // contents a generation number describes.
        self.bump_generation();
        drop(entries);
        id
    }

    /// Register many datasets via the *batch interface* (a steward points
    /// at a source in bulk, §4.2 Data Packaging). Returns ids in order.
    pub fn register_batch(
        &self,
        owner: &str,
        rels: impl IntoIterator<Item = Relation>,
    ) -> Vec<DatasetId> {
        rels.into_iter()
            .map(|r| {
                let name = r.name().to_string();
                self.register(name, owner, r)
            })
            .collect()
    }

    /// Parallel batch registration: profiling (sketches, statistics)
    /// dominates ingestion cost, so snapshots are computed on `workers`
    /// scoped threads before entries are installed. Ids are
    /// assigned in input order, identical to [`Self::register_batch`].
    pub fn register_batch_parallel(
        &self,
        owner: &str,
        rels: Vec<Relation>,
        workers: usize,
    ) -> Vec<DatasetId> {
        if rels.is_empty() {
            return Vec::new();
        }
        let workers = workers.clamp(1, rels.len());
        // Pre-assign ids in order so output matches the serial path.
        let base = self.next_id.fetch_add(rels.len() as u64, Ordering::Relaxed);
        let ids: Vec<DatasetId> = (0..rels.len())
            .map(|i| DatasetId(base + i as u64))
            .collect();
        let owner = owner.to_string();

        // Profile in parallel: each task produces a finished entry.
        let entries = Mutex::new(Vec::with_capacity(rels.len()));
        let jobs = Mutex::new(
            rels.into_iter()
                .zip(ids.iter().copied())
                .collect::<Vec<(Relation, DatasetId)>>(),
        );
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = jobs.lock().pop();
                    let Some((rel, id)) = job else { break };
                    let name = rel.name().to_string();
                    let rel = rel.with_source(id);
                    let at = self.tick();
                    let snapshot = snapshot_of(&rel, 1, at, std::slice::from_ref(&owner));
                    entries.lock().push(DatasetEntry {
                        id,
                        name,
                        owner: owner.clone(),
                        relation: Arc::new(rel),
                        version: 1,
                        registered_at: at,
                        snapshots: vec![snapshot],
                        tags: Vec::new(),
                    });
                });
            }
        });

        let mut map = self.entries.write();
        for e in entries.into_inner() {
            map.insert(e.id, e);
        }
        self.bump_generation();
        drop(map);
        ids
    }

    /// Update a dataset's contents; bumps the version and appends a new
    /// context snapshot iff the content actually changed. Returns the new
    /// version, or `None` if the id is unknown.
    pub fn update(&self, id: DatasetId, rel: Relation) -> Option<u32> {
        let mut entries = self.entries.write();
        let entry = entries.get_mut(&id)?;
        let rel = rel.with_source(id);
        let new_hash = content_hash(&rel);
        if new_hash == entry.latest_snapshot().content_hash {
            return Some(entry.version); // no change: fully-incremental no-op
        }
        entry.version += 1;
        let at = self.tick();
        let snap = snapshot_of(&rel, entry.version, at, std::slice::from_ref(&entry.owner));
        entry.snapshots.push(snap);
        entry.relation = Arc::new(rel);
        let version = entry.version;
        self.bump_generation();
        drop(entries);
        Some(version)
    }

    /// Attach a tag / semantic annotation (negotiation rounds, §4.1).
    pub fn add_tag(&self, id: DatasetId, tag: impl Into<String>) -> bool {
        let mut entries = self.entries.write();
        match entries.get_mut(&id) {
            Some(e) => {
                let tag = tag.into();
                if !e.tags.contains(&tag) {
                    e.tags.push(tag);
                    self.bump_generation();
                }
                drop(entries);
                true
            }
            None => false,
        }
    }

    /// Remove a dataset (seller withdraws it).
    pub fn remove(&self, id: DatasetId) -> bool {
        let mut entries = self.entries.write();
        let removed = entries.remove(&id).is_some();
        if removed {
            self.bump_generation();
        }
        drop(entries);
        removed
    }

    /// Fetch a dataset entry (cloned snapshot of its metadata).
    pub fn get(&self, id: DatasetId) -> Option<DatasetEntry> {
        self.entries.read().get(&id).cloned()
    }

    /// The current relation of a dataset.
    pub fn relation(&self, id: DatasetId) -> Option<Arc<Relation>> {
        self.entries
            .read()
            .get(&id)
            .map(|e| Arc::clone(&e.relation))
    }

    /// All dataset ids, ascending.
    pub fn ids(&self) -> Vec<DatasetId> {
        let mut ids: Vec<DatasetId> = self.entries.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True iff no datasets registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Snapshot of all entries (for index building).
    pub fn entries(&self) -> Vec<DatasetEntry> {
        let mut v: Vec<DatasetEntry> = self.entries.read().values().cloned().collect();
        v.sort_by_key(|e| e.id);
        v
    }

    /// All column data items across all datasets.
    pub fn column_refs(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        for e in self.entries() {
            for p in &e.latest_snapshot().profiles {
                out.push(ColumnRef::new(e.id, p.name.clone()));
            }
        }
        out
    }

    /// Catalog state for materialized snapshots. Per entry this keeps
    /// only what cannot be recomputed — the relation itself plus
    /// identity/lifecycle fields; content hashes and column profiles are
    /// deterministic functions of the relation and are rebuilt on
    /// [`Self::restore_state`]. Historical context snapshots are
    /// deliberately dropped: nothing in market behavior reads anything
    /// but the latest one.
    pub fn export_state(&self) -> MetadataImage {
        let entries = self
            .entries()
            .into_iter()
            .map(|e| DatasetEntryImage {
                id: e.id,
                name: e.name.clone(),
                owner: e.owner.clone(),
                relation: (*e.relation).clone(),
                version: e.version,
                registered_at: e.registered_at,
                snapshot_at: e.latest_snapshot().at,
                tags: e.tags,
            })
            .collect();
        MetadataImage {
            entries,
            next_id: self.next_id.load(Ordering::SeqCst),
            clock: self.clock.load(Ordering::SeqCst),
        }
    }

    /// Replace the catalog with a previously exported image: re-stamps
    /// leaf provenance, recomputes each entry's latest context snapshot
    /// at its original `(version, at)`, and restores the id/clock
    /// counters.
    pub fn restore_state(&self, image: MetadataImage) {
        let mut rebuilt = HashMap::with_capacity(image.entries.len());
        for e in image.entries {
            let rel = e.relation.with_source(e.id);
            let snapshot = snapshot_of(
                &rel,
                e.version,
                e.snapshot_at,
                std::slice::from_ref(&e.owner),
            );
            rebuilt.insert(
                e.id,
                DatasetEntry {
                    id: e.id,
                    name: e.name,
                    owner: e.owner,
                    relation: Arc::new(rel),
                    version: e.version,
                    registered_at: e.registered_at,
                    snapshots: vec![snapshot],
                    tags: e.tags,
                },
            );
        }
        let mut entries = self.entries.write();
        *entries = rebuilt;
        self.next_id.store(image.next_id, Ordering::SeqCst);
        self.clock.store(image.clock, Ordering::SeqCst);
        self.bump_generation();
        drop(entries);
    }
}

/// One catalog entry in a [`MetadataImage`].
#[derive(Debug, Clone)]
pub struct DatasetEntryImage {
    /// Market-wide id.
    pub id: DatasetId,
    /// Human name.
    pub name: String,
    /// Registered owner.
    pub owner: String,
    /// Current data (provenance is re-stamped on restore).
    pub relation: Relation,
    /// Current version.
    pub version: u32,
    /// Logical registration time.
    pub registered_at: u64,
    /// Logical time of the latest context snapshot.
    pub snapshot_at: u64,
    /// Free-form tags.
    pub tags: Vec<String>,
}

/// Catalog state captured by [`MetadataEngine::export_state`].
#[derive(Debug, Clone, Default)]
pub struct MetadataImage {
    /// All entries, id-sorted.
    pub entries: Vec<DatasetEntryImage>,
    /// The next dataset id to allocate.
    pub next_id: u64,
    /// The engine's logical clock.
    pub clock: u64,
}

/// Hash all cells of a relation (order-sensitive) for change detection.
fn content_hash(rel: &Relation) -> u64 {
    let mut h = DefaultHasher::new();
    rel.schema().names().for_each(|n| n.hash(&mut h));
    for row in rel.rows() {
        for v in row.values() {
            v.hash(&mut h);
        }
    }
    h.finish()
}

fn snapshot_of(rel: &Relation, version: u32, at: u64, owners: &[String]) -> ContextSnapshot {
    ContextSnapshot {
        version,
        at,
        rows: rel.len(),
        content_hash: content_hash(rel),
        profiles: ColumnProfile::compute_all(rel),
        owners: owners.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::builder::keyed_rel;

    #[test]
    fn register_assigns_sequential_ids_and_provenance() {
        let eng = MetadataEngine::new();
        let a = eng.register("a", "alice", keyed_rel("a", &[(1, "x")]));
        let b = eng.register("b", "bob", keyed_rel("b", &[(2, "y")]));
        assert_ne!(a, b);
        let rel = eng.relation(a).unwrap();
        assert_eq!(rel.source(), Some(a));
        assert_eq!(rel.rows()[0].provenance().atoms()[0].dataset, a);
    }

    #[test]
    fn initial_snapshot_has_profiles() {
        let eng = MetadataEngine::new();
        let id = eng.register("a", "alice", keyed_rel("a", &[(1, "x"), (2, "y")]));
        let e = eng.get(id).unwrap();
        assert_eq!(e.version, 1);
        assert_eq!(e.snapshots.len(), 1);
        assert_eq!(e.latest_snapshot().profiles.len(), 2);
        assert_eq!(e.latest_snapshot().rows, 2);
        assert_eq!(e.latest_snapshot().owners, vec!["alice".to_string()]);
    }

    #[test]
    fn update_bumps_version_and_appends_snapshot() {
        let eng = MetadataEngine::new();
        let id = eng.register("a", "alice", keyed_rel("a", &[(1, "x")]));
        let v = eng
            .update(id, keyed_rel("a", &[(1, "x"), (2, "y")]))
            .unwrap();
        assert_eq!(v, 2);
        let e = eng.get(id).unwrap();
        assert_eq!(e.snapshots.len(), 2);
        assert_eq!(e.latest_snapshot().rows, 2);
        // lifecycle is time-ordered
        assert!(e.snapshots[0].at < e.snapshots[1].at);
    }

    #[test]
    fn unchanged_update_is_a_noop() {
        let eng = MetadataEngine::new();
        let id = eng.register("a", "alice", keyed_rel("a", &[(1, "x")]));
        let v = eng.update(id, keyed_rel("a", &[(1, "x")])).unwrap();
        assert_eq!(v, 1, "same content must not bump the version");
        assert_eq!(eng.get(id).unwrap().snapshots.len(), 1);
    }

    #[test]
    fn update_unknown_id_is_none() {
        let eng = MetadataEngine::new();
        assert!(eng.update(DatasetId(99), keyed_rel("z", &[])).is_none());
    }

    #[test]
    fn parallel_batch_matches_serial_semantics() {
        let serial = MetadataEngine::new();
        let parallel = MetadataEngine::new();
        let tables: Vec<_> = (0..24)
            .map(|i| keyed_rel(&format!("t{i}"), &[(i, "a"), (i + 1, "b")]))
            .collect();
        let ids_s = serial.register_batch("steward", tables.clone());
        let ids_p = parallel.register_batch_parallel("steward", tables, 4);
        assert_eq!(ids_s.len(), ids_p.len());
        for (a, b) in ids_s.iter().zip(&ids_p) {
            let ea = serial.get(*a).unwrap();
            let eb = parallel.get(*b).unwrap();
            assert_eq!(ea.name, eb.name, "ids assigned in input order");
            assert_eq!(ea.owner, eb.owner);
            assert_eq!(ea.latest_snapshot().rows, eb.latest_snapshot().rows);
            assert_eq!(
                ea.latest_snapshot().content_hash,
                eb.latest_snapshot().content_hash
            );
            // provenance stamped with the right id
            assert_eq!(eb.relation.source(), Some(*b));
        }
    }

    #[test]
    fn parallel_batch_empty_and_single_worker() {
        let eng = MetadataEngine::new();
        assert!(eng.register_batch_parallel("o", vec![], 8).is_empty());
        let ids = eng.register_batch_parallel("o", vec![keyed_rel("t", &[(1, "x")])], 0);
        assert_eq!(ids.len(), 1);
        assert!(eng.get(ids[0]).is_some());
    }

    #[test]
    fn batch_register_names_from_relations() {
        let eng = MetadataEngine::new();
        let ids = eng.register_batch(
            "steward",
            vec![keyed_rel("t1", &[(1, "a")]), keyed_rel("t2", &[(2, "b")])],
        );
        assert_eq!(ids.len(), 2);
        assert_eq!(eng.get(ids[0]).unwrap().name, "t1");
        assert_eq!(eng.get(ids[1]).unwrap().owner, "steward");
    }

    #[test]
    fn tags_dedupe() {
        let eng = MetadataEngine::new();
        let id = eng.register("a", "alice", keyed_rel("a", &[(1, "x")]));
        assert!(eng.add_tag(id, "weather"));
        assert!(eng.add_tag(id, "weather"));
        assert_eq!(eng.get(id).unwrap().tags, vec!["weather".to_string()]);
        assert!(!eng.add_tag(DatasetId(42), "nope"));
    }

    #[test]
    fn remove_unregisters() {
        let eng = MetadataEngine::new();
        let id = eng.register("a", "alice", keyed_rel("a", &[(1, "x")]));
        assert!(eng.remove(id));
        assert!(!eng.remove(id));
        assert!(eng.get(id).is_none());
        assert!(eng.is_empty());
    }

    #[test]
    fn column_refs_enumerate_data_items() {
        let eng = MetadataEngine::new();
        eng.register("a", "alice", keyed_rel("a", &[(1, "x")]));
        eng.register("b", "bob", keyed_rel("b", &[(1, "x")]));
        let refs = eng.column_refs();
        assert_eq!(refs.len(), 4); // two datasets × (k, v)
    }

    #[test]
    fn profile_lookup_by_column() {
        let eng = MetadataEngine::new();
        let id = eng.register("a", "alice", keyed_rel("a", &[(1, "x"), (2, "y")]));
        let e = eng.get(id).unwrap();
        assert!(e.profile("k").is_some());
        assert!(e.profile("nope").is_none());
    }

    #[test]
    fn concurrent_registration_is_safe() {
        let eng = Arc::new(MetadataEngine::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let eng = Arc::clone(&eng);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let name = format!("t{t}_{i}");
                    eng.register(name.clone(), "owner", keyed_rel(&name, &[(i, "v")]));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(eng.len(), 100);
        // ids are unique
        let ids = eng.ids();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
    }
}
