//! Discovery queries (§5, "Data Discovery"): "identify a few datasets that
//! are relevant to a WTP-function among thousands of diverse heterogeneous
//! datasets".
//!
//! [`DiscoveryEngine`] bundles the metadata engine and built indexes and
//! answers the three query shapes the DoD engine needs: by keyword, by
//! target schema (query-by-example attribute names), and by content
//! similarity to a probe column.

use std::collections::HashMap;

use dmp_relation::DatasetId;

use crate::index::{tokenize, IndexBuilder, Indexes, JoinCandidate};
use crate::metadata::{ColumnRef, MetadataEngine};

/// A scored search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The matching column.
    pub column: ColumnRef,
    /// Relevance score in [0, 1].
    pub score: f64,
}

/// Discovery facade over the metadata engine + indexes.
///
/// The engine holds a *built* snapshot of the indexes; call
/// [`DiscoveryEngine::refresh`] after ingesting new datasets. Default-
/// threshold indexes come from the metadata engine's generation-keyed
/// cache ([`MetadataEngine::cached_indexes`]), so constructing a
/// `DiscoveryEngine` per query is cheap: the O(columns²) relationship
/// index is built once per catalog version, not once per caller. Custom
/// thresholds ([`DiscoveryEngine::with_builder`]) bypass the cache and
/// pay the full build (which the F3 benchmark times explicitly).
pub struct DiscoveryEngine<'a> {
    engine: &'a MetadataEngine,
    indexes: std::sync::Arc<Indexes>,
}

impl<'a> DiscoveryEngine<'a> {
    /// Indexes over the engine's current contents (cached per catalog
    /// generation).
    pub fn new(engine: &'a MetadataEngine) -> Self {
        let indexes = engine.cached_indexes();
        DiscoveryEngine { engine, indexes }
    }

    /// Build with a custom index builder (threshold tuning; uncached).
    pub fn with_builder(engine: &'a MetadataEngine, builder: &IndexBuilder) -> Self {
        let indexes = std::sync::Arc::new(builder.build(engine));
        DiscoveryEngine { engine, indexes }
    }

    /// Re-snapshot the indexes after ingestion (a no-op when the
    /// catalog has not changed since this snapshot was taken).
    pub fn refresh(&mut self) {
        self.indexes = self.engine.cached_indexes();
    }

    /// The underlying metadata engine.
    pub fn metadata(&self) -> &MetadataEngine {
        self.engine
    }

    /// The built indexes (read-only).
    pub fn indexes(&self) -> &Indexes {
        &self.indexes
    }

    /// Keyword search over column names: each query token votes for the
    /// columns whose name contains it; score = matched / query tokens.
    pub fn search_columns(&self, query: &str) -> Vec<SearchHit> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut votes: HashMap<ColumnRef, usize> = HashMap::new();
        for t in &tokens {
            if let Some(cols) = self.indexes.name_index.get(t) {
                for c in cols {
                    *votes.entry(c.clone()).or_insert(0) += 1;
                }
            }
        }
        let mut hits: Vec<SearchHit> = votes
            .into_iter()
            .map(|(column, v)| SearchHit {
                column,
                score: v as f64 / tokens.len() as f64,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.column.dataset.cmp(&b.column.dataset))
                .then_with(|| a.column.column.cmp(&b.column.column))
        });
        hits
    }

    /// Dataset search over names and tags.
    pub fn search_datasets(&self, query: &str) -> Vec<(DatasetId, f64)> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut votes: HashMap<DatasetId, usize> = HashMap::new();
        for t in &tokens {
            if let Some(ds) = self.indexes.dataset_index.get(t) {
                for d in ds {
                    *votes.entry(*d).or_insert(0) += 1;
                }
            }
        }
        let mut hits: Vec<(DatasetId, f64)> = votes
            .into_iter()
            .map(|(d, v)| (d, v as f64 / tokens.len() as f64))
            .collect();
        hits.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        hits
    }

    /// For a query-by-example target attribute, find candidate source
    /// columns: name matches boosted by key-ness. This is the entry point
    /// the DoD engine uses per requested attribute (§5.3).
    pub fn candidates_for_attribute(&self, attribute: &str) -> Vec<SearchHit> {
        let mut hits = self.search_columns(attribute);
        // Exact (case-insensitive) name matches rank first.
        for h in &mut hits {
            if h.column.column.eq_ignore_ascii_case(attribute) {
                h.score += 1.0;
            }
        }
        hits.sort_by(|a, b| b.score.total_cmp(&a.score));
        hits
    }

    /// Columns whose content is similar to the probe column (fusion
    /// candidates — the paper's `b` vs `b'` case). Returns hits sorted by
    /// Jaccard estimate, excluding the probe itself.
    pub fn similar_columns(&self, probe: &ColumnRef, min_jaccard: f64) -> Vec<SearchHit> {
        let probe_entry = match self.engine.get(probe.dataset) {
            Some(e) => e,
            None => return Vec::new(),
        };
        let probe_profile = match probe_entry.profile(&probe.column) {
            Some(p) => p.clone(),
            None => return Vec::new(),
        };
        let mut hits = Vec::new();
        for e in self.engine.entries() {
            for p in &e.latest_snapshot().profiles {
                if e.id == probe.dataset && p.name == probe.column {
                    continue;
                }
                let j = probe_profile.content_similarity(p);
                if j >= min_jaccard {
                    hits.push(SearchHit {
                        column: ColumnRef::new(e.id, p.name.clone()),
                        score: j,
                    });
                }
            }
        }
        hits.sort_by(|a, b| b.score.total_cmp(&a.score));
        hits
    }

    /// Join candidates incident to a dataset, best first.
    pub fn join_candidates(&self, d: DatasetId) -> Vec<&JoinCandidate> {
        let mut edges: Vec<&JoinCandidate> = self.indexes.relationships.edges_of(d).collect();
        edges.sort_by(|a, b| b.score().total_cmp(&a.score()));
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::{DataType, RelationBuilder, Value};

    fn engine() -> MetadataEngine {
        let eng = MetadataEngine::new();
        let mut b = RelationBuilder::new("eu_customers")
            .column("customer_id", DataType::Int)
            .column("customer_name", DataType::Str);
        for i in 0..100 {
            b = b.row(vec![Value::Int(i), Value::str(format!("name{i}"))]);
        }
        eng.register("eu_customers", "a", b.build().unwrap());

        let mut b = RelationBuilder::new("sales_2024")
            .column("customer_id", DataType::Int)
            .column("amount", DataType::Float);
        for i in 0..300 {
            b = b.row(vec![Value::Int(i % 100), Value::Float(i as f64)]);
        }
        eng.register("sales_2024", "b", b.build().unwrap());

        // A near-duplicate of customer_name: the paper's b' column.
        let mut b = RelationBuilder::new("crm_dump")
            .column("client", DataType::Str)
            .column("phone", DataType::Str);
        for i in 0..100 {
            let name = if i < 90 {
                format!("name{i}")
            } else {
                format!("other{i}")
            };
            b = b.row(vec![Value::str(name), Value::str(format!("+1-{i:04}"))]);
        }
        eng.register("crm_dump", "c", b.build().unwrap());
        eng
    }

    #[test]
    fn keyword_search_ranks_full_matches_first() {
        let eng = engine();
        let d = DiscoveryEngine::new(&eng);
        let hits = d.search_columns("customer id");
        assert!(!hits.is_empty());
        assert_eq!(hits[0].column.column, "customer_id");
        assert!((hits[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dataset_search_matches_names() {
        let eng = engine();
        let d = DiscoveryEngine::new(&eng);
        let hits = d.search_datasets("sales");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn attribute_candidates_prefer_exact_name() {
        let eng = engine();
        let d = DiscoveryEngine::new(&eng);
        let hits = d.candidates_for_attribute("amount");
        assert_eq!(hits[0].column.column, "amount");
        assert!(hits[0].score > 1.0);
    }

    #[test]
    fn similar_columns_find_near_duplicates() {
        let eng = engine();
        let d = DiscoveryEngine::new(&eng);
        let ids = eng.ids();
        let probe = ColumnRef::new(ids[0], "customer_name");
        let hits = d.similar_columns(&probe, 0.5);
        assert!(
            hits.iter().any(|h| h.column.column == "client"),
            "expected crm_dump.client as a fusion candidate, got {hits:?}"
        );
    }

    #[test]
    fn similar_columns_unknown_probe_is_empty() {
        let eng = engine();
        let d = DiscoveryEngine::new(&eng);
        assert!(d
            .similar_columns(&ColumnRef::new(DatasetId(99), "x"), 0.1)
            .is_empty());
    }

    #[test]
    fn join_candidates_sorted_by_score() {
        let eng = engine();
        let d = DiscoveryEngine::new(&eng);
        let ids = eng.ids();
        let cands = d.join_candidates(ids[0]);
        assert!(!cands.is_empty());
        for w in cands.windows(2) {
            assert!(w[0].score() >= w[1].score());
        }
    }

    #[test]
    fn refresh_picks_up_new_datasets() {
        let eng = engine();
        let mut d = DiscoveryEngine::new(&eng);
        assert!(d.search_datasets("inventory").is_empty());
        eng.register(
            "inventory",
            "d",
            RelationBuilder::new("inventory")
                .column("sku", DataType::Int)
                .row(vec![Value::Int(1)])
                .build()
                .unwrap(),
        );
        d.refresh();
        assert_eq!(d.search_datasets("inventory").len(), 1);
    }

    #[test]
    fn empty_query_yields_nothing() {
        let eng = engine();
        let d = DiscoveryEngine::new(&eng);
        assert!(d.search_columns("").is_empty());
        assert!(d.search_datasets("??").is_empty());
    }
}
