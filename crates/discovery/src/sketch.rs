//! Content sketches: MinHash signatures and HyperLogLog counters.
//!
//! The metadata engine computes "signatures of its contents" per data item
//! (§5.1), and the index builder "identifies candidate functions to map
//! attributes to each other" using those signatures (§5.2). MinHash gives
//! an unbiased estimate of Jaccard similarity between column value-sets —
//! and, combined with distinct-count estimates, of *containment*, the
//! right score for join-candidate detection (a key column contains the
//! foreign column's values).

use std::hash::{Hash, Hasher};

/// Multiply-shift style 64-bit mixer (splitmix64 finalizer). Deterministic
/// across runs and platforms, which keeps indexes reproducible.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash any `Hash` value to a stable u64 using a seeded FNV-1a basis.
fn hash_value<T: Hash>(v: &T, seed: u64) -> u64 {
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325 ^ mix64(seed));
    v.hash(&mut h);
    mix64(h.finish())
}

/// A MinHash signature with `K` 64-bit components.
///
/// Uses the standard one-hash + K permutations construction: each
/// permutation is `mix64(h ^ seed_i)`, and the signature stores the
/// minimum per permutation. `estimate_jaccard` is the fraction of matching
/// components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHash {
    mins: Vec<u64>,
    /// Number of items inserted (for containment estimation).
    items: u64,
}

impl MinHash {
    /// Default signature width used across the platform.
    pub const DEFAULT_K: usize = 64;

    /// Create an empty signature with `k` components.
    pub fn new(k: usize) -> Self {
        MinHash {
            mins: vec![u64::MAX; k.max(1)],
            items: 0,
        }
    }

    /// Create with the platform default width.
    pub fn default_width() -> Self {
        Self::new(Self::DEFAULT_K)
    }

    /// Insert one item.
    pub fn insert<T: Hash>(&mut self, item: &T) {
        let base = hash_value(item, 0);
        for (i, m) in self.mins.iter_mut().enumerate() {
            let h = mix64(base ^ (i as u64).wrapping_mul(0xa076_1d64_78bd_642f));
            if h < *m {
                *m = h;
            }
        }
        self.items += 1;
    }

    /// Build from an iterator of items.
    pub fn from_items<T: Hash>(k: usize, items: impl IntoIterator<Item = T>) -> Self {
        let mut mh = MinHash::new(k);
        for it in items {
            mh.insert(&it);
        }
        mh
    }

    /// Signature width.
    pub fn k(&self) -> usize {
        self.mins.len()
    }

    /// Items inserted (with multiplicity).
    pub fn items(&self) -> u64 {
        self.items
    }

    /// True iff nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Unbiased Jaccard similarity estimate between two signatures of the
    /// same width. Returns 0 for width mismatches or empty signatures.
    pub fn estimate_jaccard(&self, other: &MinHash) -> f64 {
        if self.k() != other.k() || self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let matches = self
            .mins
            .iter()
            .zip(&other.mins)
            .filter(|(a, b)| a == b)
            .count();
        matches as f64 / self.k() as f64
    }

    /// Containment estimate `|A ∩ B| / |A|` given distinct-count estimates
    /// `na = |A|`, `nb = |B|`, derived from the Jaccard estimate via
    /// `|A∩B| = J·(na+nb)/(1+J)`.
    pub fn estimate_containment(&self, other: &MinHash, na: f64, nb: f64) -> f64 {
        if na <= 0.0 {
            return 0.0;
        }
        let j = self.estimate_jaccard(other);
        let inter = j * (na + nb) / (1.0 + j);
        (inter / na).clamp(0.0, 1.0)
    }
}

/// HyperLogLog distinct-count estimator with 2^p registers.
///
/// Standard HLL with the small-range (linear counting) correction; p=12
/// (4096 registers, ~1.6 % relative error) is the platform default.
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    registers: Vec<u8>,
    p: u8,
}

impl HyperLogLog {
    /// Platform default precision.
    pub const DEFAULT_P: u8 = 12;

    /// Create with `p` index bits (4 ≤ p ≤ 18).
    pub fn new(p: u8) -> Self {
        let p = p.clamp(4, 18);
        HyperLogLog {
            registers: vec![0; 1 << p],
            p,
        }
    }

    /// Create with the platform default precision.
    pub fn default_precision() -> Self {
        Self::new(Self::DEFAULT_P)
    }

    /// Insert one item.
    pub fn insert<T: Hash>(&mut self, item: &T) {
        let h = hash_value(item, 0x5bd1_e995);
        let idx = (h >> (64 - self.p)) as usize;
        let rest = h << self.p;
        // rank = leading zeros of the remaining bits + 1, capped.
        let rank = (rest.leading_zeros() as u8 + 1).min(64 - self.p + 1);
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct items inserted.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                // Linear counting for the small range.
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merge another sketch into this one (union semantics).
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.p, other.p, "HLL precision mismatch");
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            if *b > *a {
                *a = *b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minhash_identical_sets_estimate_one() {
        let a = MinHash::from_items(128, 0..1000);
        let b = MinHash::from_items(128, 0..1000);
        assert!((a.estimate_jaccard(&b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn minhash_disjoint_sets_estimate_near_zero() {
        let a = MinHash::from_items(128, 0..1000);
        let b = MinHash::from_items(128, 10_000..11_000);
        assert!(a.estimate_jaccard(&b) < 0.1);
    }

    #[test]
    fn minhash_estimates_half_overlap() {
        // |A∩B| = 500, |A∪B| = 1500 -> J = 1/3
        let a = MinHash::from_items(256, 0..1000);
        let b = MinHash::from_items(256, 500..1500);
        let j = a.estimate_jaccard(&b);
        assert!(
            (j - 1.0 / 3.0).abs() < 0.12,
            "estimate {j} too far from 1/3"
        );
    }

    #[test]
    fn minhash_containment_detects_subset() {
        // A ⊂ B: containment of A in B should be ~1.
        let a = MinHash::from_items(256, 0..200);
        let b = MinHash::from_items(256, 0..2000);
        let c = a.estimate_containment(&b, 200.0, 2000.0);
        assert!(c > 0.7, "containment {c} should be high for a subset");
    }

    #[test]
    fn minhash_width_mismatch_is_zero() {
        let a = MinHash::from_items(64, 0..10);
        let b = MinHash::from_items(32, 0..10);
        assert_eq!(a.estimate_jaccard(&b), 0.0);
    }

    #[test]
    fn minhash_empty_is_zero_similarity() {
        let a = MinHash::new(64);
        let b = MinHash::from_items(64, 0..10);
        assert_eq!(a.estimate_jaccard(&b), 0.0);
    }

    #[test]
    fn hll_accuracy_within_five_percent_at_10k() {
        let mut hll = HyperLogLog::default_precision();
        for i in 0..10_000u64 {
            hll.insert(&i);
        }
        let est = hll.estimate();
        assert!(
            (est - 10_000.0).abs() / 10_000.0 < 0.05,
            "estimate {est} off by more than 5%"
        );
    }

    #[test]
    fn hll_small_range_is_exactish() {
        let mut hll = HyperLogLog::default_precision();
        for i in 0..50u64 {
            hll.insert(&i);
        }
        let est = hll.estimate();
        assert!((est - 50.0).abs() < 5.0, "small-range estimate {est}");
    }

    #[test]
    fn hll_duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::default_precision();
        for _ in 0..100 {
            for i in 0..100u64 {
                hll.insert(&i);
            }
        }
        let est = hll.estimate();
        assert!((est - 100.0).abs() < 10.0);
    }

    #[test]
    fn hll_merge_is_union() {
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        for i in 0..500u64 {
            a.insert(&i);
        }
        for i in 250..750u64 {
            b.insert(&i);
        }
        a.merge(&b);
        let est = a.estimate();
        assert!((est - 750.0).abs() / 750.0 < 0.1, "union estimate {est}");
    }

    #[test]
    fn deterministic_across_instances() {
        let a = MinHash::from_items(64, ["x", "y", "z"]);
        let b = MinHash::from_items(64, ["x", "y", "z"]);
        assert_eq!(a, b);
    }
}
