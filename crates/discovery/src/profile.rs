//! Column profiles: the per-data-item statistics of §5.1.
//!
//! "Each dataset is divided conceptually into data items, which are the
//! granularity of analysis of the engine. For example, a column data item
//! can be used to extract the value distribution of that attribute."

use dmp_relation::{DataType, Relation, Value};

use crate::sketch::{HyperLogLog, MinHash};

/// Statistical profile of one column, computed at ingestion time and
/// refreshed on every new context snapshot.
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Declared (or inferred) type.
    pub dtype: DataType,
    /// Total cells.
    pub rows: usize,
    /// Null cells.
    pub nulls: usize,
    /// Estimated distinct count (HyperLogLog).
    pub distinct_est: f64,
    /// Numeric min, if the column has numeric cells.
    pub min: Option<f64>,
    /// Numeric max, if the column has numeric cells.
    pub max: Option<f64>,
    /// Numeric mean, if the column has numeric cells.
    pub mean: Option<f64>,
    /// MinHash signature over the column's (stringified) values.
    pub signature: MinHash,
    /// A few sample values for display and name-free matching.
    pub samples: Vec<String>,
}

impl ColumnProfile {
    /// Maximum retained samples.
    const MAX_SAMPLES: usize = 8;

    /// Profile one column of a relation.
    pub fn compute(rel: &Relation, col: &str) -> dmp_relation::RelResult<ColumnProfile> {
        let idx = rel.col_index(col)?;
        let dtype = rel.schema().fields()[idx].dtype();
        let mut nulls = 0usize;
        let mut hll = HyperLogLog::default_precision();
        let mut mh = MinHash::default_width();
        let (mut min, mut max, mut sum, mut n_num) =
            (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0usize);
        let mut samples: Vec<String> = Vec::new();

        for row in rel.rows() {
            let v = row.get(idx);
            if v.is_null() {
                nulls += 1;
                continue;
            }
            let repr = canonical_repr(v);
            hll.insert(&repr);
            mh.insert(&repr);
            if samples.len() < Self::MAX_SAMPLES && !samples.contains(&repr) {
                samples.push(repr);
            }
            if let Some(x) = v.as_f64() {
                min = min.min(x);
                max = max.max(x);
                sum += x;
                n_num += 1;
            }
        }

        Ok(ColumnProfile {
            name: col.to_string(),
            dtype,
            rows: rel.len(),
            nulls,
            distinct_est: hll.estimate(),
            min: (n_num > 0).then_some(min),
            max: (n_num > 0).then_some(max),
            mean: (n_num > 0).then(|| sum / n_num as f64),
            signature: mh,
            samples,
        })
    }

    /// Profile every column of a relation.
    pub fn compute_all(rel: &Relation) -> Vec<ColumnProfile> {
        rel.schema()
            .names()
            .map(|c| ColumnProfile::compute(rel, c).expect("column exists"))
            .collect()
    }

    /// Fraction of null cells.
    pub fn null_ratio(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }

    /// Uniqueness: estimated distinct / non-null rows. ~1.0 indicates a
    /// key-like column (join-candidate left side).
    pub fn uniqueness(&self) -> f64 {
        let non_null = self.rows.saturating_sub(self.nulls);
        if non_null == 0 {
            0.0
        } else {
            (self.distinct_est / non_null as f64).min(1.0)
        }
    }

    /// Heuristic: does this column look like a key?
    pub fn looks_like_key(&self) -> bool {
        self.rows >= 2 && self.null_ratio() < 0.05 && self.uniqueness() > 0.9
    }

    /// Content Jaccard similarity against another profile.
    pub fn content_similarity(&self, other: &ColumnProfile) -> f64 {
        self.signature.estimate_jaccard(&other.signature)
    }

    /// Estimated containment of `self`'s values within `other`'s.
    pub fn containment_in(&self, other: &ColumnProfile) -> f64 {
        self.signature
            .estimate_containment(&other.signature, self.distinct_est, other.distinct_est)
    }
}

/// Canonical string form used for content sketches so that `Int(2)` in one
/// dataset matches `Float(2.0)` or `"2"` in another (cross-dataset joins
/// routinely cross types in the wild).
pub fn canonical_repr(v: &Value) -> String {
    match v {
        Value::Float(f) if f.fract() == 0.0 && f.is_finite() => format!("{}", *f as i64),
        Value::Str(s) => s.trim().to_lowercase(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::{DataType, RelationBuilder, Value};

    fn rel() -> Relation {
        let mut b = RelationBuilder::new("t")
            .column("id", DataType::Int)
            .column("name", DataType::Str)
            .column("score", DataType::Float);
        for i in 0..100 {
            b = b.row(vec![
                Value::Int(i),
                Value::str(format!("user{}", i % 10)),
                if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::Float(i as f64 / 2.0)
                },
            ]);
        }
        b.build().unwrap()
    }

    #[test]
    fn numeric_stats() {
        let p = ColumnProfile::compute(&rel(), "id").unwrap();
        assert_eq!(p.rows, 100);
        assert_eq!(p.nulls, 0);
        assert_eq!(p.min, Some(0.0));
        assert_eq!(p.max, Some(99.0));
        assert!((p.mean.unwrap() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_estimation() {
        let p = ColumnProfile::compute(&rel(), "name").unwrap();
        assert!(
            (p.distinct_est - 10.0).abs() < 2.0,
            "est {}",
            p.distinct_est
        );
    }

    #[test]
    fn null_ratio_counts() {
        let p = ColumnProfile::compute(&rel(), "score").unwrap();
        assert_eq!(p.nulls, 20);
        assert!((p.null_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn key_detection() {
        let r = rel();
        assert!(ColumnProfile::compute(&r, "id").unwrap().looks_like_key());
        assert!(!ColumnProfile::compute(&r, "name").unwrap().looks_like_key());
    }

    #[test]
    fn similarity_of_same_content_is_high() {
        let r = rel();
        let a = ColumnProfile::compute(&r, "id").unwrap();
        let b = ColumnProfile::compute(&r, "id").unwrap();
        assert!(a.content_similarity(&b) > 0.99);
    }

    #[test]
    fn canonical_repr_crosses_types() {
        assert_eq!(
            canonical_repr(&Value::Int(2)),
            canonical_repr(&Value::Float(2.0))
        );
        assert_eq!(canonical_repr(&Value::str(" Foo ")), "foo");
    }

    #[test]
    fn samples_are_bounded_and_distinct() {
        let p = ColumnProfile::compute(&rel(), "name").unwrap();
        assert!(p.samples.len() <= 8);
        let mut s = p.samples.clone();
        s.dedup();
        assert_eq!(s.len(), p.samples.len());
    }

    #[test]
    fn compute_all_covers_every_column() {
        let ps = ColumnProfile::compute_all(&rel());
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].name, "id");
    }
}
