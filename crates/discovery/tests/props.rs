//! Property tests for sketches and the metadata engine: estimator error
//! bounds and lifecycle invariants over random inputs.

use std::collections::HashSet;

use proptest::prelude::*;

use dmp_discovery::{HyperLogLog, MetadataEngine, MinHash};
use dmp_relation::builder::keyed_rel;

fn true_jaccard(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MinHash Jaccard estimate stays within ±0.2 of truth at width 256
    /// for sets of ≥ 50 elements (3σ ≈ 3·√(J(1−J)/256) ≤ 0.1; we allow
    /// slack for small sets).
    #[test]
    fn minhash_estimate_tracks_true_jaccard(
        xs in prop::collection::hash_set(0u64..500, 50..200),
        ys in prop::collection::hash_set(0u64..500, 50..200),
    ) {
        let ma = MinHash::from_items(256, xs.iter().copied());
        let mb = MinHash::from_items(256, ys.iter().copied());
        let est = ma.estimate_jaccard(&mb);
        let truth = true_jaccard(&xs, &ys);
        prop_assert!((est - truth).abs() < 0.2, "est {est} vs truth {truth}");
    }

    /// MinHash is order- and duplicate-insensitive (set semantics).
    #[test]
    fn minhash_is_set_semantics(mut xs in prop::collection::vec(0u64..100, 1..50)) {
        let a = MinHash::from_items(64, xs.iter().copied());
        xs.reverse();
        let doubled: Vec<u64> = xs.iter().chain(xs.iter()).copied().collect();
        let b = MinHash::from_items(64, doubled);
        prop_assert!((a.estimate_jaccard(&b) - 1.0).abs() < 1e-9);
    }

    /// HLL relative error stays under 10 % for cardinalities 100..5000.
    #[test]
    fn hll_relative_error_bounded(n in 100usize..5000) {
        let mut hll = HyperLogLog::default_precision();
        for i in 0..n as u64 {
            hll.insert(&i);
        }
        let est = hll.estimate();
        let rel_err = (est - n as f64).abs() / n as f64;
        prop_assert!(rel_err < 0.10, "n={n} est={est} err={rel_err}");
    }

    /// HLL merge equals inserting the union.
    #[test]
    fn hll_merge_is_union(
        xs in prop::collection::hash_set(0u64..2000, 1..500),
        ys in prop::collection::hash_set(0u64..2000, 1..500),
    ) {
        let mut a = HyperLogLog::new(12);
        let mut b = HyperLogLog::new(12);
        let mut u = HyperLogLog::new(12);
        for x in &xs { a.insert(x); u.insert(x); }
        for y in &ys { b.insert(y); u.insert(y); }
        a.merge(&b);
        prop_assert!((a.estimate() - u.estimate()).abs() < 1e-9);
    }

    /// The metadata engine's versions are monotone and snapshots align.
    #[test]
    fn metadata_versions_monotone(updates in prop::collection::vec(0i64..50, 1..8)) {
        let eng = MetadataEngine::new();
        let id = eng.register("t", "owner", keyed_rel("t", &[(0, "seed")]));
        let mut last_version = 1;
        for (i, u) in updates.iter().enumerate() {
            let rows: Vec<(i64, &str)> = (0..=*u).map(|k| (k + i as i64 * 100, "v")).collect();
            let v = eng.update(id, keyed_rel("t", &rows)).unwrap();
            prop_assert!(v >= last_version);
            last_version = v;
        }
        let entry = eng.get(id).unwrap();
        prop_assert_eq!(entry.version, last_version);
        prop_assert_eq!(entry.snapshots.len() as u32, last_version);
        // snapshot times strictly increase
        for w in entry.snapshots.windows(2) {
            prop_assert!(w[0].at < w[1].at);
        }
    }
}
