//! Reshaping operators the paper's WTP interfaces call for (§3.2.2.1):
//! pivoting and time-granularity interpolation ("value interpolation to
//! join on different time granularities", §5 Data Integration).

use std::collections::BTreeSet;

use crate::error::{RelError, RelResult};
use crate::provenance::Provenance;
use crate::relation::{Relation, Row};
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;

impl Relation {
    /// Pivot: one output row per distinct `index` value, one output column
    /// per distinct `columns` value, cells taken from `values`. When
    /// multiple input rows land in the same cell the *last* one wins
    /// (callers aggregate first if they need otherwise).
    pub fn pivot(&self, index: &str, columns: &str, values: &str) -> RelResult<Relation> {
        let i_idx = self.schema().index_of(index)?;
        let c_idx = self.schema().index_of(columns)?;
        let v_idx = self.schema().index_of(values)?;

        // Collect the distinct column labels in sorted order for a
        // deterministic output schema.
        let labels: BTreeSet<Value> = self
            .rows()
            .iter()
            .map(|r| r.get(c_idx).clone())
            .filter(|v| !v.is_null())
            .collect();
        let label_names: Vec<String> = labels.iter().map(|v| v.to_string()).collect();

        let mut fields = vec![self.schema().fields()[i_idx].clone()];
        let vtype = self.schema().fields()[v_idx].dtype();
        for name in &label_names {
            if fields.iter().any(|f| f.name() == name) {
                return Err(RelError::DuplicateColumn(name.clone()));
            }
            fields.push(Field::new(name, vtype));
        }
        let schema = Schema::new(fields)?.shared();

        // Fill rows in first-seen index order.
        let mut order: Vec<Value> = Vec::new();
        let mut table: std::collections::HashMap<Value, (Vec<Value>, Provenance)> =
            std::collections::HashMap::new();
        let width = label_names.len();
        let label_pos: std::collections::HashMap<&Value, usize> =
            labels.iter().enumerate().map(|(i, v)| (v, i)).collect();

        for row in self.rows() {
            let key = row.get(i_idx).clone();
            let entry = table.entry(key.clone()).or_insert_with(|| {
                order.push(key.clone());
                (vec![Value::Null; width], Provenance::empty())
            });
            if let Some(&pos) = label_pos.get(row.get(c_idx)) {
                entry.0[pos] = row.get(v_idx).clone();
            }
            entry.1 = entry.1.merge(row.provenance());
        }

        let rows = order
            .into_iter()
            .map(|key| {
                let (cells, prov) = table.remove(&key).expect("key recorded in order");
                let mut values = Vec::with_capacity(width + 1);
                values.push(key);
                values.extend(cells);
                Row::new(values, prov)
            })
            .collect();

        Ok(Relation::from_rows_unchecked(
            format!("pivot({})", self.name()),
            schema,
            rows,
        ))
    }

    /// Linearly interpolate numeric column `value_col` onto a regular time
    /// grid of `step` over `time_col`, producing a relation
    /// `(time_col: Timestamp, value_col: Float)`.
    ///
    /// This is the "value interpolation to join on different time
    /// granularities" preparation task from §5: two series resampled onto
    /// the same grid become joinable on the time column.
    pub fn interpolate_to_grid(
        &self,
        time_col: &str,
        value_col: &str,
        step: i64,
    ) -> RelResult<Relation> {
        if step <= 0 {
            return Err(RelError::Invalid(
                "interpolation step must be positive".into(),
            ));
        }
        let t_idx = self.schema().index_of(time_col)?;
        let v_idx = self.schema().index_of(value_col)?;

        // Gather (t, v, prov) points, sorted by t.
        let mut pts: Vec<(i64, f64, &Provenance)> = Vec::with_capacity(self.len());
        for row in self.rows() {
            if let (Some(t), Some(v)) = (row.get(t_idx).as_i64(), row.get(v_idx).as_f64()) {
                pts.push((t, v, row.provenance()));
            }
        }
        pts.sort_by_key(|p| p.0);
        let schema = Schema::of(&[
            (time_col, DataType::Timestamp),
            (value_col, DataType::Float),
        ])?
        .shared();
        if pts.is_empty() {
            return Ok(Relation::empty(format!("interp({})", self.name()), schema));
        }

        let t0 = pts[0].0;
        let t1 = pts[pts.len() - 1].0;
        // Snap the grid to multiples of `step` covering [t0, t1].
        let start = t0.div_euclid(step) * step + if t0.rem_euclid(step) == 0 { 0 } else { step };
        let mut rows = Vec::new();
        let mut seg = 0usize; // index of the segment start
        let mut t = start;
        while t <= t1 {
            while seg + 1 < pts.len() && pts[seg + 1].0 < t {
                seg += 1;
            }
            let (ta, va, pa) = pts[seg];
            let value = if ta == t || seg + 1 >= pts.len() {
                (va, pa.clone())
            } else {
                let (tb, vb, pb) = pts[seg + 1];
                if tb == ta {
                    (vb, pb.clone())
                } else {
                    let frac = (t - ta) as f64 / (tb - ta) as f64;
                    (va + frac * (vb - va), pa.merge(pb))
                }
            };
            rows.push(Row::new(
                vec![Value::Timestamp(t), Value::Float(value.0)],
                value.1,
            ));
            t += step;
        }

        Ok(Relation::from_rows_unchecked(
            format!("interp({})", self.name()),
            schema,
            rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::DatasetId;

    fn long() -> Relation {
        let schema = Schema::of(&[
            ("city", DataType::Str),
            ("metric", DataType::Str),
            ("v", DataType::Int),
        ])
        .unwrap()
        .shared();
        let mut r = Relation::empty("long", schema);
        for (c, m, v) in [
            ("nyc", "temp", 20),
            ("nyc", "wind", 5),
            ("chi", "temp", 15),
            ("chi", "wind", 9),
        ] {
            r.push_values(vec![Value::str(c), Value::str(m), Value::Int(v)])
                .unwrap();
        }
        r.with_source(DatasetId(1))
    }

    #[test]
    fn pivot_widens() {
        let p = long().pivot("city", "metric", "v").unwrap();
        assert_eq!(p.len(), 2);
        let names: Vec<_> = p.schema().names().collect();
        assert_eq!(names, vec!["city", "temp", "wind"]);
        let nyc = p
            .rows()
            .iter()
            .find(|r| r.get(0).as_str() == Some("nyc"))
            .unwrap();
        assert_eq!(nyc.get(1), &Value::Int(20));
        assert_eq!(nyc.get(2), &Value::Int(5));
        // both source rows credited
        assert_eq!(nyc.provenance().len(), 2);
    }

    #[test]
    fn pivot_missing_cells_are_null() {
        let schema = Schema::of(&[
            ("k", DataType::Str),
            ("c", DataType::Str),
            ("v", DataType::Int),
        ])
        .unwrap()
        .shared();
        let mut r = Relation::empty("sparse", schema);
        r.push_values(vec![Value::str("a"), Value::str("x"), Value::Int(1)])
            .unwrap();
        r.push_values(vec![Value::str("b"), Value::str("y"), Value::Int(2)])
            .unwrap();
        let p = r.pivot("k", "c", "v").unwrap();
        let a = p
            .rows()
            .iter()
            .find(|r| r.get(0).as_str() == Some("a"))
            .unwrap();
        assert!(a.get(2).is_null()); // a has no "y"
    }

    fn series(points: &[(i64, f64)]) -> Relation {
        let schema = Schema::of(&[("t", DataType::Timestamp), ("v", DataType::Float)])
            .unwrap()
            .shared();
        let mut r = Relation::empty("s", schema);
        for &(t, v) in points {
            r.push_values(vec![Value::Timestamp(t), Value::Float(v)])
                .unwrap();
        }
        r.with_source(DatasetId(2))
    }

    #[test]
    fn interpolation_hits_grid_points() {
        let s = series(&[(0, 0.0), (10, 10.0)]);
        let g = s.interpolate_to_grid("t", "v", 5).unwrap();
        let vals: Vec<(i64, f64)> = g
            .rows()
            .iter()
            .map(|r| (r.get(0).as_i64().unwrap(), r.get(1).as_f64().unwrap()))
            .collect();
        assert_eq!(vals, vec![(0, 0.0), (5, 5.0), (10, 10.0)]);
    }

    #[test]
    fn interpolated_point_merges_provenance_of_bracketing_points() {
        let s = series(&[(0, 0.0), (10, 10.0)]);
        let g = s.interpolate_to_grid("t", "v", 5).unwrap();
        let mid = &g.rows()[1];
        assert_eq!(mid.provenance().len(), 2);
        // exact hits keep single-point provenance
        assert_eq!(g.rows()[0].provenance().len(), 1);
    }

    #[test]
    fn two_series_join_after_resampling() {
        use crate::ops::join::JoinKind;
        let a = series(&[(0, 1.0), (60, 2.0)]);
        let b = series(&[(0, 10.0), (30, 15.0), (60, 20.0)]);
        let ga = a.interpolate_to_grid("t", "v", 30).unwrap();
        let gb = b
            .interpolate_to_grid("t", "v", 30)
            .unwrap()
            .rename("v", "v2")
            .unwrap();
        let j = ga.join(&gb, &[("t", "t")], JoinKind::Inner).unwrap();
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn invalid_step_rejected() {
        let s = series(&[(0, 0.0)]);
        assert!(s.interpolate_to_grid("t", "v", 0).is_err());
    }

    #[test]
    fn empty_series_interpolates_to_empty() {
        let s = series(&[]);
        let g = s.interpolate_to_grid("t", "v", 10).unwrap();
        assert!(g.is_empty());
    }
}
