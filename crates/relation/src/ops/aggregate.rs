//! Group-by aggregation. Aggregated rows carry the merged provenance of
//! every contributing input row, so revenue sharing still reaches the
//! sources after summarization.

use self::indexmap_lite::OrderedGroups;

use crate::error::{RelError, RelResult};
use crate::provenance::Provenance;
use crate::relation::{Relation, Row};
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFun {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// Count of distinct non-null values.
    CountDistinct,
}

impl AggFun {
    fn output_type(self, input: DataType) -> DataType {
        match self {
            AggFun::Count | AggFun::CountDistinct => DataType::Int,
            AggFun::Avg => DataType::Float,
            AggFun::Sum => {
                if input == DataType::Int {
                    DataType::Int
                } else {
                    DataType::Float
                }
            }
            AggFun::Min | AggFun::Max => input,
        }
    }
}

/// One aggregation: `fun(col) AS alias`.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Input column (ignored for `Count`, which counts rows).
    pub col: String,
    /// Aggregate function.
    pub fun: AggFun,
    /// Output column name.
    pub alias: String,
}

impl AggSpec {
    /// `fun(col) AS alias`.
    pub fn new(col: impl Into<String>, fun: AggFun, alias: impl Into<String>) -> Self {
        AggSpec {
            col: col.into(),
            fun,
            alias: alias.into(),
        }
    }
}

/// Running state for one aggregate within one group.
enum AggState {
    Count(i64),
    Sum {
        total: f64,
        any: bool,
        int_only: bool,
    },
    Avg {
        total: f64,
        n: usize,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    Distinct(std::collections::HashSet<Value>),
}

impl AggState {
    fn new(fun: AggFun) -> Self {
        match fun {
            AggFun::Count => AggState::Count(0),
            AggFun::Sum => AggState::Sum {
                total: 0.0,
                any: false,
                int_only: true,
            },
            AggFun::Avg => AggState::Avg { total: 0.0, n: 0 },
            AggFun::Min => AggState::Min(None),
            AggFun::Max => AggState::Max(None),
            AggFun::CountDistinct => AggState::Distinct(std::collections::HashSet::new()),
        }
    }

    fn update(&mut self, v: &Value) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum {
                total,
                any,
                int_only,
            } => {
                if let Some(x) = v.as_f64() {
                    *total += x;
                    *any = true;
                    if !matches!(v, Value::Int(_)) {
                        *int_only = false;
                    }
                }
            }
            AggState::Avg { total, n } => {
                if let Some(x) = v.as_f64() {
                    *total += x;
                    *n += 1;
                }
            }
            AggState::Min(cur) => {
                if !v.is_null() {
                    match cur {
                        Some(c) if v.cmp_numeric(c).is_lt() => *cur = Some(v.clone()),
                        None => *cur = Some(v.clone()),
                        _ => {}
                    }
                }
            }
            AggState::Max(cur) => {
                if !v.is_null() {
                    match cur {
                        Some(c) if v.cmp_numeric(c).is_gt() => *cur = Some(v.clone()),
                        None => *cur = Some(v.clone()),
                        _ => {}
                    }
                }
            }
            AggState::Distinct(set) => {
                if !v.is_null() {
                    set.insert(v.clone());
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum {
                total,
                any,
                int_only,
            } => {
                if !any {
                    Value::Null
                } else if int_only && total.fract() == 0.0 {
                    Value::Int(total as i64)
                } else {
                    Value::Float(total)
                }
            }
            AggState::Avg { total, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(total / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Distinct(set) => Value::Int(set.len() as i64),
        }
    }
}

impl Relation {
    /// Group by `keys` and compute `aggs` per group. With empty `keys`,
    /// the whole relation is one group (yielding exactly one row, even
    /// when the input is empty).
    pub fn aggregate(&self, keys: &[&str], aggs: &[AggSpec]) -> RelResult<Relation> {
        let key_idx: Vec<usize> = keys
            .iter()
            .map(|k| self.schema().index_of(k))
            .collect::<RelResult<_>>()?;
        let agg_idx: Vec<usize> = aggs
            .iter()
            .map(|a| {
                if a.fun == AggFun::Count && !self.schema().contains(&a.col) {
                    Ok(usize::MAX) // COUNT(*): no input column required
                } else {
                    self.schema().index_of(&a.col)
                }
            })
            .collect::<RelResult<_>>()?;

        // Output schema: keys then aggregates.
        let mut fields: Vec<Field> = key_idx
            .iter()
            .map(|&i| self.schema().fields()[i].clone())
            .collect();
        for (spec, &idx) in aggs.iter().zip(&agg_idx) {
            let input_t = if idx == usize::MAX {
                DataType::Any
            } else {
                self.schema().fields()[idx].dtype()
            };
            if fields.iter().any(|f| f.name() == spec.alias) {
                return Err(RelError::DuplicateColumn(spec.alias.clone()));
            }
            fields.push(Field::new(&spec.alias, spec.fun.output_type(input_t)));
        }
        let out_schema = Schema::new(fields)?.shared();

        let mut groups: OrderedGroups<Vec<Value>, (Vec<AggState>, Vec<Provenance>)> =
            OrderedGroups::new();
        for row in self.rows() {
            let key: Vec<Value> = key_idx.iter().map(|&i| row.get(i).clone()).collect();
            let entry = groups.entry(key, || {
                (
                    aggs.iter().map(|a| AggState::new(a.fun)).collect(),
                    Vec::new(),
                )
            });
            for (state, &idx) in entry.0.iter_mut().zip(&agg_idx) {
                let v = if idx == usize::MAX {
                    &Value::Bool(true)
                } else {
                    row.get(idx)
                };
                state.update(v);
            }
            entry.1.push(row.provenance().clone());
        }

        // A global aggregate over an empty input still yields one row.
        if keys.is_empty() && groups.is_empty() {
            groups.entry(Vec::new(), || {
                (
                    aggs.iter().map(|a| AggState::new(a.fun)).collect(),
                    Vec::new(),
                )
            });
        }

        let mut rows = Vec::with_capacity(groups.len());
        for (key, (states, provs)) in groups.into_iter() {
            let mut values = key;
            values.extend(states.into_iter().map(AggState::finish));
            rows.push(Row::new(values, Provenance::merge_all(provs.iter())));
        }

        Ok(Relation::from_rows_unchecked(
            format!("γ({})", self.name()),
            out_schema,
            rows,
        ))
    }
}

/// A tiny insertion-ordered hash map, sufficient for deterministic
/// group-by output without pulling in an external indexmap dependency.
mod indexmap_lite {
    use std::collections::HashMap;
    use std::hash::Hash;

    pub struct OrderedGroups<K, V> {
        index: HashMap<K, usize>,
        entries: Vec<(K, V)>,
    }

    impl<K: Eq + Hash + Clone, V> OrderedGroups<K, V> {
        pub fn new() -> Self {
            OrderedGroups {
                index: HashMap::new(),
                entries: Vec::new(),
            }
        }

        pub fn entry(&mut self, key: K, make: impl FnOnce() -> V) -> &mut V {
            if let Some(&i) = self.index.get(&key) {
                return &mut self.entries[i].1;
            }
            let i = self.entries.len();
            self.index.insert(key.clone(), i);
            self.entries.push((key, make()));
            &mut self.entries[i].1
        }

        pub fn len(&self) -> usize {
            self.entries.len()
        }

        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        pub fn into_iter(self) -> impl Iterator<Item = (K, V)> {
            self.entries.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::DatasetId;

    fn sales() -> Relation {
        let schema = Schema::of(&[
            ("region", DataType::Str),
            ("amount", DataType::Int),
            ("rate", DataType::Float),
        ])
        .unwrap()
        .shared();
        let mut r = Relation::empty("sales", schema);
        for (g, a, f) in [
            ("eu", 10, 0.1),
            ("eu", 20, 0.2),
            ("us", 5, 0.5),
            ("us", 5, 0.4),
            ("ap", 1, 0.9),
        ] {
            r.push_values(vec![Value::str(g), Value::Int(a), Value::Float(f)])
                .unwrap();
        }
        r.with_source(DatasetId(3))
    }

    #[test]
    fn group_by_sums_per_group() {
        let g = sales()
            .aggregate(&["region"], &[AggSpec::new("amount", AggFun::Sum, "total")])
            .unwrap();
        assert_eq!(g.len(), 3);
        let eu = g
            .rows()
            .iter()
            .find(|r| r.get(0).as_str() == Some("eu"))
            .unwrap();
        assert_eq!(eu.get(1), &Value::Int(30));
    }

    #[test]
    fn output_order_is_first_seen() {
        let g = sales()
            .aggregate(&["region"], &[AggSpec::new("amount", AggFun::Count, "n")])
            .unwrap();
        let regions: Vec<_> = g
            .rows()
            .iter()
            .filter_map(|r| r.get(0).as_str().map(str::to_string))
            .collect();
        assert_eq!(regions, vec!["eu", "us", "ap"]);
    }

    #[test]
    fn provenance_spans_group_members() {
        let g = sales()
            .aggregate(&["region"], &[AggSpec::new("amount", AggFun::Sum, "t")])
            .unwrap();
        let eu = g
            .rows()
            .iter()
            .find(|r| r.get(0).as_str() == Some("eu"))
            .unwrap();
        assert_eq!(eu.provenance().len(), 2); // two eu rows contributed
    }

    #[test]
    fn global_aggregate_single_row() {
        let g = sales()
            .aggregate(
                &[],
                &[
                    AggSpec::new("amount", AggFun::Avg, "avg"),
                    AggSpec::new("amount", AggFun::Min, "lo"),
                    AggSpec::new("amount", AggFun::Max, "hi"),
                    AggSpec::new("region", AggFun::CountDistinct, "regions"),
                ],
            )
            .unwrap();
        assert_eq!(g.len(), 1);
        let row = &g.rows()[0];
        assert_eq!(row.get(0), &Value::Float(41.0 / 5.0));
        assert_eq!(row.get(1), &Value::Int(1));
        assert_eq!(row.get(2), &Value::Int(20));
        assert_eq!(row.get(3), &Value::Int(3));
    }

    #[test]
    fn empty_input_global_aggregate_yields_nulls() {
        let empty = Relation::empty("e", Schema::of(&[("x", DataType::Int)]).unwrap().shared());
        let g = empty
            .aggregate(&[], &[AggSpec::new("x", AggFun::Sum, "s")])
            .unwrap();
        assert_eq!(g.len(), 1);
        assert!(g.rows()[0].get(0).is_null());
    }

    #[test]
    fn count_star_needs_no_column() {
        let g = sales()
            .aggregate(&["region"], &[AggSpec::new("*", AggFun::Count, "n")])
            .unwrap();
        let total: i64 = g.rows().iter().filter_map(|r| r.get(1).as_i64()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn duplicate_alias_rejected() {
        let err = sales()
            .aggregate(
                &["region"],
                &[AggSpec::new("amount", AggFun::Sum, "region")],
            )
            .unwrap_err();
        assert!(matches!(err, RelError::DuplicateColumn(_)));
    }

    #[test]
    fn sum_preserves_int_type_when_integral() {
        let g = sales()
            .aggregate(&[], &[AggSpec::new("rate", AggFun::Sum, "rates")])
            .unwrap();
        assert!(matches!(g.rows()[0].get(0), Value::Float(_)));
        let g = sales()
            .aggregate(&[], &[AggSpec::new("amount", AggFun::Sum, "amounts")])
            .unwrap();
        assert!(matches!(g.rows()[0].get(0), Value::Int(41)));
    }
}
