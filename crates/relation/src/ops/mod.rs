//! Relational and non-relational operators over [`crate::Relation`].
//!
//! All operators propagate why-provenance so the market can later share
//! revenue back to contributing datasets (§3.2.3 of the paper).

pub mod aggregate;
pub mod basic;
pub mod join;
pub mod reshape;

pub use aggregate::{AggFun, AggSpec};
pub use join::JoinKind;
