//! Select, project, rename, limit, union, distinct, sort and map —
//! the workhorse operators the mashup builder composes.

use std::collections::HashSet;
use std::sync::Arc;

use crate::error::{RelError, RelResult};
use crate::expr::Expr;
use crate::relation::{Relation, Row};
use crate::schema::{Field, Schema};
use crate::value::Value;

impl Relation {
    /// Rows satisfying the predicate. Provenance is preserved per-row.
    pub fn select(&self, predicate: &Expr) -> RelResult<Relation> {
        let mut rows = Vec::new();
        for row in self.rows() {
            if predicate.matches(self.schema(), row)? {
                rows.push(row.clone());
            }
        }
        Ok(Relation::from_rows_unchecked(
            format!("σ({})", self.name()),
            Arc::clone(self.schema()),
            rows,
        ))
    }

    /// Rows satisfying a Rust closure (for callers who don't want to build
    /// an [`Expr`]).
    pub fn select_fn(&self, mut pred: impl FnMut(&Row) -> bool) -> Relation {
        let rows = self.rows().iter().filter(|r| pred(r)).cloned().collect();
        Relation::from_rows_unchecked(
            format!("σ({})", self.name()),
            Arc::clone(self.schema()),
            rows,
        )
    }

    /// Keep only `cols`, in the given order.
    pub fn project(&self, cols: &[&str]) -> RelResult<Relation> {
        let schema = self.schema().project(cols)?.shared();
        let idxs: Vec<usize> = cols
            .iter()
            .map(|c| self.schema().index_of(c))
            .collect::<RelResult<_>>()?;
        let rows = self
            .rows()
            .iter()
            .map(|r| {
                Row::new(
                    idxs.iter().map(|&i| r.get(i).clone()).collect(),
                    r.provenance().clone(),
                )
            })
            .collect();
        Ok(Relation::from_rows_unchecked(
            format!("π({})", self.name()),
            schema,
            rows,
        ))
    }

    /// Rename a single column.
    pub fn rename(&self, from: &str, to: &str) -> RelResult<Relation> {
        let idx = self.schema().index_of(from)?;
        if self.schema().contains(to) && to != from {
            return Err(RelError::DuplicateColumn(to.to_string()));
        }
        let fields: Vec<Field> = self
            .schema()
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| if i == idx { f.renamed(to) } else { f.clone() })
            .collect();
        Ok(Relation::from_rows_unchecked(
            self.name().to_string(),
            Schema::new(fields)?.shared(),
            self.rows().to_vec(),
        ))
    }

    /// First `n` rows.
    pub fn limit(&self, n: usize) -> Relation {
        Relation::from_rows_unchecked(
            self.name().to_string(),
            Arc::clone(self.schema()),
            self.rows().iter().take(n).cloned().collect(),
        )
    }

    /// Bag union. Schemas must be union-compatible (same arity, unifiable
    /// types); the left relation's column names win.
    pub fn union(&self, other: &Relation) -> RelResult<Relation> {
        let schema = self.schema().union_compatible(other.schema())?.shared();
        let mut rows = Vec::with_capacity(self.len() + other.len());
        rows.extend_from_slice(self.rows());
        rows.extend_from_slice(other.rows());
        Ok(Relation::from_rows_unchecked(
            format!("{}∪{}", self.name(), other.name()),
            schema,
            rows,
        ))
    }

    /// Set-distinct on all columns. The kept row for each value-group
    /// merges the provenance of **all** duplicates, so no contributing
    /// source row loses credit.
    pub fn distinct(&self) -> Relation {
        let mut seen: HashSet<Vec<Value>> = HashSet::with_capacity(self.len());
        let mut kept: Vec<Row> = Vec::new();
        let mut index_of: std::collections::HashMap<Vec<Value>, usize> =
            std::collections::HashMap::new();
        for row in self.rows() {
            let key = row.values().to_vec();
            if seen.insert(key.clone()) {
                index_of.insert(key, kept.len());
                kept.push(row.clone());
            } else {
                let i = index_of[&key];
                let merged = kept[i].provenance().merge(row.provenance());
                kept[i].set_provenance(merged);
            }
        }
        Relation::from_rows_unchecked(
            format!("δ({})", self.name()),
            Arc::clone(self.schema()),
            kept,
        )
    }

    /// Stable sort by one column ascending (`desc = false`) or descending.
    pub fn sort_by(&self, col: &str, desc: bool) -> RelResult<Relation> {
        let idx = self.schema().index_of(col)?;
        let mut rows = self.rows().to_vec();
        rows.sort_by(|a, b| {
            let ord = a.get(idx).cmp_numeric(b.get(idx));
            if desc {
                ord.reverse()
            } else {
                ord
            }
        });
        Ok(Relation::from_rows_unchecked(
            self.name().to_string(),
            Arc::clone(self.schema()),
            rows,
        ))
    }

    /// Add a derived column computed by an expression.
    pub fn with_column(&self, name: &str, expr: &Expr) -> RelResult<Relation> {
        if self.schema().contains(name) {
            return Err(RelError::DuplicateColumn(name.to_string()));
        }
        // Infer the type from the first non-null result.
        let mut new_rows = Vec::with_capacity(self.len());
        let mut dtype = crate::schema::DataType::Any;
        for row in self.rows() {
            let v = expr.eval(self.schema(), row)?;
            if dtype == crate::schema::DataType::Any && !v.is_null() {
                dtype = v.dtype();
            }
            let mut values = row.values().to_vec();
            values.push(v);
            new_rows.push(Row::new(values, row.provenance().clone()));
        }
        let mut fields = self.schema().fields().to_vec();
        fields.push(Field::new(name, dtype));
        Ok(Relation::from_rows_unchecked(
            self.name().to_string(),
            Schema::new(fields)?.shared(),
            new_rows,
        ))
    }

    /// Map one column in place through a function (unit conversions, the
    /// paper's `f(d)` transformations, DP perturbation, ...).
    pub fn map_column(&self, col: &str, mut f: impl FnMut(&Value) -> Value) -> RelResult<Relation> {
        let idx = self.schema().index_of(col)?;
        let rows = self
            .rows()
            .iter()
            .map(|r| {
                let mut values = r.values().to_vec();
                values[idx] = f(&values[idx]);
                Row::new(values, r.provenance().clone())
            })
            .collect();
        // The mapped column's type may change; rebuild schema lazily as Any.
        let fields: Vec<Field> = self
            .schema()
            .fields()
            .iter()
            .enumerate()
            .map(|(i, fd)| {
                if i == idx {
                    Field::new(fd.name(), crate::schema::DataType::Any)
                } else {
                    fd.clone()
                }
            })
            .collect();
        Ok(Relation::from_rows_unchecked(
            self.name().to_string(),
            Schema::new(fields)?.shared(),
            rows,
        ))
    }

    /// Random sample without replacement of up to `n` rows (deterministic
    /// given the RNG). Used by the arbiter to show data previews.
    pub fn sample(&self, n: usize, rng: &mut impl rand::Rng) -> Relation {
        use rand::seq::SliceRandom;
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        idx.sort_unstable();
        Relation::from_rows_unchecked(
            format!("sample({})", self.name()),
            Arc::clone(self.schema()),
            idx.into_iter().map(|i| self.rows()[i].clone()).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::DatasetId;
    use crate::schema::DataType;
    use rand::SeedableRng;

    fn rel() -> Relation {
        let schema = Schema::of(&[("x", DataType::Int), ("g", DataType::Str)])
            .unwrap()
            .shared();
        let mut r = Relation::empty("t", schema);
        for (x, g) in [(1, "a"), (2, "b"), (3, "a"), (2, "b")] {
            r.push_values(vec![Value::Int(x), Value::str(g)]).unwrap();
        }
        r.with_source(DatasetId(1))
    }

    #[test]
    fn select_filters_rows() {
        let r = rel();
        let s = r.select(&Expr::col("x").gt(Expr::lit(1))).unwrap();
        assert_eq!(s.len(), 3);
        // provenance of the kept rows is intact
        assert!(s.rows().iter().all(|row| row.provenance().len() == 1));
    }

    #[test]
    fn project_reorders_and_keeps_provenance() {
        let r = rel();
        let p = r.project(&["g", "x"]).unwrap();
        assert_eq!(p.schema().names().collect::<Vec<_>>(), vec!["g", "x"]);
        assert_eq!(p.rows()[0].provenance().len(), 1);
        assert!(r.project(&["nope"]).is_err());
    }

    #[test]
    fn rename_rejects_collision() {
        let r = rel();
        assert!(r.rename("x", "g").is_err());
        let rn = r.rename("x", "value").unwrap();
        assert!(rn.schema().contains("value"));
    }

    #[test]
    fn union_requires_compatible_arity() {
        let r = rel();
        let other = Relation::empty("o", Schema::of(&[("x", DataType::Int)]).unwrap().shared());
        assert!(r.union(&other).is_err());
        let u = r.union(&r).unwrap();
        assert_eq!(u.len(), 8);
    }

    #[test]
    fn distinct_merges_duplicate_provenance() {
        let r = rel();
        let d = r.distinct();
        assert_eq!(d.len(), 3);
        // the duplicated (2, "b") row keeps both source rows' credit
        let dup = d
            .rows()
            .iter()
            .find(|row| row.get(0) == &Value::Int(2))
            .unwrap();
        assert_eq!(dup.provenance().len(), 2);
    }

    #[test]
    fn sort_orders_numerically() {
        let r = rel();
        let s = r.sort_by("x", true).unwrap();
        let xs: Vec<i64> = s.rows().iter().filter_map(|r| r.get(0).as_i64()).collect();
        assert_eq!(xs, vec![3, 2, 2, 1]);
    }

    #[test]
    fn with_column_derives_values() {
        let r = rel();
        let e = Expr::Arith(
            Box::new(Expr::col("x")),
            crate::expr::ArithOp::Mul,
            Box::new(Expr::lit(10)),
        );
        let w = r.with_column("x10", &e).unwrap();
        assert_eq!(w.rows()[2].get(2), &Value::Int(30));
        assert!(w.with_column("x10", &e).is_err(), "duplicate rejected");
    }

    #[test]
    fn map_column_transforms_in_place() {
        let r = rel();
        let m = r
            .map_column("x", |v| Value::Float(v.as_f64().unwrap() * 1.8 + 32.0))
            .unwrap();
        assert_eq!(m.rows()[0].get(0), &Value::Float(33.8));
    }

    #[test]
    fn sample_is_deterministic_for_seed() {
        let r = rel();
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(7);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(7);
        let a = r.sample(2, &mut rng1);
        let b = r.sample(2, &mut rng2);
        assert_eq!(a.rows().len(), 2);
        assert_eq!(
            a.rows()
                .iter()
                .map(|r| r.values().to_vec())
                .collect::<Vec<_>>(),
            b.rows()
                .iter()
                .map(|r| r.values().to_vec())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn limit_truncates() {
        assert_eq!(rel().limit(2).len(), 2);
        assert_eq!(rel().limit(99).len(), 4);
    }
}
