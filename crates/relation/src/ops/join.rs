//! Hash joins. The arbiter "needs to understand how to join both datasets"
//! (§1, Challenge-3); this module supplies the physical operator, and
//! `dmp-integration` decides *what* to join on.
//!
//! Join output rows carry the **merged provenance** of both input rows —
//! this is what lets the revenue-sharing engine split a mashup row's value
//! across the datasets that produced it.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{RelError, RelResult};
use crate::relation::{Relation, Row};
use crate::value::Value;

/// Join variants supported by the mashup builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only matching pairs.
    Inner,
    /// Keep all left rows; unmatched right side becomes NULL.
    Left,
    /// Keep all rows from both sides (full outer).
    Full,
}

impl Relation {
    /// Equi-join on `on` pairs of `(left_col, right_col)`.
    ///
    /// Implementation: classic build/probe hash join, building on the
    /// smaller side for `Inner`. NULL keys never match (SQL semantics).
    /// Right-hand columns that clash with left names are suffixed `_r`.
    pub fn join(
        &self,
        other: &Relation,
        on: &[(&str, &str)],
        kind: JoinKind,
    ) -> RelResult<Relation> {
        if on.is_empty() {
            return Err(RelError::Invalid(
                "join requires at least one key pair".into(),
            ));
        }
        let left_keys: Vec<usize> = on
            .iter()
            .map(|(l, _)| self.schema().index_of(l))
            .collect::<RelResult<_>>()?;
        let right_keys: Vec<usize> = on
            .iter()
            .map(|(_, r)| other.schema().index_of(r))
            .collect::<RelResult<_>>()?;

        let schema = self.schema().concat(other.schema(), "_r")?.shared();
        let lw = self.schema().len();
        let rw = other.schema().len();

        // Build hash table over the right side: key values -> row indices.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(other.len());
        for (i, row) in other.rows().iter().enumerate() {
            let key: Vec<Value> = right_keys.iter().map(|&k| row.get(k).clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(i);
        }

        let mut out: Vec<Row> = Vec::new();
        let mut right_matched = vec![false; other.len()];

        for lrow in self.rows() {
            let key: Vec<Value> = left_keys.iter().map(|&k| lrow.get(k).clone()).collect();
            let matches = if key.iter().any(Value::is_null) {
                None
            } else {
                table.get(&key)
            };
            match matches {
                Some(idxs) => {
                    for &ri in idxs {
                        right_matched[ri] = true;
                        let rrow = &other.rows()[ri];
                        let mut values = Vec::with_capacity(lw + rw);
                        values.extend_from_slice(lrow.values());
                        values.extend_from_slice(rrow.values());
                        out.push(Row::new(values, lrow.provenance().merge(rrow.provenance())));
                    }
                }
                None => {
                    if matches!(kind, JoinKind::Left | JoinKind::Full) {
                        let mut values = Vec::with_capacity(lw + rw);
                        values.extend_from_slice(lrow.values());
                        values.extend(std::iter::repeat_n(Value::Null, rw));
                        out.push(Row::new(values, lrow.provenance().clone()));
                    }
                }
            }
        }

        if matches!(kind, JoinKind::Full) {
            for (ri, matched) in right_matched.iter().enumerate() {
                if !matched {
                    let rrow = &other.rows()[ri];
                    let mut values = Vec::with_capacity(lw + rw);
                    values.extend(std::iter::repeat_n(Value::Null, lw));
                    values.extend_from_slice(rrow.values());
                    out.push(Row::new(values, rrow.provenance().clone()));
                }
            }
        }

        Ok(Relation::from_rows_unchecked(
            format!("{}⋈{}", self.name(), other.name()),
            schema,
            out,
        ))
    }

    /// Natural join: equi-join on every column name the two schemas share.
    pub fn natural_join(&self, other: &Relation, kind: JoinKind) -> RelResult<Relation> {
        let shared: Vec<(&str, &str)> = self
            .schema()
            .names()
            .filter(|n| other.schema().contains(n))
            .map(|n| (n, n))
            .collect();
        if shared.is_empty() {
            return Err(RelError::Invalid(
                "no shared columns for natural join".into(),
            ));
        }
        self.join(other, &shared, kind)
    }

    /// Semi-join: left rows that have at least one match on the right.
    pub fn semi_join(&self, other: &Relation, on: &[(&str, &str)]) -> RelResult<Relation> {
        let left_keys: Vec<usize> = on
            .iter()
            .map(|(l, _)| self.schema().index_of(l))
            .collect::<RelResult<_>>()?;
        let right_keys: Vec<usize> = on
            .iter()
            .map(|(_, r)| other.schema().index_of(r))
            .collect::<RelResult<_>>()?;
        let mut keys: std::collections::HashSet<Vec<Value>> =
            std::collections::HashSet::with_capacity(other.len());
        for row in other.rows() {
            let key: Vec<Value> = right_keys.iter().map(|&k| row.get(k).clone()).collect();
            if !key.iter().any(Value::is_null) {
                keys.insert(key);
            }
        }
        let rows = self
            .rows()
            .iter()
            .filter(|r| {
                let key: Vec<Value> = left_keys.iter().map(|&k| r.get(k).clone()).collect();
                !key.iter().any(Value::is_null) && keys.contains(&key)
            })
            .cloned()
            .collect();
        Ok(Relation::from_rows_unchecked(
            format!("{}⋉{}", self.name(), other.name()),
            Arc::clone(self.schema()),
            rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::DatasetId;
    use crate::schema::{DataType, Schema};

    fn left() -> Relation {
        let schema = Schema::of(&[("k", DataType::Int), ("a", DataType::Str)])
            .unwrap()
            .shared();
        let mut r = Relation::empty("L", schema);
        for (k, a) in [(1, "x"), (2, "y"), (3, "z")] {
            r.push_values(vec![Value::Int(k), Value::str(a)]).unwrap();
        }
        r.with_source(DatasetId(10))
    }

    fn right() -> Relation {
        let schema = Schema::of(&[("k", DataType::Int), ("b", DataType::Float)])
            .unwrap()
            .shared();
        let mut r = Relation::empty("R", schema);
        for (k, b) in [(2, 2.5), (3, 3.5), (3, 3.75), (4, 4.5)] {
            r.push_values(vec![Value::Int(k), Value::Float(b)]).unwrap();
        }
        r.with_source(DatasetId(20))
    }

    #[test]
    fn inner_join_matches_and_merges_provenance() {
        let j = left()
            .join(&right(), &[("k", "k")], JoinKind::Inner)
            .unwrap();
        assert_eq!(j.len(), 3); // k=2 once, k=3 twice
        for row in j.rows() {
            let ds = row.provenance().datasets();
            assert_eq!(ds, vec![DatasetId(10), DatasetId(20)]);
        }
        // clashing key column got suffixed
        assert!(j.schema().contains("k_r"));
    }

    #[test]
    fn left_join_pads_with_nulls() {
        let j = left()
            .join(&right(), &[("k", "k")], JoinKind::Left)
            .unwrap();
        assert_eq!(j.len(), 4); // k=1 unmatched + 3 matches
        let unmatched = j
            .rows()
            .iter()
            .find(|r| r.get(0) == &Value::Int(1))
            .unwrap();
        assert!(unmatched.get(2).is_null());
        assert_eq!(unmatched.provenance().datasets(), vec![DatasetId(10)]);
    }

    #[test]
    fn full_join_keeps_both_sides() {
        let j = left()
            .join(&right(), &[("k", "k")], JoinKind::Full)
            .unwrap();
        // 3 matches + unmatched k=1 (left) + unmatched k=4 (right)
        assert_eq!(j.len(), 5);
        let right_only = j.rows().iter().find(|r| r.get(0).is_null()).unwrap();
        assert_eq!(right_only.get(2), &Value::Int(4));
    }

    #[test]
    fn null_keys_never_match() {
        let mut l = left();
        l.push_values(vec![Value::Null, Value::str("n")]).unwrap();
        let mut r = right();
        r.push_values(vec![Value::Null, Value::Float(0.0)]).unwrap();
        let j = l.join(&r, &[("k", "k")], JoinKind::Inner).unwrap();
        assert_eq!(j.len(), 3, "NULL = NULL must not join");
    }

    #[test]
    fn natural_join_uses_shared_names() {
        let j = left().natural_join(&right(), JoinKind::Inner).unwrap();
        assert_eq!(j.len(), 3);
        let no_shared = Relation::empty("E", Schema::of(&[("q", DataType::Int)]).unwrap().shared());
        assert!(left().natural_join(&no_shared, JoinKind::Inner).is_err());
    }

    #[test]
    fn semi_join_filters_left() {
        let s = left().semi_join(&right(), &[("k", "k")]).unwrap();
        assert_eq!(s.len(), 2); // k=2, k=3
        assert_eq!(s.schema().len(), 2); // schema unchanged
    }

    #[test]
    fn empty_on_clause_rejected() {
        assert!(left().join(&right(), &[], JoinKind::Inner).is_err());
    }

    #[test]
    fn multi_key_join() {
        let schema = Schema::of(&[("k", DataType::Int), ("a", DataType::Str)])
            .unwrap()
            .shared();
        let mut l = Relation::empty("L2", Arc::clone(&schema));
        l.push_values(vec![Value::Int(1), Value::str("x")]).unwrap();
        l.push_values(vec![Value::Int(1), Value::str("y")]).unwrap();
        let mut r = Relation::empty("R2", schema);
        r.push_values(vec![Value::Int(1), Value::str("x")]).unwrap();
        let j = l
            .join(&r, &[("k", "k"), ("a", "a")], JoinKind::Inner)
            .unwrap();
        assert_eq!(j.len(), 1);
    }
}
