//! Dynamically typed cell values, including fusion-ready multi-values.
//!
//! The paper's fusion operators produce "relations that break the first
//! normal form, that is, each cell value may be multi-valued, with each
//! value coming from a differing source" (§1). [`Value::Multi`] models
//! exactly that: a list of [`Sourced`] values, each tagged with the
//! [`DatasetId`] it came from.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::provenance::DatasetId;
use crate::schema::DataType;

/// A single cell value.
///
/// `Value` is `Eq + Hash + Ord` with a *total* order (floats compare via
/// `f64::total_cmp`, `Null` sorts first, and variants order by a fixed type
/// rank), so values can be used directly as hash-join and group-by keys.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent / unknown value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` is normalized on hash/compare via `total_cmp`.
    Float(f64),
    /// UTF-8 string; `Arc<str>` makes clones cheap across mashups.
    Str(Arc<str>),
    /// Timestamp as seconds since the Unix epoch.
    Timestamp(i64),
    /// A fused, multi-valued cell: one value per contributing source.
    /// This intentionally breaks 1NF, as the paper's fusion operators do.
    Multi(Vec<Sourced>),
}

/// A value attributed to the dataset that contributed it (used inside
/// [`Value::Multi`] so buyers can "look at both signals" from different
/// sellers, per the paper's `b` vs `b'` example).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sourced {
    /// The contributing dataset.
    pub source: DatasetId,
    /// The contributed value.
    pub value: Value,
}

impl Sourced {
    /// Attribute `value` to `source`.
    pub fn new(source: DatasetId, value: Value) -> Self {
        Sourced { source, value }
    }
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The dynamic type of this value. `Null` and `Multi` report
    /// [`DataType::Any`].
    pub fn dtype(&self) -> DataType {
        match self {
            Value::Null | Value::Multi(_) => DataType::Any,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Timestamp(_) => DataType::Timestamp,
        }
    }

    /// True iff the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: `Int`, `Float`, `Bool` (0/1) and `Timestamp` coerce to
    /// `f64`; everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Integer view without loss; floats only when they are whole numbers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            Value::Bool(b) => Some(if *b { 1 } else { 0 }),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// String view (only for `Str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view (only for `Bool`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Timestamp(_) => 5,
            Value::Multi(_) => 6,
        }
    }

    /// Numeric-aware comparison: `Int` and `Float` compare by magnitude so
    /// `Int(2) == Float(2.0)` for ordering purposes. Used by sorts and
    /// range predicates; `Eq`/`Hash` remain type-strict.
    pub fn cmp_numeric(&self, other: &Value) -> Ordering {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a.total_cmp(&b),
            _ => self.cmp(other),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            // Bit-equality keeps Eq/Hash consistent (NaN == NaN here).
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Timestamp(a), Value::Timestamp(b)) => a == b,
            (Value::Multi(a), Value::Multi(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.type_rank());
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Timestamp(t) => t.hash(state),
            Value::Multi(vs) => vs.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Timestamp(a), Value::Timestamp(b)) => a.cmp(b),
            (Value::Multi(a), Value::Multi(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
            Value::Multi(vs) => {
                write!(f, "{{")?;
                for (i, sv) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{}#{}", sv.value, sv.source.0)?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn equality_is_type_strict() {
        assert_eq!(Value::Int(2), Value::Int(2));
        assert_ne!(Value::Int(2), Value::Float(2.0));
        assert_eq!(Value::str("a"), Value::from("a"));
    }

    #[test]
    fn numeric_comparison_crosses_types() {
        assert_eq!(
            Value::Int(2).cmp_numeric(&Value::Float(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            Value::Int(3).cmp_numeric(&Value::Float(2.5)),
            Ordering::Greater
        );
    }

    #[test]
    fn nan_is_self_consistent_for_hash_and_eq() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn total_order_sorts_null_first() {
        let mut vs = [
            Value::Int(1),
            Value::Null,
            Value::str("z"),
            Value::Bool(true),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(7.0).as_i64(), Some(7));
        assert_eq!(Value::Float(7.5).as_i64(), None);
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Timestamp(9).as_i64(), Some(9));
    }

    #[test]
    fn multi_value_display_names_sources() {
        let m = Value::Multi(vec![
            Sourced::new(DatasetId(1), Value::Int(20)),
            Sourced::new(DatasetId(2), Value::Int(22)),
        ]);
        let s = m.to_string();
        assert!(s.contains("20#1") && s.contains("22#2"));
    }

    #[test]
    fn dtype_reports_runtime_type() {
        assert_eq!(Value::Int(1).dtype(), DataType::Int);
        assert_eq!(Value::Null.dtype(), DataType::Any);
        assert_eq!(Value::Multi(vec![]).dtype(), DataType::Any);
    }
}
