//! Fluent construction of relations, used pervasively by tests, examples
//! and the synthetic-workload generators.

use crate::error::RelResult;
use crate::provenance::DatasetId;
use crate::relation::Relation;
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;

/// Builder for small relations:
///
/// ```
/// use dmp_relation::{RelationBuilder, DataType, Value};
/// let r = RelationBuilder::new("prices")
///     .column("sym", DataType::Str)
///     .column("px", DataType::Float)
///     .row(vec![Value::str("A"), Value::Float(10.0)])
///     .row(vec![Value::str("B"), Value::Float(12.5)])
///     .build()
///     .unwrap();
/// assert_eq!(r.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct RelationBuilder {
    name: String,
    fields: Vec<Field>,
    rows: Vec<Vec<Value>>,
    source: Option<DatasetId>,
}

impl RelationBuilder {
    /// Start a builder for a relation called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        RelationBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Append a column.
    pub fn column(mut self, name: impl Into<String>, dtype: DataType) -> Self {
        self.fields.push(Field::new(name, dtype));
        self
    }

    /// Append several columns from `(name, type)` pairs.
    pub fn columns(mut self, cols: &[(&str, DataType)]) -> Self {
        for (n, t) in cols {
            self.fields.push(Field::new(*n, *t));
        }
        self
    }

    /// Append one row of values (validated at `build`).
    pub fn row(mut self, values: Vec<Value>) -> Self {
        self.rows.push(values);
        self
    }

    /// Append many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        self.rows.extend(rows);
        self
    }

    /// Tag the relation as market dataset `id` (stamps leaf provenance).
    pub fn source(mut self, id: DatasetId) -> Self {
        self.source = Some(id);
        self
    }

    /// Validate and build.
    pub fn build(self) -> RelResult<Relation> {
        let schema = Schema::new(self.fields)?.shared();
        let mut rel = Relation::empty(self.name, schema);
        for values in self.rows {
            rel.push_values(values)?;
        }
        Ok(match self.source {
            Some(id) => rel.with_source(id),
            None => rel,
        })
    }
}

/// Shorthand for an integer-keyed test relation with one string column;
/// used by many unit tests across the workspace.
pub fn keyed_rel(name: &str, pairs: &[(i64, &str)]) -> Relation {
    let mut b = RelationBuilder::new(name)
        .column("k", DataType::Int)
        .column("v", DataType::Str);
    for (k, v) in pairs {
        b = b.row(vec![Value::Int(*k), Value::str(*v)]);
    }
    b.build().expect("keyed_rel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let r = RelationBuilder::new("t")
            .columns(&[("a", DataType::Int), ("b", DataType::Str)])
            .row(vec![Value::Int(1), Value::str("x")])
            .source(DatasetId(5))
            .build()
            .unwrap();
        assert_eq!(r.name(), "t");
        assert_eq!(r.len(), 1);
        assert_eq!(r.source(), Some(DatasetId(5)));
        assert_eq!(r.rows()[0].provenance().atoms()[0].dataset, DatasetId(5));
    }

    #[test]
    fn builder_validates_rows() {
        let err = RelationBuilder::new("t")
            .column("a", DataType::Int)
            .row(vec![Value::str("not an int")])
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn keyed_rel_helper() {
        let r = keyed_rel("kv", &[(1, "a"), (2, "b")]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().names().collect::<Vec<_>>(), vec!["k", "v"]);
    }
}
