//! A small expression language for predicates and derived columns.
//!
//! Buyers' WTP-functions and the DoD engine both need declarative
//! predicates ("price > 100 AND region = 'EU'"); this module provides the
//! evaluable AST they compile to.

use std::fmt;

use crate::error::{RelError, RelResult};
use crate::relation::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// An expression over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Comparison; numeric comparisons coerce Int/Float.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Arithmetic on numeric values; yields Float unless both are Int and
    /// the op is exact.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// True iff the operand is Null.
    IsNull(Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self op other`.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), op, Box::new(other))
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Eq, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Gt, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Ge, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Lt, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Le, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// Evaluate against a row under a schema.
    pub fn eval(&self, schema: &Schema, row: &Row) -> RelResult<Value> {
        match self {
            Expr::Col(name) => {
                let idx = schema.index_of(name)?;
                Ok(row.get(idx).clone())
            }
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(a, op, b) => {
                let va = a.eval(schema, row)?;
                let vb = b.eval(schema, row)?;
                // SQL-ish semantics: comparisons with NULL are false.
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Bool(false));
                }
                let ord = va.cmp_numeric(&vb);
                let res = match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                };
                Ok(Value::Bool(res))
            }
            Expr::And(a, b) => {
                let va = a.eval(schema, row)?.as_bool().unwrap_or(false);
                if !va {
                    return Ok(Value::Bool(false)); // short-circuit
                }
                Ok(Value::Bool(b.eval(schema, row)?.as_bool().unwrap_or(false)))
            }
            Expr::Or(a, b) => {
                let va = a.eval(schema, row)?.as_bool().unwrap_or(false);
                if va {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(b.eval(schema, row)?.as_bool().unwrap_or(false)))
            }
            Expr::Not(a) => {
                let v = a.eval(schema, row)?.as_bool().unwrap_or(false);
                Ok(Value::Bool(!v))
            }
            Expr::Arith(a, op, b) => {
                let va = a.eval(schema, row)?;
                let vb = b.eval(schema, row)?;
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                match (va.as_i64(), vb.as_i64(), op) {
                    // Exact integer arithmetic when both sides are whole
                    // and the op cannot lose precision.
                    (Some(x), Some(y), ArithOp::Add) => return Ok(Value::Int(x.wrapping_add(y))),
                    (Some(x), Some(y), ArithOp::Sub) => return Ok(Value::Int(x.wrapping_sub(y))),
                    (Some(x), Some(y), ArithOp::Mul) => return Ok(Value::Int(x.wrapping_mul(y))),
                    _ => {}
                }
                let (x, y) = match (va.as_f64(), vb.as_f64()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => {
                        return Err(RelError::TypeError(
                            "arithmetic on non-numeric values".into(),
                        ))
                    }
                };
                let r = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0.0 {
                            return Ok(Value::Null);
                        }
                        x / y
                    }
                };
                Ok(Value::Float(r))
            }
            Expr::IsNull(a) => Ok(Value::Bool(a.eval(schema, row)?.is_null())),
        }
    }

    /// Evaluate as a boolean predicate (non-bool results are false).
    pub fn matches(&self, schema: &Schema, row: &Row) -> RelResult<bool> {
        Ok(self.eval(schema, row)?.as_bool().unwrap_or(false))
    }

    /// All column names referenced by this expression.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(c) => out.push(c),
            Expr::Lit(_) => {}
            Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(a, _, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) | Expr::IsNull(a) => a.collect_columns(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn schema() -> Schema {
        Schema::of(&[
            ("x", DataType::Int),
            ("y", DataType::Float),
            ("s", DataType::Str),
        ])
        .unwrap()
    }

    fn row(x: i64, y: f64, s: &str) -> Row {
        Row::bare(vec![Value::Int(x), Value::Float(y), Value::str(s)])
    }

    #[test]
    fn comparisons_coerce_numerics() {
        let sch = schema();
        let r = row(3, 3.0, "a");
        let e = Expr::col("x").eq(Expr::col("y"));
        assert!(e.matches(&sch, &r).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let sch = schema();
        let r = Row::bare(vec![Value::Null, Value::Float(1.0), Value::str("a")]);
        assert!(!Expr::col("x").eq(Expr::lit(0)).matches(&sch, &r).unwrap());
        assert!(Expr::col("x").is_null().matches(&sch, &r).unwrap());
    }

    #[test]
    fn boolean_connectives() {
        let sch = schema();
        let r = row(5, 2.0, "eu");
        let e = Expr::col("x")
            .gt(Expr::lit(4))
            .and(Expr::col("s").eq(Expr::lit("eu")));
        assert!(e.matches(&sch, &r).unwrap());
        assert!(!e.clone().not().matches(&sch, &r).unwrap());
        let f = Expr::col("x").lt(Expr::lit(0)).or(Expr::lit(true));
        assert!(f.matches(&sch, &r).unwrap());
    }

    #[test]
    fn arithmetic_integer_and_float() {
        let sch = schema();
        let r = row(7, 0.5, "a");
        let e = Expr::Arith(
            Box::new(Expr::col("x")),
            ArithOp::Add,
            Box::new(Expr::lit(1)),
        );
        assert_eq!(e.eval(&sch, &r).unwrap(), Value::Int(8));
        let e = Expr::Arith(
            Box::new(Expr::col("x")),
            ArithOp::Div,
            Box::new(Expr::lit(2)),
        );
        assert_eq!(e.eval(&sch, &r).unwrap(), Value::Float(3.5));
    }

    #[test]
    fn division_by_zero_is_null() {
        let sch = schema();
        let r = row(7, 0.0, "a");
        let e = Expr::Arith(
            Box::new(Expr::col("x")),
            ArithOp::Div,
            Box::new(Expr::col("y")),
        );
        assert_eq!(e.eval(&sch, &r).unwrap(), Value::Null);
    }

    #[test]
    fn unknown_column_errors() {
        let sch = schema();
        let r = row(1, 1.0, "a");
        assert!(Expr::col("zz").eval(&sch, &r).is_err());
    }

    #[test]
    fn columns_are_collected_sorted_deduped() {
        let e = Expr::col("b")
            .gt(Expr::col("a"))
            .and(Expr::col("a").is_null());
        assert_eq!(e.columns(), vec!["a", "b"]);
    }
}
