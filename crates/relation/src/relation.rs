//! The [`Relation`] type: an in-memory, row-oriented relation whose rows
//! carry why-provenance.

use std::fmt;
use std::sync::Arc;

use crate::error::{RelError, RelResult};
use crate::provenance::{DatasetId, Provenance};
use crate::schema::Schema;
use crate::value::Value;

/// One tuple plus its why-provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    values: Vec<Value>,
    prov: Provenance,
}

impl Row {
    /// Build a row with explicit provenance.
    pub fn new(values: Vec<Value>, prov: Provenance) -> Self {
        Row { values, prov }
    }

    /// Build a provenance-free row (synthesized data).
    pub fn bare(values: Vec<Value>) -> Self {
        Row {
            values,
            prov: Provenance::empty(),
        }
    }

    /// All values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Mutable value at position `i` (used by in-place transforms).
    pub fn get_mut(&mut self, i: usize) -> &mut Value {
        &mut self.values[i]
    }

    /// The row's why-provenance.
    pub fn provenance(&self) -> &Provenance {
        &self.prov
    }

    /// Replace the provenance (used by operators).
    pub fn set_provenance(&mut self, prov: Provenance) {
        self.prov = prov;
    }

    /// Consume into parts.
    pub fn into_parts(self) -> (Vec<Value>, Provenance) {
        (self.values, self.prov)
    }
}

/// An in-memory relation: named, typed, provenance-carrying.
///
/// All operators are *functional* — they return new relations and never
/// mutate their inputs — which mirrors how the arbiter materializes
/// candidate mashups without disturbing sellers' registered datasets.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    schema: Arc<Schema>,
    rows: Vec<Row>,
    /// The market dataset this relation was registered as, if any.
    source: Option<DatasetId>,
}

/// Structural equality: same name, schema, rows (values and
/// provenance), and source registration.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.schema == other.schema
            && self.rows == other.rows
            && self.source == other.source
    }
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn empty(name: impl Into<String>, schema: Arc<Schema>) -> Self {
        Relation {
            name: name.into(),
            schema,
            rows: Vec::new(),
            source: None,
        }
    }

    /// Create a relation from pre-built rows, validating arity and types.
    pub fn from_rows(
        name: impl Into<String>,
        schema: Arc<Schema>,
        rows: Vec<Row>,
    ) -> RelResult<Self> {
        for row in &rows {
            validate_row(&schema, row)?;
        }
        Ok(Relation {
            name: name.into(),
            schema,
            rows,
            source: None,
        })
    }

    /// Create without validation. Callers must guarantee every row matches
    /// the schema; operators use this internally after establishing the
    /// invariant.
    pub(crate) fn from_rows_unchecked(
        name: impl Into<String>,
        schema: Arc<Schema>,
        rows: Vec<Row>,
    ) -> Self {
        Relation {
            name: name.into(),
            schema,
            rows,
            source: None,
        }
    }

    /// Relation name (e.g. the dataset or mashup label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the relation (cheap; returns self for chaining).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows in order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable rows (crate-internal; operators keep the schema invariant).
    #[allow(dead_code)]
    pub(crate) fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    /// The market dataset id this relation is registered as, if any.
    pub fn source(&self) -> Option<DatasetId> {
        self.source
    }

    /// Tag this relation as market dataset `id` and (re)stamp every row's
    /// provenance as a leaf of that dataset. Called at registration time by
    /// the seller platform.
    pub fn with_source(mut self, id: DatasetId) -> Self {
        self.source = Some(id);
        for (i, row) in self.rows.iter_mut().enumerate() {
            row.set_provenance(Provenance::leaf(id, i as u64));
        }
        self
    }

    /// Tag this relation as market dataset `id` *without* touching row
    /// provenance. Snapshot restore uses this to re-attach recorded
    /// provenance verbatim; registration-time stamping goes through
    /// [`Relation::with_source`].
    pub fn with_source_raw(mut self, id: DatasetId) -> Self {
        self.source = Some(id);
        self
    }

    /// Append a row, validating it against the schema.
    pub fn push(&mut self, row: Row) -> RelResult<()> {
        validate_row(&self.schema, &row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Append a bare (provenance-free) row of values.
    pub fn push_values(&mut self, values: Vec<Value>) -> RelResult<()> {
        self.push(Row::bare(values))
    }

    /// Position of a column by name.
    pub fn col_index(&self, name: &str) -> RelResult<usize> {
        self.schema.index_of(name)
    }

    /// Iterator over one column's values.
    pub fn column<'a>(&'a self, name: &str) -> RelResult<impl Iterator<Item = &'a Value>> {
        let idx = self.schema.index_of(name)?;
        Ok(self.rows.iter().map(move |r| r.get(idx)))
    }

    /// Materialize one column as a vector of `f64`, skipping non-numeric
    /// and null cells. Convenience for tasks and profiling.
    pub fn column_f64(&self, name: &str) -> RelResult<Vec<f64>> {
        Ok(self.column(name)?.filter_map(Value::as_f64).collect())
    }

    /// Fraction of cells in `name` that are null.
    pub fn null_ratio(&self, name: &str) -> RelResult<f64> {
        if self.rows.is_empty() {
            return Ok(0.0);
        }
        let nulls = self.column(name)?.filter(|v| v.is_null()).count();
        Ok(nulls as f64 / self.rows.len() as f64)
    }

    /// Total number of cells (rows × columns).
    pub fn cell_count(&self) -> usize {
        self.rows.len() * self.schema.len()
    }

    /// The union of all row provenances: every source row this relation
    /// depends on. Used for accountability and revenue sharing.
    pub fn full_provenance(&self) -> Provenance {
        Provenance::merge_all(self.rows.iter().map(|r| r.provenance()))
    }
}

/// Check a row against a schema: arity and per-column type.
pub(crate) fn validate_row(schema: &Schema, row: &Row) -> RelResult<()> {
    if row.values().len() != schema.len() {
        return Err(RelError::Arity {
            expected: schema.len(),
            got: row.values().len(),
        });
    }
    for (f, v) in schema.fields().iter().zip(row.values()) {
        if v.is_null() || matches!(v, Value::Multi(_)) {
            continue; // nulls and fused cells are allowed in any column
        }
        if !f.dtype().accepts(v.dtype()) {
            return Err(RelError::TypeError(format!(
                "column '{}' is {} but value is {}",
                f.name(),
                f.dtype(),
                v.dtype()
            )));
        }
    }
    Ok(())
}

impl fmt::Display for Relation {
    /// Render a bounded preview (first 20 rows) as an aligned text table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX: usize = 20;
        let headers: Vec<String> = self.schema.names().map(str::to_string).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let shown: Vec<Vec<String>> = self
            .rows
            .iter()
            .take(MAX)
            .map(|r| r.values().iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &shown {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{} [{} rows]", self.name, self.rows.len())?;
        for (h, w) in headers.iter().zip(&widths) {
            write!(f, "{h:w$} | ")?;
        }
        writeln!(f)?;
        for row in &shown {
            for (c, w) in row.iter().zip(&widths) {
                write!(f, "{c:w$} | ")?;
            }
            writeln!(f)?;
        }
        if self.rows.len() > MAX {
            writeln!(f, "... ({} more rows)", self.rows.len() - MAX)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn people() -> Relation {
        let schema = Schema::of(&[("id", DataType::Int), ("name", DataType::Str)])
            .unwrap()
            .shared();
        let mut r = Relation::empty("people", schema);
        r.push_values(vec![Value::Int(1), Value::str("ada")])
            .unwrap();
        r.push_values(vec![Value::Int(2), Value::str("bob")])
            .unwrap();
        r
    }

    #[test]
    fn push_validates_arity() {
        let mut r = people();
        let err = r.push_values(vec![Value::Int(3)]).unwrap_err();
        assert!(matches!(
            err,
            RelError::Arity {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn push_validates_types() {
        let mut r = people();
        let err = r
            .push_values(vec![Value::str("x"), Value::str("y")])
            .unwrap_err();
        assert!(matches!(err, RelError::TypeError(_)));
    }

    #[test]
    fn nulls_are_allowed_anywhere() {
        let mut r = people();
        r.push_values(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(r.len(), 3);
        assert!((r.null_ratio("id").unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn with_source_stamps_leaf_provenance() {
        let r = people().with_source(DatasetId(7));
        assert_eq!(r.source(), Some(DatasetId(7)));
        for (i, row) in r.rows().iter().enumerate() {
            let atoms = row.provenance().atoms();
            assert_eq!(atoms.len(), 1);
            assert_eq!(atoms[0].dataset, DatasetId(7));
            assert_eq!(atoms[0].row, i as u64);
        }
        assert_eq!(r.full_provenance().len(), 2);
    }

    #[test]
    fn column_iteration() {
        let r = people();
        let names: Vec<_> = r
            .column("name")
            .unwrap()
            .filter_map(Value::as_str)
            .collect();
        assert_eq!(names, vec!["ada", "bob"]);
        assert!(r.column("missing").is_err());
    }

    #[test]
    fn column_f64_skips_non_numeric() {
        let r = people();
        assert_eq!(r.column_f64("id").unwrap(), vec![1.0, 2.0]);
        assert!(r.column_f64("name").unwrap().is_empty());
    }

    #[test]
    fn display_renders_table() {
        let s = people().to_string();
        assert!(s.contains("people"));
        assert!(s.contains("ada"));
    }
}
