//! Relation schemas: field names, types, and positional lookup.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{RelError, RelResult};

/// Column data types. `Any` admits every value (used for fused columns and
/// columns whose type could not be inferred).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    Timestamp,
    Any,
}

impl DataType {
    /// Whether a value of type `other` is storable in a column of `self`.
    pub fn accepts(self, other: DataType) -> bool {
        self == DataType::Any
            || self == other
            // Ints are storable in float columns (widening).
            || (self == DataType::Float && other == DataType::Int)
    }

    /// Least upper bound of two types (used by type inference and union).
    pub fn unify(self, other: DataType) -> DataType {
        if self == other {
            self
        } else if (self == DataType::Int && other == DataType::Float)
            || (self == DataType::Float && other == DataType::Int)
        {
            DataType::Float
        } else {
            DataType::Any
        }
    }

    /// True for `Int`, `Float` and `Timestamp`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Timestamp)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Timestamp => "timestamp",
            DataType::Any => "any",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    name: String,
    dtype: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Same field with a different name (used by `rename`).
    pub fn renamed(&self, name: impl Into<String>) -> Field {
        Field {
            name: name.into(),
            dtype: self.dtype,
        }
    }
}

/// An ordered list of fields with O(1) name lookup.
///
/// Schemas are immutable once built and shared between relations via
/// [`Arc`], so projections and selections never copy them.
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> RelResult<Self> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(RelError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields, by_name })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(cols: &[(&str, DataType)]) -> RelResult<Self> {
        Schema::new(cols.iter().map(|(n, t)| Field::new(*n, *t)).collect())
    }

    /// Wrap in an `Arc` (the form `Relation` stores).
    pub fn shared(self) -> Arc<Schema> {
        Arc::new(self)
    }

    /// Fields in positional order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> RelResult<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| RelError::UnknownColumn(name.to_string()))
    }

    /// Whether a column exists.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> RelResult<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Column names in positional order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|f| f.name.as_str())
    }

    /// A new schema keeping only `cols`, in the given order.
    pub fn project(&self, cols: &[&str]) -> RelResult<Schema> {
        let mut fields = Vec::with_capacity(cols.len());
        for c in cols {
            fields.push(self.field(c)?.clone());
        }
        Schema::new(fields)
    }

    /// Concatenate two schemas (join output). On a name clash the
    /// right-hand column is suffixed with `suffix`.
    pub fn concat(&self, other: &Schema, suffix: &str) -> RelResult<Schema> {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            if self.contains(f.name()) {
                let mut candidate = format!("{}{}", f.name(), suffix);
                let mut n = 2;
                while self.contains(&candidate) || fields.iter().any(|g| g.name() == candidate) {
                    candidate = format!("{}{}{}", f.name(), suffix, n);
                    n += 1;
                }
                fields.push(f.renamed(candidate));
            } else {
                fields.push(f.clone());
            }
        }
        Schema::new(fields)
    }

    /// Structural compatibility for union: same arity and pairwise
    /// unifiable types (names may differ; left names win).
    pub fn union_compatible(&self, other: &Schema) -> RelResult<Schema> {
        if self.len() != other.len() {
            return Err(RelError::SchemaMismatch(format!(
                "union arity {} vs {}",
                self.len(),
                other.len()
            )));
        }
        let fields = self
            .fields
            .iter()
            .zip(&other.fields)
            .map(|(a, b)| Field::new(a.name(), a.dtype().unify(b.dtype())))
            .collect();
        Schema::new(fields)
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}
impl Eq for Schema {}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fd) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", fd.name(), fd.dtype())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Str),
            ("c", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicates() {
        let err = Schema::of(&[("a", DataType::Int), ("a", DataType::Str)]).unwrap_err();
        assert_eq!(err, RelError::DuplicateColumn("a".into()));
    }

    #[test]
    fn lookup_by_name() {
        let s = abc();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("zz").is_err());
        assert!(s.contains("c"));
    }

    #[test]
    fn projection_preserves_order_given() {
        let s = abc();
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.names().collect::<Vec<_>>(), vec!["c", "a"]);
    }

    #[test]
    fn concat_disambiguates_clashes() {
        let s = abc();
        let t = Schema::of(&[("a", DataType::Int), ("d", DataType::Int)]).unwrap();
        let j = s.concat(&t, "_r").unwrap();
        let names: Vec<_> = j.names().collect();
        assert_eq!(names, vec!["a", "b", "c", "a_r", "d"]);
    }

    #[test]
    fn concat_handles_repeated_clashes() {
        let s = Schema::of(&[("a", DataType::Int), ("a_r", DataType::Int)]).unwrap();
        let t = Schema::of(&[("a", DataType::Int)]).unwrap();
        let j = s.concat(&t, "_r").unwrap();
        assert_eq!(j.len(), 3);
        // The clashing right column must get a fresh, unique name.
        let names: Vec<_> = j.names().collect();
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn union_unifies_types() {
        let s = Schema::of(&[("x", DataType::Int)]).unwrap();
        let t = Schema::of(&[("y", DataType::Float)]).unwrap();
        let u = s.union_compatible(&t).unwrap();
        assert_eq!(u.field("x").unwrap().dtype(), DataType::Float);
    }

    #[test]
    fn union_rejects_arity_mismatch() {
        let s = abc();
        let t = Schema::of(&[("x", DataType::Int)]).unwrap();
        assert!(s.union_compatible(&t).is_err());
    }

    #[test]
    fn type_lattice() {
        assert_eq!(DataType::Int.unify(DataType::Float), DataType::Float);
        assert_eq!(DataType::Str.unify(DataType::Int), DataType::Any);
        assert!(DataType::Float.accepts(DataType::Int));
        assert!(!DataType::Int.accepts(DataType::Float));
        assert!(DataType::Any.accepts(DataType::Str));
    }
}
