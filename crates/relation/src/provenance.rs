//! Why-provenance for revenue sharing.
//!
//! §3.2.3 of the paper: "if `f()` is a relational function, then we can
//! leverage the vast research in provenance to approach the revenue sharing
//! problem". We implement the restriction of semiring provenance [Green et
//! al., PODS'07] sufficient for that purpose: every mashup row carries the
//! *set of source rows* (why-provenance monomial) that produced it. Joins
//! union the sets of both inputs, aggregates union all contributing rows,
//! selections/projections preserve them. `dmp-valuation::sharing` consumes
//! these sets to split a row's allocated revenue among contributing
//! datasets.

use std::fmt;

/// Identifies a dataset registered with the market.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(pub u64);

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// One source row: `(dataset, row index within that dataset)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProvAtom {
    /// Source dataset.
    pub dataset: DatasetId,
    /// Row index within the source dataset at registration time.
    pub row: u64,
}

impl ProvAtom {
    /// Construct an atom.
    pub fn new(dataset: DatasetId, row: u64) -> Self {
        ProvAtom { dataset, row }
    }
}

/// A why-provenance monomial: the sorted, deduplicated set of source rows
/// that jointly produced a mashup row.
///
/// Stored as a boxed slice to keep `Row` small; empty provenance (e.g. for
/// synthesized rows) allocates nothing.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Provenance(Box<[ProvAtom]>);

impl Provenance {
    /// No provenance (synthesized data).
    pub fn empty() -> Self {
        Provenance(Box::from([]))
    }

    /// Provenance of a base-table row.
    pub fn leaf(dataset: DatasetId, row: u64) -> Self {
        Provenance(Box::from([ProvAtom::new(dataset, row)]))
    }

    /// Build from an arbitrary atom collection (sorted + deduped).
    pub fn from_atoms(mut atoms: Vec<ProvAtom>) -> Self {
        atoms.sort_unstable();
        atoms.dedup();
        Provenance(atoms.into_boxed_slice())
    }

    /// The atoms, sorted ascending.
    pub fn atoms(&self) -> &[ProvAtom] {
        &self.0
    }

    /// Number of distinct source rows.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff no source rows are recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Union of two monomials (what a join does): merge of two sorted sets.
    pub fn merge(&self, other: &Provenance) -> Provenance {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let (a, b) = (&self.0, &other.0);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Provenance(out.into_boxed_slice())
    }

    /// Union of many monomials (what an aggregate does).
    pub fn merge_all<'a>(provs: impl IntoIterator<Item = &'a Provenance>) -> Provenance {
        let mut atoms: Vec<ProvAtom> = Vec::new();
        for p in provs {
            atoms.extend_from_slice(&p.0);
        }
        Provenance::from_atoms(atoms)
    }

    /// The distinct datasets mentioned, in ascending order.
    pub fn datasets(&self) -> Vec<DatasetId> {
        let mut ds: Vec<DatasetId> = self.0.iter().map(|a| a.dataset).collect();
        ds.dedup(); // atoms are sorted by (dataset, row)
        ds
    }

    /// Count of atoms contributed by each dataset, ascending by dataset.
    pub fn dataset_counts(&self) -> Vec<(DatasetId, usize)> {
        let mut out: Vec<(DatasetId, usize)> = Vec::new();
        for a in self.0.iter() {
            match out.last_mut() {
                Some((d, c)) if *d == a.dataset => *c += 1,
                _ => out.push((a.dataset, 1)),
            }
        }
        out
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}:{}", a.dataset, a.row)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_has_one_atom() {
        let p = Provenance::leaf(DatasetId(3), 7);
        assert_eq!(p.len(), 1);
        assert_eq!(p.atoms()[0], ProvAtom::new(DatasetId(3), 7));
    }

    #[test]
    fn merge_unions_and_dedups() {
        let a = Provenance::from_atoms(vec![
            ProvAtom::new(DatasetId(1), 0),
            ProvAtom::new(DatasetId(2), 5),
        ]);
        let b = Provenance::from_atoms(vec![
            ProvAtom::new(DatasetId(2), 5),
            ProvAtom::new(DatasetId(1), 9),
        ]);
        let m = a.merge(&b);
        assert_eq!(m.len(), 3);
        assert_eq!(m.datasets(), vec![DatasetId(1), DatasetId(2)]);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = Provenance::leaf(DatasetId(1), 1);
        assert_eq!(a.merge(&Provenance::empty()), a);
        assert_eq!(Provenance::empty().merge(&a), a);
    }

    #[test]
    fn merge_all_spans_inputs() {
        let ps = [
            Provenance::leaf(DatasetId(1), 0),
            Provenance::leaf(DatasetId(1), 1),
            Provenance::leaf(DatasetId(2), 0),
        ];
        let m = Provenance::merge_all(ps.iter());
        assert_eq!(m.len(), 3);
        assert_eq!(
            m.dataset_counts(),
            vec![(DatasetId(1), 2), (DatasetId(2), 1)]
        );
    }

    #[test]
    fn from_atoms_sorts() {
        let p = Provenance::from_atoms(vec![
            ProvAtom::new(DatasetId(9), 1),
            ProvAtom::new(DatasetId(1), 2),
        ]);
        assert!(p.atoms()[0].dataset < p.atoms()[1].dataset);
    }

    #[test]
    fn display_lists_atoms() {
        let p = Provenance::leaf(DatasetId(4), 2);
        assert_eq!(p.to_string(), "[d4:2]");
    }
}
