//! Delimited-text I/O with type inference.
//!
//! The metadata engine ingests "a repository of CSV files in the cloud"
//! (§5.1); this module parses and serializes a pragmatic CSV dialect
//! (RFC-4180-style quoting, configurable delimiter) without external
//! dependencies. Type inference promotes columns along
//! `Int → Float → Str`, with `Bool` and empty-as-`Null` handling.

use std::sync::Arc;

use crate::error::{RelError, RelResult};
use crate::relation::{Relation, Row};
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;

/// Parse options.
#[derive(Debug, Clone)]
pub struct TextOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record is a header (default true).
    pub header: bool,
}

impl Default for TextOptions {
    fn default() -> Self {
        TextOptions {
            delimiter: ',',
            header: true,
        }
    }
}

/// Split one line into fields, honoring double-quote quoting with `""`
/// escapes.
fn split_line(line: &str, delim: char) -> RelResult<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' {
            if cur.is_empty() {
                in_quotes = true;
            } else {
                return Err(RelError::Parse(format!("stray quote in: {line}")));
            }
        } else if c == delim {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if in_quotes {
        return Err(RelError::Parse(format!("unterminated quote in: {line}")));
    }
    fields.push(cur);
    Ok(fields)
}

/// Infer the narrowest type that parses `raw`.
fn infer_cell(raw: &str) -> DataType {
    let t = raw.trim();
    if t.is_empty() {
        return DataType::Any; // null: no information
    }
    if t.eq_ignore_ascii_case("true") || t.eq_ignore_ascii_case("false") {
        return DataType::Bool;
    }
    if t.parse::<i64>().is_ok() {
        return DataType::Int;
    }
    if t.parse::<f64>().is_ok() {
        return DataType::Float;
    }
    DataType::Str
}

/// Combine two inferred cell types column-wise.
fn widen(a: DataType, b: DataType) -> DataType {
    use DataType::*;
    match (a, b) {
        (Any, x) | (x, Any) => x,
        (x, y) if x == y => x,
        (Int, Float) | (Float, Int) => Float,
        _ => Str,
    }
}

/// Parse a cell under a decided column type.
fn parse_cell(raw: &str, dtype: DataType) -> Value {
    let t = raw.trim();
    if t.is_empty() {
        return Value::Null;
    }
    match dtype {
        DataType::Bool => match t.to_ascii_lowercase().as_str() {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::str(t),
        },
        DataType::Int => t
            .parse::<i64>()
            .map(Value::Int)
            .unwrap_or_else(|_| Value::str(t)),
        DataType::Float | DataType::Timestamp => t
            .parse::<f64>()
            .map(Value::Float)
            .unwrap_or_else(|_| Value::str(t)),
        DataType::Str | DataType::Any => Value::str(t),
    }
}

/// Parse delimited text into a relation with inferred column types.
pub fn parse_text(name: &str, text: &str, opts: &TextOptions) -> RelResult<Relation> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let first = match lines.next() {
        Some(l) => l,
        None => {
            return Ok(Relation::empty(name, Schema::new(vec![])?.shared()));
        }
    };
    let first_fields = split_line(first, opts.delimiter)?;
    let (headers, mut records): (Vec<String>, Vec<Vec<String>>) = if opts.header {
        (first_fields, Vec::new())
    } else {
        (
            (0..first_fields.len()).map(|i| format!("col{i}")).collect(),
            vec![first_fields],
        )
    };
    for line in lines {
        let fields = split_line(line, opts.delimiter)?;
        if fields.len() != headers.len() {
            return Err(RelError::Parse(format!(
                "expected {} fields, got {} in: {line}",
                headers.len(),
                fields.len()
            )));
        }
        records.push(fields);
    }

    // Column-wise type inference.
    let mut types = vec![DataType::Any; headers.len()];
    for rec in &records {
        for (i, cell) in rec.iter().enumerate() {
            types[i] = widen(types[i], infer_cell(cell));
        }
    }
    // A column of only nulls defaults to Str.
    for t in &mut types {
        if *t == DataType::Any {
            *t = DataType::Str;
        }
    }

    let fields: Vec<Field> = headers
        .iter()
        .zip(&types)
        .map(|(h, t)| Field::new(h.trim(), *t))
        .collect();
    let schema = Schema::new(fields)?.shared();

    let rows: Vec<Row> = records
        .iter()
        .map(|rec| {
            Row::bare(
                rec.iter()
                    .zip(&types)
                    .map(|(cell, t)| parse_cell(cell, *t))
                    .collect(),
            )
        })
        .collect();

    Relation::from_rows(name, schema, rows)
}

/// Serialize a relation to delimited text (header + rows). `Multi` cells
/// serialize with their display form.
pub fn to_text(rel: &Relation, opts: &TextOptions) -> String {
    let d = opts.delimiter;
    let needs_quote = |s: &str| s.contains(d) || s.contains('"') || s.contains('\n');
    let quote = |s: String| {
        if needs_quote(&s) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s
        }
    };
    let mut out = String::new();
    if opts.header {
        let header: Vec<String> = rel.schema().names().map(|n| quote(n.to_string())).collect();
        out.push_str(&header.join(&d.to_string()));
        out.push('\n');
    }
    for row in rel.rows() {
        let cells: Vec<String> = row.values().iter().map(|v| quote(v.to_string())).collect();
        out.push_str(&cells.join(&d.to_string()));
        out.push('\n');
    }
    out
}

/// Parse with default options.
pub fn parse_csv(name: &str, text: &str) -> RelResult<Relation> {
    parse_text(name, text, &TextOptions::default())
}

/// Serialize with default options.
pub fn to_csv(rel: &Relation) -> String {
    to_text(rel, &TextOptions::default())
}

/// Round-trip helper used in tests: parse(to_csv(r)) has the same values.
pub fn schema_arc(rel: &Relation) -> Arc<Schema> {
    Arc::clone(rel.schema())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_types_per_column() {
        let r = parse_csv("t", "a,b,c,d\n1,2.5,true,hello\n2,3,false,world\n").unwrap();
        let types: Vec<DataType> = r.schema().fields().iter().map(|f| f.dtype()).collect();
        assert_eq!(
            types,
            vec![
                DataType::Int,
                DataType::Float,
                DataType::Bool,
                DataType::Str
            ]
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0].get(0), &Value::Int(1));
        assert_eq!(r.rows()[1].get(1), &Value::Float(3.0));
    }

    #[test]
    fn empty_cells_become_null() {
        let r = parse_csv("t", "a,b\n1,\n,2\n").unwrap();
        assert!(r.rows()[0].get(1).is_null());
        assert!(r.rows()[1].get(0).is_null());
        // nulls don't break Int inference
        assert_eq!(r.schema().field("a").unwrap().dtype(), DataType::Int);
    }

    #[test]
    fn mixed_column_degrades_to_str() {
        let r = parse_csv("t", "a\n1\nx\n").unwrap();
        assert_eq!(r.schema().field("a").unwrap().dtype(), DataType::Str);
        assert_eq!(r.rows()[0].get(0), &Value::str("1"));
    }

    #[test]
    fn quoted_fields_with_delimiters() {
        let r = parse_csv("t", "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::str("x,y"));
        assert_eq!(r.rows()[0].get(1), &Value::str("he said \"hi\""));
    }

    #[test]
    fn arity_mismatch_is_parse_error() {
        assert!(parse_csv("t", "a,b\n1\n").is_err());
    }

    #[test]
    fn unterminated_quote_is_parse_error() {
        assert!(parse_csv("t", "a\n\"oops\n").is_err());
    }

    #[test]
    fn headerless_mode_names_columns() {
        let opts = TextOptions {
            header: false,
            ..Default::default()
        };
        let r = parse_text("t", "1,2\n3,4\n", &opts).unwrap();
        assert_eq!(r.schema().names().collect::<Vec<_>>(), vec!["col0", "col1"]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn round_trip_preserves_values() {
        let text = "a,b,s\n1,1.5,hi\n2,2.5,\"x,y\"\n";
        let r = parse_csv("t", text).unwrap();
        let again = parse_csv("t", &to_csv(&r)).unwrap();
        assert_eq!(r.len(), again.len());
        for (x, y) in r.rows().iter().zip(again.rows()) {
            assert_eq!(x.values(), y.values());
        }
    }

    #[test]
    fn custom_delimiter() {
        let opts = TextOptions {
            delimiter: '\t',
            ..Default::default()
        };
        let r = parse_text("t", "a\tb\n1\t2\n", &opts).unwrap();
        assert_eq!(r.rows()[0].get(1), &Value::Int(2));
    }

    #[test]
    fn empty_input_is_empty_relation() {
        let r = parse_csv("t", "").unwrap();
        assert!(r.is_empty());
        assert!(r.schema().is_empty());
    }
}
