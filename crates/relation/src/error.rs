//! Error type shared by all relational operations.

use std::fmt;

/// Result alias used across the crate.
pub type RelResult<T> = Result<T, RelError>;

/// Errors raised by relational operations.
///
/// The public API never panics on malformed input; schema mismatches,
/// unknown columns and type errors are all reported through this enum.
#[derive(Debug, Clone, PartialEq)]
pub enum RelError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// Two schemas that had to be compatible were not.
    SchemaMismatch(String),
    /// An operation received a value of an unexpected type.
    TypeError(String),
    /// A duplicate column name was introduced.
    DuplicateColumn(String),
    /// Text parsing failed.
    Parse(String),
    /// An arity mismatch between a row and its schema.
    Arity { expected: usize, got: usize },
    /// Generic invalid-argument error.
    Invalid(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            RelError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            RelError::TypeError(m) => write!(f, "type error: {m}"),
            RelError::DuplicateColumn(c) => write!(f, "duplicate column: {c}"),
            RelError::Parse(m) => write!(f, "parse error: {m}"),
            RelError::Arity { expected, got } => {
                write!(f, "arity mismatch: expected {expected} values, got {got}")
            }
            RelError::Invalid(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelError::UnknownColumn("price".into());
        assert!(e.to_string().contains("price"));
        let e = RelError::Arity {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(RelError::Parse("bad".into()));
        assert!(e.to_string().contains("bad"));
    }
}
