//! # dmp-relation
//!
//! The structured-data substrate of the data market platform (DESIGN.md S1).
//!
//! The paper's market model trades *relations*: sellers contribute datasets
//! `d_i`, and the arbiter combines them into *mashups* `m = F(d_i)` using
//! relational, non-relational, and **fusion** operations. Fusion operators
//! "produce relations that break the first normal form, that is, each cell
//! value may be multi-valued, with each value coming from a differing
//! source" (§1, Requirements). This crate provides:
//!
//! * [`Value`] — a dynamically typed cell value, including
//!   [`Value::Multi`] for fused, multi-valued, source-attributed cells;
//! * [`Schema`] / [`Field`] / [`DataType`] — relation schemas;
//! * [`Relation`] — an in-memory row-oriented relation whose every row
//!   carries **why-provenance** ([`Provenance`]), propagated through all
//!   operators so the market's revenue-sharing engine (§3.2.3) can reverse-
//!   engineer which source rows contributed to a sold mashup;
//! * relational operators (select, project, hash join, union, aggregate,
//!   sort, distinct, pivot) plus time-granularity interpolation (§5.3);
//! * a small expression language ([`expr::Expr`]) for predicates;
//! * delimited-text I/O with type inference ([`textio`]).
//!
//! Everything is deterministic and allocation-conscious: schemas are shared
//! via `Arc`, strings via `Arc<str>`, and provenance as sorted boxed slices.

pub mod builder;
pub mod error;
pub mod expr;
pub mod ops;
pub mod provenance;
pub mod relation;
pub mod schema;
pub mod textio;
pub mod value;

pub use builder::RelationBuilder;
pub use error::{RelError, RelResult};
pub use expr::{CmpOp, Expr};
pub use provenance::{DatasetId, ProvAtom, Provenance};
pub use relation::{Relation, Row};
pub use schema::{DataType, Field, Schema};
pub use value::{Sourced, Value};
