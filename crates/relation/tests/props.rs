//! Property-based tests for the relational substrate: algebraic laws and
//! provenance conservation that must hold for *any* input, not just the
//! unit-test fixtures.

use proptest::prelude::*;

use dmp_relation::ops::{AggFun, AggSpec, JoinKind};
use dmp_relation::{DataType, DatasetId, Expr, Relation, RelationBuilder, Value};

/// Strategy: a small relation (k: Int, g: Str, v: Float) with random rows.
fn small_relation(source: u64) -> impl Strategy<Value = Relation> {
    prop::collection::vec((0i64..20, 0u8..4, -100.0f64..100.0), 0..40).prop_map(move |rows| {
        let mut b = RelationBuilder::new(format!("r{source}"))
            .column("k", DataType::Int)
            .column("g", DataType::Str)
            .column("v", DataType::Float);
        for (k, g, v) in rows {
            b = b.row(vec![
                Value::Int(k),
                Value::str(format!("g{g}")),
                Value::Float(v),
            ]);
        }
        b.source(DatasetId(source)).build().unwrap()
    })
}

proptest! {
    /// σ_p(σ_q(R)) = σ_q(σ_p(R)): selections commute.
    #[test]
    fn selections_commute(rel in small_relation(1), t1 in 0i64..20, t2 in -100.0f64..100.0) {
        let p = Expr::col("k").ge(Expr::lit(t1));
        let q = Expr::col("v").lt(Expr::lit(t2));
        let a = rel.select(&p).unwrap().select(&q).unwrap();
        let b = rel.select(&q).unwrap().select(&p).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.rows().iter().zip(b.rows()) {
            prop_assert_eq!(x.values(), y.values());
        }
    }

    /// Selection never invents rows, and filtering twice is idempotent.
    #[test]
    fn selection_is_decreasing_and_idempotent(rel in small_relation(1), t in 0i64..20) {
        let p = Expr::col("k").lt(Expr::lit(t));
        let once = rel.select(&p).unwrap();
        prop_assert!(once.len() <= rel.len());
        let twice = once.select(&p).unwrap();
        prop_assert_eq!(once.len(), twice.len());
    }

    /// Filter pushdown through join: σ_p(L ⋈ R) = σ_p(L) ⋈ R when p only
    /// references left columns that survive the join un-renamed.
    #[test]
    fn filter_pushes_through_join(l in small_relation(1), r in small_relation(2), t in -100.0f64..100.0) {
        let p = Expr::col("v").gt(Expr::lit(t)); // left's v (right v is suffixed)
        let joined_then_filtered = l
            .join(&r, &[("k", "k")], JoinKind::Inner)
            .unwrap()
            .select(&p)
            .unwrap();
        let filtered_then_joined = l
            .select(&p)
            .unwrap()
            .join(&r, &[("k", "k")], JoinKind::Inner)
            .unwrap();
        prop_assert_eq!(joined_then_filtered.len(), filtered_then_joined.len());
    }

    /// Inner-join output size equals the sum over key groups of
    /// |L_k| × |R_k| (hash-join correctness against the definition).
    #[test]
    fn join_cardinality_matches_definition(l in small_relation(1), r in small_relation(2)) {
        let joined = l.join(&r, &[("k", "k")], JoinKind::Inner).unwrap();
        let mut expected = 0usize;
        for key in 0i64..20 {
            let lk = l.rows().iter().filter(|row| row.get(0).as_i64() == Some(key)).count();
            let rk = r.rows().iter().filter(|row| row.get(0).as_i64() == Some(key)).count();
            expected += lk * rk;
        }
        prop_assert_eq!(joined.len(), expected);
    }

    /// Every joined row's provenance covers both source datasets.
    #[test]
    fn join_provenance_spans_both_inputs(l in small_relation(1), r in small_relation(2)) {
        let joined = l.join(&r, &[("k", "k")], JoinKind::Inner).unwrap();
        for row in joined.rows() {
            let ds = row.provenance().datasets();
            prop_assert!(ds.contains(&DatasetId(1)));
            prop_assert!(ds.contains(&DatasetId(2)));
        }
    }

    /// Union preserves bag cardinality; distinct is idempotent and the
    /// distinct result never loses source-row credit.
    #[test]
    fn union_distinct_laws(a in small_relation(1), b in small_relation(2)) {
        let u = a.union(&b).unwrap();
        prop_assert_eq!(u.len(), a.len() + b.len());
        let d1 = u.distinct();
        let d2 = d1.distinct();
        prop_assert_eq!(d1.len(), d2.len());
        // provenance conservation: every atom in the union survives in
        // the distinct output
        prop_assert_eq!(u.full_provenance().len(), d1.full_provenance().len());
    }

    /// Group-by SUM over all groups equals the global SUM.
    #[test]
    fn aggregation_partitions_total(rel in small_relation(1)) {
        let per_group = rel
            .aggregate(&["g"], &[AggSpec::new("v", AggFun::Sum, "s")])
            .unwrap();
        let group_total: f64 = per_group
            .rows()
            .iter()
            .filter_map(|r| r.get(1).as_f64())
            .sum();
        let global: f64 = rel.column_f64("v").unwrap().iter().sum();
        prop_assert!((group_total - global).abs() < 1e-6);
    }

    /// Projection keeps row count and provenance.
    #[test]
    fn projection_preserves_rows(rel in small_relation(1)) {
        let p = rel.project(&["v", "k"]).unwrap();
        prop_assert_eq!(p.len(), rel.len());
        prop_assert_eq!(p.full_provenance().len(), rel.full_provenance().len());
    }

    /// Sorting is a permutation: same multiset of keys.
    #[test]
    fn sort_is_permutation(rel in small_relation(1)) {
        let sorted = rel.sort_by("v", false).unwrap();
        prop_assert_eq!(sorted.len(), rel.len());
        let mut a = rel.column_f64("v").unwrap();
        let mut b = sorted.column_f64("v").unwrap();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        prop_assert_eq!(a, b);
        // and actually sorted
        let vs = sorted.column_f64("v").unwrap();
        prop_assert!(vs.windows(2).all(|w| w[0] <= w[1]));
    }

    /// CSV round-trip: parse(to_csv(r)) preserves every value.
    #[test]
    fn csv_round_trip(rel in small_relation(1)) {
        let text = dmp_relation::textio::to_csv(&rel);
        let back = dmp_relation::textio::parse_csv("back", &text).unwrap();
        prop_assert_eq!(back.len(), rel.len());
        for (x, y) in rel.rows().iter().zip(back.rows()) {
            for (a, b) in x.values().iter().zip(y.values()) {
                match (a.as_f64(), b.as_f64()) {
                    (Some(fa), Some(fb)) => prop_assert!((fa - fb).abs() < 1e-9),
                    _ => prop_assert_eq!(a.to_string(), b.to_string()),
                }
            }
        }
    }
}
