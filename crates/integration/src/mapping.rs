//! Attribute mapping functions (paper §1 example and §4.1): Seller 2
//! shares `f(d)` — "a function of d, such as a transformation from Celsius
//! to Fahrenheit. The function can also be non-invertible, such as a
//! mapping of employees to IDs." The arbiter "needs to find an inverse
//! mapping function f′ that would transform f(d) into d if such a function
//! exists, or otherwise find a mapping table that links values of f(d) to
//! values of d".
//!
//! [`Mapping`] models the three cases (identity, affine, dictionary) and
//! [`discover`] induces one from paired samples.

use std::collections::HashMap;

use dmp_relation::{RelError, RelResult, Relation, Value};

/// A discovered attribute mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum Mapping {
    /// `y = x`.
    Identity,
    /// `y = scale·x + offset` (e.g. Celsius→Fahrenheit is `1.8x + 32`).
    Affine {
        /// Multiplicative factor.
        scale: f64,
        /// Additive offset.
        offset: f64,
    },
    /// An explicit value→value mapping table (the non-invertible case, or
    /// categorical recodes like employee→ID).
    Dictionary(HashMap<Value, Value>),
}

/// Residual tolerance for affine fits (relative).
const AFFINE_TOL: f64 = 1e-6;

impl Mapping {
    /// Apply the mapping to one value. Unknown dictionary keys and
    /// non-numeric inputs to affine maps yield `Null`.
    pub fn apply(&self, v: &Value) -> Value {
        match self {
            Mapping::Identity => v.clone(),
            Mapping::Affine { scale, offset } => match v.as_f64() {
                Some(x) => Value::Float(scale * x + offset),
                None => Value::Null,
            },
            Mapping::Dictionary(map) => map.get(v).cloned().unwrap_or(Value::Null),
        }
    }

    /// The inverse mapping, when one exists:
    /// * identity ↦ identity;
    /// * affine ↦ affine iff `scale != 0`;
    /// * dictionary ↦ reversed dictionary iff injective.
    pub fn invert(&self) -> Option<Mapping> {
        match self {
            Mapping::Identity => Some(Mapping::Identity),
            Mapping::Affine { scale, offset } => {
                if scale.abs() < f64::EPSILON {
                    None
                } else {
                    Some(Mapping::Affine {
                        scale: 1.0 / scale,
                        offset: -offset / scale,
                    })
                }
            }
            Mapping::Dictionary(map) => {
                let mut inv = HashMap::with_capacity(map.len());
                for (k, v) in map {
                    if inv.insert(v.clone(), k.clone()).is_some() {
                        return None; // not injective: no functional inverse
                    }
                }
                Some(Mapping::Dictionary(inv))
            }
        }
    }

    /// Is this mapping invertible as a function?
    pub fn is_invertible(&self) -> bool {
        self.invert().is_some()
    }
}

/// Induce a mapping from paired samples `(x_i, y_i)` such that
/// `m.apply(x_i) ≈ y_i` for all pairs. Tries identity, then affine
/// least-squares (numeric pairs only, residual-checked), then a
/// dictionary (consistent only if each `x` maps to a single `y`).
/// Returns `None` when the pairs are functionally inconsistent.
pub fn discover(pairs: &[(Value, Value)]) -> Option<Mapping> {
    let usable: Vec<&(Value, Value)> = pairs
        .iter()
        .filter(|(x, y)| !x.is_null() && !y.is_null())
        .collect();
    if usable.is_empty() {
        return None;
    }

    if usable.iter().all(|(x, y)| x == y) {
        return Some(Mapping::Identity);
    }

    // Affine fit over numeric pairs.
    let numeric: Vec<(f64, f64)> = usable
        .iter()
        .filter_map(|(x, y)| Some((x.as_f64()?, y.as_f64()?)))
        .collect();
    if numeric.len() == usable.len() && numeric.len() >= 2 {
        if let Some((scale, offset)) = fit_affine(&numeric) {
            let ok = numeric.iter().all(|&(x, y)| {
                let pred = scale * x + offset;
                let tol = AFFINE_TOL * (1.0 + y.abs());
                (pred - y).abs() <= tol
            });
            // Degenerate all-same-x inputs are better served by a table.
            if ok && scale.is_finite() && offset.is_finite() {
                return Some(Mapping::Affine { scale, offset });
            }
        }
    }

    // Dictionary: consistent iff x determines y.
    let mut map: HashMap<Value, Value> = HashMap::with_capacity(usable.len());
    for (x, y) in usable {
        match map.get(x) {
            Some(existing) if existing != y => return None,
            Some(_) => {}
            None => {
                map.insert(x.clone(), y.clone());
            }
        }
    }
    Some(Mapping::Dictionary(map))
}

/// Ordinary least squares for `y = a·x + b`. Returns `None` when x has no
/// variance (vertical line).
fn fit_affine(pts: &[(f64, f64)]) -> Option<(f64, f64)> {
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    Some((a, b))
}

/// Discover the mapping between two *columns of the same relation*
/// (typically after joining the unknown column against reference data
/// obtained in a negotiation round).
pub fn discover_between_columns(
    rel: &Relation,
    from_col: &str,
    to_col: &str,
) -> RelResult<Option<Mapping>> {
    let fi = rel.col_index(from_col)?;
    let ti = rel.col_index(to_col)?;
    let pairs: Vec<(Value, Value)> = rel
        .rows()
        .iter()
        .map(|r| (r.get(fi).clone(), r.get(ti).clone()))
        .collect();
    Ok(discover(&pairs))
}

/// Apply a mapping to one column of a relation, producing a new relation
/// where `col` holds mapped values.
pub fn apply_to_column(rel: &Relation, col: &str, mapping: &Mapping) -> RelResult<Relation> {
    rel.map_column(col, |v| mapping.apply(v))
}

/// Build a two-column mapping-table relation from a dictionary mapping —
/// this is the artifact a seller can publish in a negotiation round so
/// the arbiter can join `f(d)` back to `d`.
pub fn mapping_table(name: &str, mapping: &Mapping) -> RelResult<Relation> {
    let map = match mapping {
        Mapping::Dictionary(m) => m,
        _ => {
            return Err(RelError::Invalid(
                "only dictionary mappings materialize as tables".into(),
            ))
        }
    };
    use dmp_relation::{DataType, RelationBuilder};
    let mut b = RelationBuilder::new(name)
        .column("from", DataType::Any)
        .column("to", DataType::Any);
    // Sort for determinism.
    let mut entries: Vec<(&Value, &Value)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    for (k, v) in entries {
        b = b.row(vec![k.clone(), v.clone()]);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vi(x: i64) -> Value {
        Value::Int(x)
    }
    fn vf(x: f64) -> Value {
        Value::Float(x)
    }

    #[test]
    fn discovers_identity() {
        let pairs = vec![(vi(1), vi(1)), (vi(2), vi(2))];
        assert_eq!(discover(&pairs), Some(Mapping::Identity));
    }

    #[test]
    fn discovers_celsius_to_fahrenheit() {
        let pairs: Vec<(Value, Value)> = [0.0, 10.0, 25.0, 100.0]
            .iter()
            .map(|&c| (vf(c), vf(1.8 * c + 32.0)))
            .collect();
        match discover(&pairs) {
            Some(Mapping::Affine { scale, offset }) => {
                assert!((scale - 1.8).abs() < 1e-9);
                assert!((offset - 32.0).abs() < 1e-9);
            }
            other => panic!("expected affine, got {other:?}"),
        }
    }

    #[test]
    fn affine_inverse_recovers_input() {
        let m = Mapping::Affine {
            scale: 1.8,
            offset: 32.0,
        };
        let inv = m.invert().unwrap();
        let x = vf(25.0);
        let y = m.apply(&x);
        let back = inv.apply(&y);
        assert!((back.as_f64().unwrap() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn noninvertible_affine() {
        let m = Mapping::Affine {
            scale: 0.0,
            offset: 5.0,
        };
        assert!(!m.is_invertible());
    }

    #[test]
    fn discovers_dictionary_for_categorical_recode() {
        let pairs = vec![
            (Value::str("alice"), vi(101)),
            (Value::str("bob"), vi(102)),
            (Value::str("alice"), vi(101)),
        ];
        match discover(&pairs) {
            Some(Mapping::Dictionary(m)) => {
                assert_eq!(m.len(), 2);
                assert_eq!(m[&Value::str("alice")], vi(101));
            }
            other => panic!("expected dictionary, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_pairs_yield_none() {
        let pairs = vec![(vi(1), vi(10)), (vi(1), vi(20))];
        assert_eq!(discover(&pairs), None);
    }

    #[test]
    fn noninjective_dictionary_has_no_inverse() {
        // employees -> department: many-to-one, like the paper's
        // non-invertible employee→ID example reversed.
        let pairs = vec![
            (Value::str("alice"), Value::str("eng")),
            (Value::str("bob"), Value::str("eng")),
        ];
        let m = discover(&pairs).unwrap();
        assert!(!m.is_invertible());
    }

    #[test]
    fn injective_dictionary_inverts() {
        let pairs = vec![(vi(1), Value::str("a")), (vi(2), Value::str("b"))];
        let m = discover(&pairs).unwrap();
        let inv = m.invert().unwrap();
        assert_eq!(inv.apply(&Value::str("a")), vi(1));
    }

    #[test]
    fn unknown_dictionary_key_is_null() {
        let m = Mapping::Dictionary(HashMap::from([(vi(1), vi(10))]));
        assert!(m.apply(&vi(9)).is_null());
    }

    #[test]
    fn nulls_are_ignored_in_discovery() {
        let pairs = vec![
            (Value::Null, vi(1)),
            (vi(1), Value::Null),
            (vf(0.0), vf(32.0)),
            (vf(100.0), vf(212.0)),
        ];
        assert!(matches!(discover(&pairs), Some(Mapping::Affine { .. })));
    }

    #[test]
    fn all_null_pairs_yield_none() {
        let pairs = vec![(Value::Null, Value::Null)];
        assert_eq!(discover(&pairs), None);
    }

    #[test]
    fn apply_to_column_transforms_relation() {
        use dmp_relation::{DataType, RelationBuilder};
        let r = RelationBuilder::new("temps")
            .column("c", DataType::Float)
            .row(vec![vf(0.0)])
            .row(vec![vf(100.0)])
            .build()
            .unwrap();
        let m = Mapping::Affine {
            scale: 1.8,
            offset: 32.0,
        };
        let out = apply_to_column(&r, "c", &m).unwrap();
        assert_eq!(out.rows()[1].get(0), &vf(212.0));
    }

    #[test]
    fn mapping_table_materializes_sorted() {
        let m = Mapping::Dictionary(HashMap::from([
            (vi(2), Value::str("b")),
            (vi(1), Value::str("a")),
        ]));
        let t = mapping_table("map", &m).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0].get(0), &vi(1));
        assert!(mapping_table("x", &Mapping::Identity).is_err());
    }

    #[test]
    fn discover_between_columns_works_on_joined_data() {
        use dmp_relation::{DataType, RelationBuilder};
        let r = RelationBuilder::new("joined")
            .column("fd", DataType::Float)
            .column("d", DataType::Float)
            .row(vec![vf(32.0), vf(0.0)])
            .row(vec![vf(212.0), vf(100.0)])
            .row(vec![vf(50.0), vf(10.0)])
            .build()
            .unwrap();
        let m = discover_between_columns(&r, "fd", "d").unwrap().unwrap();
        // fd = 1.8 d + 32  =>  d = (fd - 32) / 1.8
        match m {
            Mapping::Affine { scale, offset } => {
                assert!((scale - 1.0 / 1.8).abs() < 1e-9);
                assert!((offset + 32.0 / 1.8).abs() < 1e-6);
            }
            other => panic!("expected affine inverse, got {other:?}"),
        }
    }
}
