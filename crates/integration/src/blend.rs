//! The blending engine (Fig. 3): schema matching + union across datasets
//! that describe the same kind of entity — e.g. two sellers' customer
//! lists with differently named but content-equivalent columns.

use dmp_discovery::ColumnProfile;
use dmp_relation::{RelError, RelResult, Relation};

/// Match `other`'s columns onto `base`'s columns, by exact name first,
/// then by content similarity of profiles. Returns, for each base column,
/// the matched column name in `other` (None if unmatched).
pub fn match_schemas(base: &Relation, other: &Relation, min_sim: f64) -> Vec<Option<String>> {
    let base_profiles = ColumnProfile::compute_all(base);
    let other_profiles = ColumnProfile::compute_all(other);
    let mut taken = vec![false; other_profiles.len()];
    let mut result: Vec<Option<String>> = Vec::with_capacity(base_profiles.len());

    // Pass 1: exact case-insensitive names.
    for bp in &base_profiles {
        let hit = other_profiles
            .iter()
            .enumerate()
            .find(|(i, op)| !taken[*i] && op.name.eq_ignore_ascii_case(&bp.name));
        match hit {
            Some((i, op)) => {
                taken[i] = true;
                result.push(Some(op.name.clone()));
            }
            None => result.push(None),
        }
    }
    // Pass 2: content similarity for the unmatched.
    for (bi, bp) in base_profiles.iter().enumerate() {
        if result[bi].is_some() {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, op) in other_profiles.iter().enumerate() {
            if taken[i] {
                continue;
            }
            let sim = bp.content_similarity(op);
            if sim >= min_sim && best.is_none_or(|(_, s)| sim > s) {
                best = Some((i, sim));
            }
        }
        if let Some((i, _)) = best {
            taken[i] = true;
            result[bi] = Some(other_profiles[i].name.clone());
        }
    }
    result
}

/// Report of a blend: the blended relation plus which inputs were
/// skipped for insufficient column coverage.
pub struct BlendReport {
    /// The blended relation.
    pub relation: Relation,
    /// Names of inputs skipped for insufficient column coverage.
    pub skipped: Vec<String>,
}

/// Blend with a content-similarity threshold for schema matching.
pub fn blend(relations: &[&Relation], min_sim: f64) -> RelResult<BlendReport> {
    let base = *relations
        .first()
        .ok_or_else(|| RelError::Invalid("blend needs at least one relation".into()))?;
    let base_cols: Vec<&str> = base.schema().names().collect();
    let mut acc = base.project(&base_cols)?.named("blend");
    let mut skipped = Vec::new();

    for other in &relations[1..] {
        let matches = match_schemas(base, other, min_sim);
        if matches.iter().any(Option::is_none) {
            skipped.push(other.name().to_string());
            continue;
        }
        let other_cols: Vec<&str> = matches
            .iter()
            .map(|m| m.as_deref().expect("checked above"))
            .collect();
        let mut projected = other.project(&other_cols)?;
        // Rename to base names so the union is schema-compatible.
        for (b, o) in base_cols.iter().zip(&other_cols) {
            if b != o {
                projected = projected.rename(o, b)?;
            }
        }
        acc = acc.union(&projected)?;
    }

    Ok(BlendReport {
        relation: acc.distinct().named("blend"),
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::{DataType, DatasetId, RelationBuilder, Value};

    fn customers_a() -> Relation {
        let mut b = RelationBuilder::new("a")
            .column("name", DataType::Str)
            .column("zip", DataType::Int);
        for i in 0..50 {
            b = b.row(vec![Value::str(format!("cust{i}")), Value::Int(10_000 + i)]);
        }
        b.source(DatasetId(1)).build().unwrap()
    }

    /// Same shape, different column names, overlapping content.
    fn customers_b() -> Relation {
        let mut b = RelationBuilder::new("b")
            .column("postal", DataType::Int)
            .column("client", DataType::Str);
        for i in 30..80 {
            b = b.row(vec![Value::Int(10_000 + i), Value::str(format!("cust{i}"))]);
        }
        b.source(DatasetId(2)).build().unwrap()
    }

    #[test]
    fn schema_match_by_content() {
        let a = customers_a();
        let b = customers_b();
        let m = match_schemas(&a, &b, 0.2);
        assert_eq!(m[0].as_deref(), Some("client")); // name <- client
        assert_eq!(m[1].as_deref(), Some("postal")); // zip  <- postal
    }

    #[test]
    fn blend_unions_and_dedupes() {
        let a = customers_a();
        let b = customers_b();
        let report = blend(&[&a, &b], 0.2).unwrap();
        // 50 + 50 rows with 20 duplicates (i in 30..50)
        assert_eq!(report.relation.len(), 80);
        assert!(report.skipped.is_empty());
        assert_eq!(
            report.relation.schema().names().collect::<Vec<_>>(),
            vec!["name", "zip"]
        );
    }

    #[test]
    fn blended_duplicates_keep_both_provenances() {
        let a = customers_a();
        let b = customers_b();
        let report = blend(&[&a, &b], 0.2).unwrap();
        let dup = report
            .relation
            .rows()
            .iter()
            .find(|r| r.get(0).as_str() == Some("cust35"))
            .unwrap();
        assert_eq!(dup.provenance().datasets().len(), 2);
    }

    #[test]
    fn incompatible_input_is_skipped() {
        let a = customers_a();
        let weird = RelationBuilder::new("weird")
            .column("x", DataType::Float)
            .row(vec![Value::Float(0.5)])
            .build()
            .unwrap();
        let report = blend(&[&a, &weird], 0.2).unwrap();
        assert_eq!(report.skipped, vec!["weird".to_string()]);
        assert_eq!(report.relation.len(), 50);
    }

    #[test]
    fn exact_names_match_first() {
        let a = customers_a();
        let same = customers_a().named("other");
        let m = match_schemas(&a, &same, 0.9);
        assert_eq!(m[0].as_deref(), Some("name"));
        assert_eq!(m[1].as_deref(), Some("zip"));
    }

    #[test]
    fn empty_blend_rejected() {
        assert!(blend(&[], 0.5).is_err());
    }
}
