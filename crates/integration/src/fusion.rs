//! Data-fusion operators (paper §5.3 "Data Fusion" and §8.3): align
//! multiple sources contributing the same signal into multi-valued cells,
//! then optionally resolve them — "a specific fusion operator may select
//! one value based on majority voting, for example, while other fusion
//! operators will implement other strategies. Buyers may want to have
//! access to all available signals to make up their own minds."

use std::collections::HashMap;

use dmp_relation::{
    DataType, DatasetId, Provenance, RelError, RelResult, Relation, Row, Schema, Sourced, Value,
};

/// How to collapse a multi-valued (fused) cell into a single value.
#[derive(Debug, Clone, PartialEq)]
pub enum FusionStrategy {
    /// Keep the multi-value as-is (the 1NF-breaking form buyers explore).
    KeepAll,
    /// Most frequent value wins; ties broken by value order (determinism).
    MajorityVote,
    /// Weighted vote using per-source weights (e.g. from truth discovery).
    WeightedVote(HashMap<DatasetId, f64>),
    /// Numeric mean of the contributed values.
    Mean,
    /// The first source's value (source priority order).
    First,
}

/// Align several relations on a key column: output has one row per
/// distinct key and, for each requested value column, a fused
/// [`Value::Multi`] cell holding every source's contribution.
///
/// Every input must contain `key` and `value_col`. Rows with null keys are
/// skipped. Output provenance merges all contributing rows.
pub fn align(sources: &[&Relation], key: &str, value_col: &str) -> RelResult<Relation> {
    if sources.is_empty() {
        return Err(RelError::Invalid("fusion needs at least one source".into()));
    }
    // key -> (value claims, provenance)
    let mut order: Vec<Value> = Vec::new();
    let mut claims: HashMap<Value, (Vec<Sourced>, Provenance)> = HashMap::new();

    for rel in sources {
        let ki = rel.col_index(key)?;
        let vi = rel.col_index(value_col)?;
        let source = rel.source().unwrap_or(DatasetId(u64::MAX));
        for row in rel.rows() {
            let k = row.get(ki);
            if k.is_null() {
                continue;
            }
            let entry = claims.entry(k.clone()).or_insert_with(|| {
                order.push(k.clone());
                (Vec::new(), Provenance::empty())
            });
            entry.0.push(Sourced::new(source, row.get(vi).clone()));
            entry.1 = entry.1.merge(row.provenance());
        }
    }

    let schema = Schema::of(&[(key, DataType::Any), (value_col, DataType::Any)])?.shared();
    let mut out = Relation::empty(format!("fused({value_col})"), schema);
    for k in order {
        let (sourced, prov) = claims.remove(&k).expect("key recorded");
        out.push(Row::new(vec![k, Value::Multi(sourced)], prov))
            .expect("schema admits Any");
    }
    Ok(out)
}

/// Resolve the fused column of an aligned relation with a strategy,
/// producing single-valued cells (except `KeepAll`, which is identity).
pub fn resolve(rel: &Relation, col: &str, strategy: &FusionStrategy) -> RelResult<Relation> {
    if matches!(strategy, FusionStrategy::KeepAll) {
        return Ok(rel.clone());
    }
    rel.map_column(col, |v| match v {
        Value::Multi(claims) => resolve_claims(claims, strategy),
        other => other.clone(),
    })
}

/// Collapse one claim set.
fn resolve_claims(claims: &[Sourced], strategy: &FusionStrategy) -> Value {
    if claims.is_empty() {
        return Value::Null;
    }
    match strategy {
        FusionStrategy::KeepAll => Value::Multi(claims.to_vec()),
        FusionStrategy::First => claims[0].value.clone(),
        FusionStrategy::Mean => {
            let nums: Vec<f64> = claims.iter().filter_map(|s| s.value.as_f64()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        FusionStrategy::MajorityVote => weighted_vote(claims, |_| 1.0),
        FusionStrategy::WeightedVote(weights) => {
            weighted_vote(claims, |d| weights.get(&d).copied().unwrap_or(1.0))
        }
    }
}

fn weighted_vote(claims: &[Sourced], weight: impl Fn(DatasetId) -> f64) -> Value {
    let mut tally: HashMap<&Value, f64> = HashMap::new();
    for c in claims {
        if !c.value.is_null() {
            *tally.entry(&c.value).or_insert(0.0) += weight(c.source);
        }
    }
    tally
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(v, _)| v.clone())
        .unwrap_or(Value::Null)
}

/// Iterative truth discovery over an aligned relation (§8.3, [64]):
/// estimates per-source accuracy from agreement with the (weighted)
/// consensus and re-derives the consensus until convergence.
///
/// This is the classic fixed-point scheme shared by TruthFinder-style
/// algorithms, restricted to categorical equality.
#[derive(Debug, Clone)]
pub struct TruthDiscovery {
    /// Maximum fixed-point iterations.
    pub max_iters: usize,
    /// Convergence threshold on weight change (L∞).
    pub tol: f64,
}

impl Default for TruthDiscovery {
    fn default() -> Self {
        TruthDiscovery {
            max_iters: 20,
            tol: 1e-6,
        }
    }
}

/// Result of truth discovery.
#[derive(Debug, Clone)]
pub struct TruthResult {
    /// Resolved relation (single values in the fused column).
    pub resolved: Relation,
    /// Final per-source reliability weights in (0, 1].
    pub source_weights: HashMap<DatasetId, f64>,
    /// Iterations used.
    pub iterations: usize,
}

impl TruthDiscovery {
    /// Run truth discovery on the fused column `col` of an aligned
    /// relation (as produced by [`align`]).
    pub fn run(&self, rel: &Relation, col: &str) -> RelResult<TruthResult> {
        let ci = rel.col_index(col)?;
        // Collect claim sets per row.
        let rows_claims: Vec<&[Sourced]> = rel
            .rows()
            .iter()
            .map(|r| match r.get(ci) {
                Value::Multi(c) => c.as_slice(),
                _ => &[][..],
            })
            .collect();

        // Initialize all sources at weight 0.8.
        let mut weights: HashMap<DatasetId, f64> = HashMap::new();
        for claims in &rows_claims {
            for c in *claims {
                weights.entry(c.source).or_insert(0.8);
            }
        }

        let mut iterations = 0;
        for _ in 0..self.max_iters {
            iterations += 1;
            // E-step: consensus per row under current weights.
            let consensus: Vec<Value> = rows_claims
                .iter()
                .map(|claims| weighted_vote(claims, |d| weights.get(&d).copied().unwrap_or(0.5)))
                .collect();
            // M-step: source accuracy = weighted agreement with consensus.
            let mut agree: HashMap<DatasetId, (f64, f64)> = HashMap::new();
            for (claims, cons) in rows_claims.iter().zip(&consensus) {
                for c in *claims {
                    let e = agree.entry(c.source).or_insert((0.0, 0.0));
                    e.1 += 1.0;
                    if &c.value == cons {
                        e.0 += 1.0;
                    }
                }
            }
            let mut max_delta: f64 = 0.0;
            for (src, (hits, total)) in agree {
                if total > 0.0 {
                    // Laplace smoothing keeps weights in (0, 1).
                    let w = (hits + 1.0) / (total + 2.0);
                    let old = weights.insert(src, w).unwrap_or(0.8);
                    max_delta = max_delta.max((w - old).abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }

        let resolved = resolve(rel, col, &FusionStrategy::WeightedVote(weights.clone()))?;
        Ok(TruthResult {
            resolved,
            source_weights: weights,
            iterations,
        })
    }
}

/// Contrast operator: for a fused column, compute the numeric spread
/// (max − min) of each cell's claims — "a buyer may be interested in
/// looking at both signals, or at their difference" (§1).
pub fn contrast(rel: &Relation, col: &str) -> RelResult<Relation> {
    rel.map_column(col, |v| match v {
        Value::Multi(claims) => {
            let nums: Vec<f64> = claims.iter().filter_map(|c| c.value.as_f64()).collect();
            if nums.len() < 2 {
                Value::Null
            } else {
                let lo = nums.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                Value::Float(hi - lo)
            }
        }
        _ => Value::Null,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::{DataType, RelationBuilder};

    /// Three weather sources; source 2 is systematically wrong.
    fn sources() -> (Relation, Relation, Relation) {
        let mk = |name: &str, id: u64, temps: &[(&str, i64)]| {
            let mut b = RelationBuilder::new(name)
                .column("city", DataType::Str)
                .column("temp", DataType::Int);
            for (c, t) in temps {
                b = b.row(vec![Value::str(*c), Value::Int(*t)]);
            }
            b.source(DatasetId(id)).build().unwrap()
        };
        (
            mk("s0", 0, &[("nyc", 20), ("chi", 15), ("sfo", 18)]),
            mk("s1", 1, &[("nyc", 20), ("chi", 15), ("sfo", 18)]),
            mk("s2", 2, &[("nyc", 99), ("chi", 15), ("sfo", 50)]),
        )
    }

    #[test]
    fn align_produces_multi_cells() {
        let (a, b, c) = sources();
        let fused = align(&[&a, &b, &c], "city", "temp").unwrap();
        assert_eq!(fused.len(), 3);
        match fused.rows()[0].get(1) {
            Value::Multi(claims) => {
                assert_eq!(claims.len(), 3);
                assert_eq!(claims[0].source, DatasetId(0));
            }
            other => panic!("expected Multi, got {other}"),
        }
        // provenance spans all three sources
        assert_eq!(fused.rows()[0].provenance().datasets().len(), 3);
    }

    #[test]
    fn majority_vote_overrules_outlier() {
        let (a, b, c) = sources();
        let fused = align(&[&a, &b, &c], "city", "temp").unwrap();
        let resolved = resolve(&fused, "temp", &FusionStrategy::MajorityVote).unwrap();
        let nyc = resolved
            .rows()
            .iter()
            .find(|r| r.get(0).as_str() == Some("nyc"))
            .unwrap();
        assert_eq!(nyc.get(1), &Value::Int(20));
    }

    #[test]
    fn mean_strategy_averages() {
        let (a, b, c) = sources();
        let fused = align(&[&a, &b, &c], "city", "temp").unwrap();
        let resolved = resolve(&fused, "temp", &FusionStrategy::Mean).unwrap();
        let nyc = resolved
            .rows()
            .iter()
            .find(|r| r.get(0).as_str() == Some("nyc"))
            .unwrap();
        assert!((nyc.get(1).as_f64().unwrap() - (20.0 + 20.0 + 99.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn first_strategy_takes_priority_source() {
        let (a, b, c) = sources();
        let fused = align(&[&c, &a, &b], "city", "temp").unwrap();
        let resolved = resolve(&fused, "temp", &FusionStrategy::First).unwrap();
        let nyc = resolved
            .rows()
            .iter()
            .find(|r| r.get(0).as_str() == Some("nyc"))
            .unwrap();
        assert_eq!(nyc.get(1), &Value::Int(99)); // source 2 listed first
    }

    #[test]
    fn keep_all_is_identity() {
        let (a, b, _) = sources();
        let fused = align(&[&a, &b], "city", "temp").unwrap();
        let kept = resolve(&fused, "temp", &FusionStrategy::KeepAll).unwrap();
        assert!(matches!(kept.rows()[0].get(1), Value::Multi(_)));
    }

    #[test]
    fn truth_discovery_downweights_liar() {
        let (a, b, c) = sources();
        let fused = align(&[&a, &b, &c], "city", "temp").unwrap();
        let result = TruthDiscovery::default().run(&fused, "temp").unwrap();
        let w0 = result.source_weights[&DatasetId(0)];
        let w2 = result.source_weights[&DatasetId(2)];
        assert!(w0 > w2, "honest source {w0} must outrank liar {w2}");
        // consensus matches the honest sources
        let nyc = result
            .resolved
            .rows()
            .iter()
            .find(|r| r.get(0).as_str() == Some("nyc"))
            .unwrap();
        assert_eq!(nyc.get(1), &Value::Int(20));
        assert!(result.iterations >= 1);
    }

    #[test]
    fn contrast_measures_disagreement() {
        let (a, b, c) = sources();
        let fused = align(&[&a, &b, &c], "city", "temp").unwrap();
        let diff = contrast(&fused, "temp").unwrap();
        let nyc = diff
            .rows()
            .iter()
            .find(|r| r.get(0).as_str() == Some("nyc"))
            .unwrap();
        assert_eq!(nyc.get(1), &Value::Float(79.0)); // 99 - 20
        let chi = diff
            .rows()
            .iter()
            .find(|r| r.get(0).as_str() == Some("chi"))
            .unwrap();
        assert_eq!(chi.get(1), &Value::Float(0.0));
    }

    #[test]
    fn align_requires_sources() {
        assert!(align(&[], "k", "v").is_err());
    }

    #[test]
    fn null_keys_are_skipped() {
        let r = RelationBuilder::new("s")
            .column("k", DataType::Str)
            .column("v", DataType::Int)
            .row(vec![Value::Null, Value::Int(1)])
            .row(vec![Value::str("a"), Value::Int(2)])
            .source(DatasetId(1))
            .build()
            .unwrap();
        let fused = align(&[&r], "k", "v").unwrap();
        assert_eq!(fused.len(), 1);
    }

    #[test]
    fn ties_break_deterministically() {
        let claims = vec![
            Sourced::new(DatasetId(0), Value::Int(1)),
            Sourced::new(DatasetId(1), Value::Int(2)),
        ];
        let v1 = resolve_claims(&claims, &FusionStrategy::MajorityVote);
        let v2 = resolve_claims(&claims, &FusionStrategy::MajorityVote);
        assert_eq!(v1, v2);
    }
}
