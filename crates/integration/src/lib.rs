//! # dmp-integration
//!
//! The integration half of the Mashup Builder (paper §5.3, Fig. 3;
//! DESIGN.md S4–S6): the **DoD (dataset-on-demand) engine** "takes
//! WTP-functions as input and produces mashups that fulfill the
//! WTP-function requests as output", using join-path discovery, attribute
//! mapping functions, and data-fusion operators.
//!
//! * [`join_graph`] — join-path enumeration over the relationship index
//!   and path materialization via hash joins;
//! * [`mapping`] — discovery of attribute mapping functions: identity,
//!   affine transforms (the paper's Celsius→Fahrenheit `f(d)`), and
//!   dictionary mapping tables for non-invertible functions, plus inverse
//!   search (`f'` such that `f'(f(d)) = d`);
//! * [`fusion`] — fusion operators that align multiple sources into
//!   multi-valued (1NF-breaking) cells and resolve them by majority,
//!   weighted vote (iterative truth discovery), mean, or keep-all;
//! * [`blend`] — the blending engine: schema matching + union across
//!   near-duplicate datasets;
//! * [`dod`] — the DoD engine itself: query-by-example target schemas in,
//!   ranked materialized mashup candidates out.

pub mod blend;
pub mod dod;
pub mod fusion;
pub mod join_graph;
pub mod mapping;

pub use dod::{DodEngine, MashupCandidate, TargetSpec};
pub use fusion::{FusionStrategy, TruthDiscovery};
pub use join_graph::{JoinPath, JoinStep};
pub use mapping::Mapping;
