//! Join-path enumeration and materialization over the relationship index.
//!
//! The index builder "materializes join paths between files" (§5.2); the
//! DoD engine walks those paths to assemble mashups. A [`JoinPath`] is a
//! sequence of join steps from an anchor dataset to a target dataset; this
//! module enumerates acyclic paths up to a hop limit and materializes them
//! with provenance-preserving hash joins.

use dmp_discovery::{MetadataEngine, RelationshipIndex};
use dmp_relation::{DatasetId, RelError, RelResult, Relation};

/// One hop in a join path.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStep {
    /// Dataset on the left of this hop.
    pub from_dataset: DatasetId,
    /// Join column on the left dataset (name in the *original* dataset).
    pub from_column: String,
    /// Dataset on the right of this hop.
    pub to_dataset: DatasetId,
    /// Join column on the right dataset.
    pub to_column: String,
    /// Confidence score of this edge (containment-based).
    pub confidence: f64,
}

/// An acyclic join path between two datasets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JoinPath {
    /// The hops, in order.
    pub steps: Vec<JoinStep>,
}

impl JoinPath {
    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.steps.len()
    }

    /// Product of per-edge confidences (path confidence).
    pub fn confidence(&self) -> f64 {
        self.steps.iter().map(|s| s.confidence).product()
    }

    /// Datasets visited, anchor first.
    pub fn datasets(&self) -> Vec<DatasetId> {
        let mut out = Vec::with_capacity(self.steps.len() + 1);
        if let Some(first) = self.steps.first() {
            out.push(first.from_dataset);
        }
        out.extend(self.steps.iter().map(|s| s.to_dataset));
        out
    }
}

/// Enumerate acyclic join paths from `from` to `to`, up to `max_hops`,
/// best-confidence first. Bounded breadth keeps enumeration cheap on
/// dense graphs.
pub fn enumerate_paths(
    index: &RelationshipIndex,
    from: DatasetId,
    to: DatasetId,
    max_hops: usize,
) -> Vec<JoinPath> {
    const MAX_PATHS: usize = 64;
    let mut results: Vec<JoinPath> = Vec::new();
    // DFS stack: (current dataset, path so far, visited sets)
    let mut stack: Vec<(DatasetId, JoinPath, Vec<DatasetId>)> =
        vec![(from, JoinPath::default(), vec![from])];

    while let Some((cur, path, visited)) = stack.pop() {
        if results.len() >= MAX_PATHS {
            break;
        }
        if path.hops() >= max_hops {
            continue;
        }
        for edge in index.edges_of(cur) {
            let (fd, fc, td, tc) = if edge.left.dataset == cur {
                (
                    edge.left.dataset,
                    edge.left.column.clone(),
                    edge.right.dataset,
                    edge.right.column.clone(),
                )
            } else {
                (
                    edge.right.dataset,
                    edge.right.column.clone(),
                    edge.left.dataset,
                    edge.left.column.clone(),
                )
            };
            if visited.contains(&td) {
                continue;
            }
            let mut next = path.clone();
            next.steps.push(JoinStep {
                from_dataset: fd,
                from_column: fc,
                to_dataset: td,
                to_column: tc,
                confidence: edge.score().min(1.0),
            });
            if td == to {
                results.push(next);
            } else {
                let mut v = visited.clone();
                v.push(td);
                stack.push((td, next, v));
            }
        }
    }

    results.sort_by(|a, b| {
        b.confidence()
            .total_cmp(&a.confidence())
            .then_with(|| a.hops().cmp(&b.hops()))
    });
    results
}

/// Materialize a join path into a relation by chaining inner hash joins,
/// starting from the anchor dataset's current contents.
///
/// Column-name bookkeeping: after each join, clashing right-side names are
/// suffixed `_r` by the join operator; we track the *current* name of each
/// hop's join column so later hops join on the right physical column.
pub fn materialize(path: &JoinPath, engine: &MetadataEngine) -> RelResult<Relation> {
    let first = path
        .steps
        .first()
        .ok_or_else(|| RelError::Invalid("empty join path".into()))?;
    let acc: Relation = engine
        .relation(first.from_dataset)
        .ok_or_else(|| RelError::Invalid(format!("unknown dataset {}", first.from_dataset)))?
        .as_ref()
        .clone();
    apply_steps(acc, &path.steps, engine)
}

/// Apply join steps onto an already-materialized accumulator. Used by the
/// DoD engine to chain several paths from the same anchor. Steps whose
/// target dataset's columns are already present (joined earlier) are
/// skipped.
pub fn apply_steps(
    mut acc: Relation,
    steps: &[JoinStep],
    engine: &MetadataEngine,
) -> RelResult<Relation> {
    for step in steps {
        let right = engine
            .relation(step.to_dataset)
            .ok_or_else(|| RelError::Invalid(format!("unknown dataset {}", step.to_dataset)))?;
        if acc.full_provenance().datasets().contains(&step.to_dataset)
            && acc.schema().contains(&step.to_column)
        {
            continue; // already joined this dataset in an earlier path
        }
        // The left join column must exist in the accumulated relation; if
        // a previous join renamed it (suffix _r), try that variant.
        let left_col = resolve_column(&acc, &step.from_column)
            .ok_or_else(|| RelError::UnknownColumn(step.from_column.clone()))?;
        acc = acc.join(
            &right,
            &[(left_col.as_str(), step.to_column.as_str())],
            dmp_relation::ops::JoinKind::Inner,
        )?;
    }
    Ok(acc)
}

/// Find the current physical name of a logical column that joins may have
/// suffixed with `_r` (possibly repeatedly).
pub fn resolve_column(rel: &Relation, name: &str) -> Option<String> {
    if rel.schema().contains(name) {
        return Some(name.to_string());
    }
    let mut candidate = format!("{name}_r");
    for _ in 0..4 {
        if rel.schema().contains(&candidate) {
            return Some(candidate);
        }
        candidate.push_str("_r");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_discovery::IndexBuilder;
    use dmp_relation::{DataType, RelationBuilder, Value};

    /// customers —(cust_id/customer)— orders —(product/sku)— products
    fn lake() -> MetadataEngine {
        let eng = MetadataEngine::new();
        let mut b = RelationBuilder::new("customers")
            .column("cust_id", DataType::Int)
            .column("region", DataType::Str);
        for i in 0..100 {
            b = b.row(vec![
                Value::Int(i),
                Value::str(if i % 2 == 0 { "eu" } else { "us" }),
            ]);
        }
        eng.register("customers", "a", b.build().unwrap());

        let mut b = RelationBuilder::new("orders")
            .column("customer", DataType::Int)
            .column("product", DataType::Int);
        for i in 0..300 {
            b = b.row(vec![Value::Int(i % 100), Value::Int(1000 + (i % 20))]);
        }
        eng.register("orders", "b", b.build().unwrap());

        let mut b = RelationBuilder::new("products")
            .column("sku", DataType::Int)
            .column("price", DataType::Float);
        for i in 0..20 {
            b = b.row(vec![Value::Int(1000 + i), Value::Float(i as f64 * 9.99)]);
        }
        eng.register("products", "c", b.build().unwrap());
        eng
    }

    #[test]
    fn finds_direct_path() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let paths = enumerate_paths(&idx.relationships, ids[0], ids[1], 2);
        assert!(!paths.is_empty());
        assert_eq!(paths[0].hops(), 1);
        assert!(paths[0].confidence() > 0.5);
    }

    #[test]
    fn finds_two_hop_path() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let paths = enumerate_paths(&idx.relationships, ids[0], ids[2], 3);
        assert!(
            paths.iter().any(|p| p.hops() == 2),
            "expected customers→orders→products path, got {paths:?}"
        );
    }

    #[test]
    fn hop_limit_respected() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let paths = enumerate_paths(&idx.relationships, ids[0], ids[2], 1);
        assert!(paths.iter().all(|p| p.hops() <= 1));
    }

    #[test]
    fn materialize_single_hop() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let paths = enumerate_paths(&idx.relationships, ids[0], ids[1], 2);
        let rel = materialize(&paths[0], &eng).unwrap();
        assert_eq!(rel.len(), 300); // every order matches a customer
        assert!(rel.schema().contains("region"));
        assert!(rel.schema().contains("product"));
    }

    #[test]
    fn materialize_two_hops_reaches_price() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let paths = enumerate_paths(&idx.relationships, ids[0], ids[2], 3);
        let two_hop = paths.iter().find(|p| p.hops() == 2).unwrap();
        let rel = materialize(two_hop, &eng).unwrap();
        assert!(rel.schema().contains("price"));
        assert_eq!(rel.len(), 300);
        // provenance of each row spans all three datasets
        assert_eq!(rel.rows()[0].provenance().datasets().len(), 3);
    }

    #[test]
    fn empty_path_rejected() {
        let eng = lake();
        assert!(materialize(&JoinPath::default(), &eng).is_err());
    }

    #[test]
    fn paths_sorted_by_confidence() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let paths = enumerate_paths(&idx.relationships, ids[0], ids[2], 3);
        for w in paths.windows(2) {
            assert!(w[0].confidence() >= w[1].confidence() || w[0].hops() <= w[1].hops());
        }
    }

    #[test]
    fn datasets_lists_visited() {
        let eng = lake();
        let idx = IndexBuilder::new().build(&eng);
        let ids = eng.ids();
        let paths = enumerate_paths(&idx.relationships, ids[0], ids[2], 3);
        let p = paths.iter().find(|p| p.hops() == 2).unwrap();
        assert_eq!(p.datasets(), vec![ids[0], ids[1], ids[2]]);
    }
}
