//! Property tests for the integration layer: fusion conservation laws,
//! mapping round-trips, and DoD output well-formedness on randomized
//! markets.

use proptest::prelude::*;

use dmp_discovery::MetadataEngine;
use dmp_integration::dod::{DodEngine, TargetSpec};
use dmp_integration::fusion::{align, resolve, FusionStrategy};
use dmp_integration::mapping::{self, Mapping};
use dmp_relation::{DataType, DatasetId, Relation, RelationBuilder, Value};

fn source_rel(id: u64, pairs: &[(i64, i64)]) -> Relation {
    let mut b = RelationBuilder::new(format!("src{id}"))
        .column("obj", DataType::Int)
        .column("val", DataType::Int);
    for (k, v) in pairs {
        b = b.row(vec![Value::Int(*k), Value::Int(*v)]);
    }
    b.source(DatasetId(id)).build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Alignment covers exactly the union of keys, and every fused cell
    /// holds one claim per source that mentioned the key.
    #[test]
    fn fusion_alignment_conserves_claims(
        a in prop::collection::btree_map(0i64..20, 0i64..5, 1..15),
        b in prop::collection::btree_map(0i64..20, 0i64..5, 1..15),
    ) {
        let ra = source_rel(1, &a.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>());
        let rb = source_rel(2, &b.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>());
        let fused = align(&[&ra, &rb], "obj", "val").unwrap();

        let mut union_keys: Vec<i64> = a.keys().chain(b.keys()).copied().collect();
        union_keys.sort_unstable();
        union_keys.dedup();
        prop_assert_eq!(fused.len(), union_keys.len());

        let total_claims: usize = fused
            .rows()
            .iter()
            .map(|r| match r.get(1) {
                Value::Multi(c) => c.len(),
                _ => 0,
            })
            .sum();
        prop_assert_eq!(total_claims, a.len() + b.len());
    }

    /// Majority vote returns one of the claimed values (never invents).
    #[test]
    fn fusion_vote_picks_a_claimed_value(
        claims in prop::collection::vec((0u64..4, 0i64..6), 1..12),
    ) {
        let sources: Vec<Relation> = claims
            .iter()
            .enumerate()
            .map(|(i, (s, v))| source_rel(*s + i as u64 * 10, &[(0, *v)]))
            .collect();
        let refs: Vec<&Relation> = sources.iter().collect();
        let fused = align(&refs, "obj", "val").unwrap();
        let resolved = resolve(&fused, "val", &FusionStrategy::MajorityVote).unwrap();
        let winner = resolved.rows()[0].get(1).as_i64().unwrap();
        prop_assert!(claims.iter().any(|(_, v)| *v == winner));
    }

    /// Affine mappings discovered from their own samples invert exactly.
    #[test]
    fn affine_mapping_round_trips(scale in 0.1f64..10.0, offset in -100.0f64..100.0, xs in prop::collection::vec(-50.0f64..50.0, 2..20)) {
        let pairs: Vec<(Value, Value)> = xs
            .iter()
            .map(|&x| (Value::Float(x), Value::Float(scale * x + offset)))
            .collect();
        // Need variance in x for a unique fit.
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-3));
        let m = mapping::discover(&pairs).expect("affine discoverable");
        match &m {
            Mapping::Affine { .. } | Mapping::Identity => {}
            other => prop_assert!(false, "expected affine, got {other:?}"),
        }
        let inv = m.invert().expect("scale > 0 invertible");
        for &x in &xs {
            let y = m.apply(&Value::Float(x));
            let back = inv.apply(&y).as_f64().unwrap();
            prop_assert!((back - x).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    /// Dictionary discovery is consistent: apply() reproduces every
    /// training pair.
    #[test]
    fn dictionary_mapping_reproduces_pairs(entries in prop::collection::btree_map(0i64..50, "[a-z]{1,4}", 1..20)) {
        let pairs: Vec<(Value, Value)> = entries
            .iter()
            .map(|(k, v)| (Value::Int(*k), Value::str(v.clone())))
            .collect();
        let m = mapping::discover(&pairs).expect("consistent pairs");
        for (x, y) in &pairs {
            prop_assert_eq!(&m.apply(x), y);
        }
    }

    /// DoD candidates are always well-formed: coverage in (0, 1],
    /// confidence in (0, 1], schema exactly the bound attributes, and
    /// every bound attribute is one of the requested ones.
    #[test]
    fn dod_candidates_well_formed(
        tables in prop::collection::vec(prop::collection::vec(0i64..25, 1..15), 1..4),
        extra_attr in proptest::bool::ANY,
    ) {
        let engine = MetadataEngine::new();
        for (i, keys) in tables.iter().enumerate() {
            let mut b = RelationBuilder::new(format!("t{i}"))
                .column("shared_key", DataType::Int)
                .column(format!("payload_{i}"), DataType::Float);
            for k in keys {
                b = b.row(vec![Value::Int(*k), Value::Float(*k as f64)]);
            }
            engine.register(format!("t{i}"), "owner", b.build().unwrap());
        }
        let mut attrs = vec!["shared_key".to_string(), "payload_0".to_string()];
        if extra_attr {
            attrs.push("no_such_attribute".to_string());
        }
        let dod = DodEngine::new(&engine);
        let spec = TargetSpec::with_attributes(attrs.clone());
        let cands = dod.find_mashups(&spec).unwrap();
        for c in cands {
            prop_assert!(c.coverage > 0.0 && c.coverage <= 1.0 + 1e-9);
            prop_assert!(c.confidence > 0.0 && c.confidence <= 1.0 + 1e-9);
            for (attr, _) in &c.bindings {
                prop_assert!(attrs.contains(attr));
            }
            for name in c.relation.schema().names() {
                prop_assert!(attrs.iter().any(|a| a == name));
            }
            if extra_attr {
                prop_assert!(c.missing(&spec).contains(&"no_such_attribute"));
            }
        }
    }
}
