//! Market configuration: deployment flavor, plugged-in design,
//! currency, and arbiter knobs (paper §3.3 presets).

use dmp_mechanism::design::MarketDesign;

use crate::currency::Currency;

/// Market deployment flavor (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketKind {
    /// Within one organization; welfare goal, bonus points.
    Internal,
    /// Across organizations; revenue goal, money.
    External,
    /// Data-for-data economies; credits earned by sharing.
    Barter,
}

/// Full market configuration.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Deployment flavor.
    pub kind: MarketKind,
    /// The plugged-in market design (Fig. 1 (2)).
    pub design: MarketDesign,
    /// Incentive denomination.
    pub currency: Currency,
    /// Seed for audit draws and other market-side randomness.
    pub seed: u64,
    /// Candidate mashups considered per offer per round.
    pub max_candidates: usize,
    /// Platform-minted reward paid to contributing sellers per
    /// transaction regardless of the price (the §3.3 bonus-point
    /// incentive for internal markets where buyers pay nothing).
    pub contribution_reward: f64,
}

impl MarketConfig {
    /// Internal market preset: welfare design + bonus points.
    pub fn internal() -> Self {
        MarketConfig {
            kind: MarketKind::Internal,
            design: MarketDesign::internal_welfare(),
            currency: Currency::BonusPoints,
            seed: 7,
            max_candidates: 4,
            contribution_reward: 10.0,
        }
    }

    /// External market preset: revenue design + money.
    pub fn external(seed: u64) -> Self {
        MarketConfig {
            kind: MarketKind::External,
            design: MarketDesign::external_revenue(seed),
            currency: Currency::Money,
            seed,
            max_candidates: 4,
            contribution_reward: 0.0,
        }
    }

    /// Barter market preset: transactions goal + data credits.
    pub fn barter() -> Self {
        MarketConfig {
            kind: MarketKind::Barter,
            design: MarketDesign::posted_price_baseline(5.0),
            currency: Currency::DataCredits,
            seed: 7,
            max_candidates: 4,
            contribution_reward: 5.0,
        }
    }

    /// Replace the design (plug'n'play).
    pub fn with_design(mut self, design: MarketDesign) -> Self {
        self.design = design;
        self
    }
}
