//! The [`DataMarket`]: one deployable DMMS instance (Fig. 1 (4), Fig. 2)
//! wired to a plug'n'play [`MarketDesign`]. Internal, external and barter
//! markets are the same platform with different configs (§3.3).
//!
//! A market round ([`DataMarket::run_round`]) drives the staged arbiter
//! pipeline in [`crate::arbiter::pipeline`]: expiry → candidate
//! building/evaluation → clearing → settlement, with licensing,
//! reserves, contextual integrity, privacy accounting, lineage and the
//! audit chain enforced along the way. This module owns the market's
//! *state* (offer book, ledger, participants, licenses) and its public
//! API; the round *logic* lives stage-by-stage in the pipeline module.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::SeedableRng;

use dmp_discovery::{LineageLog, MetadataEngine};
use dmp_mechanism::wtp::WtpFunction;
use dmp_privacy::PrivacyBudget;
use dmp_relation::{DatasetId, Relation};
pub use dmp_valuation::sharing::DatasetShare;

use crate::arbiter::ledger::Ledger;
use crate::arbiter::pipeline::{self, RoundStage};
use crate::arbiter::services::{demand_report, DemandReport, Purchase};
use crate::buyer::BuyerHandle;
use crate::error::{MarketError, MarketResult};
use crate::license::{ContextualIntegrityPolicy, License};
use crate::seller::SellerHandle;
use crate::trust::{AuditEvent, AuditLog, DisputeManager};

pub use crate::arbiter::pipeline::{NegotiationRequest, RoundReport};
pub use crate::config::{MarketConfig, MarketKind};

/// Offer lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum OfferState {
    /// Awaiting a satisfying mashup / clearing.
    Pending,
    /// Fulfilled by a transaction.
    Fulfilled {
        /// Settling transaction id.
        tx: u64,
    },
    /// Delivered, awaiting the buyer's ex post report.
    AwaitingReport {
        /// Delivery id.
        delivery: u64,
    },
    /// Expired unserved.
    Expired,
}

/// A submitted WTP offer.
#[derive(Debug, Clone)]
pub struct Offer {
    /// Offer id.
    pub id: u64,
    /// The WTP-function.
    pub wtp: WtpFunction,
    /// Declared purpose (checked against contextual-integrity policies).
    pub purpose: String,
    /// Logical submission time.
    pub submitted_at: u64,
    /// Lifecycle state.
    pub state: OfferState,
}

/// A settled transaction.
#[derive(Debug, Clone)]
pub struct TransactionRecord {
    /// Transaction id.
    pub id: u64,
    /// The fulfilled offer.
    pub offer_id: u64,
    /// Buyer principal.
    pub buyer: String,
    /// Price paid (including license uplift).
    pub price: f64,
    /// Arbiter fee retained.
    pub fee: f64,
    /// Satisfaction delivered.
    pub satisfaction: f64,
    /// Contributing datasets.
    pub datasets: Vec<DatasetId>,
    /// Revenue shares distributed to datasets.
    pub shares: Vec<DatasetShare>,
    /// Round in which the sale cleared.
    pub round: u64,
}

/// An ex post delivery awaiting (or past) the buyer's value report.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Delivery id.
    pub id: u64,
    /// The offer it serves.
    pub offer_id: u64,
    /// Buyer principal.
    pub buyer: String,
    /// The delivered mashup.
    pub relation: Relation,
    /// Arbiter-measured satisfaction (used for audits).
    pub satisfaction: f64,
    /// Escrowed deposit id.
    pub escrow: u64,
    /// Contributing datasets.
    pub datasets: Vec<DatasetId>,
    /// Settlement, once reported.
    pub settlement: Option<Settlement>,
}

/// Outcome of an ex post report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Settlement {
    /// Amount paid for the data (the report, capped by the deposit).
    pub paid: f64,
    /// Penalty charged on detected under-reporting.
    pub penalty: f64,
    /// Whether the report was audited.
    pub audited: bool,
}

/// Per-participant state.
#[derive(Debug, Clone)]
pub struct Participant {
    /// Principal name.
    pub name: String,
    /// Role (matched against contextual-integrity policies).
    pub role: String,
    /// Reputation in [0, 1]; drops on detected misreports.
    pub reputation: f64,
    /// Excluded from submitting offers until this round.
    pub excluded_until: u64,
}

/// The account name the arbiter accrues fees into.
pub const ARBITER_ACCOUNT: &str = "__arbiter__";

/// State every shard of one deployment **shares**: the dataset catalog
/// (metadata + lineage), the licensing terms attached to it (reserves,
/// licenses, contextual-integrity policies, exclusivity holds) and the
/// settlement ledger.
///
/// Sharding the market (service layer) partitions *participants* —
/// their offer books, round execution, audit chains — purely as a
/// throughput measure; it must not thin the match graph or fork the
/// currency supply. Putting the catalog and the ledger behind shared
/// handles is what makes an M-shard deployment clear the same trades
/// and hold the same balances as the 1-shard market for the same
/// command stream. A standalone [`DataMarket`] owns a private substrate
/// (`DataMarket::new`), so library users see no difference.
#[derive(Clone, Default)]
pub struct MarketSubstrate {
    pub(crate) metadata: Arc<MetadataEngine>,
    pub(crate) lineage: Arc<LineageLog>,
    pub(crate) ledger: Arc<Ledger>,
    pub(crate) reserves: Arc<Mutex<BTreeMap<DatasetId, f64>>>,
    pub(crate) licenses: Arc<Mutex<BTreeMap<DatasetId, License>>>,
    pub(crate) ci_policies: Arc<Mutex<BTreeMap<DatasetId, ContextualIntegrityPolicy>>>,
    pub(crate) exclusive_holds: Arc<Mutex<BTreeMap<DatasetId, (String, u64)>>>,
}

impl MarketSubstrate {
    /// A fresh, empty substrate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capture the shared substrate — catalog, lineage, ledger and the
    /// licensing terms — for a materialized snapshot. Everything here is
    /// shared by all shards of a deployment, so it is captured once, not
    /// per shard.
    pub fn export_state(&self) -> SubstrateImage {
        let (lineage, lineage_seq) = self.lineage.export_state();
        SubstrateImage {
            metadata: self.metadata.export_state(),
            lineage,
            lineage_seq,
            ledger: self.ledger.export_state(),
            reserves: self.reserves.lock().iter().map(|(&d, &p)| (d, p)).collect(),
            licenses: self
                .licenses
                .lock()
                .iter()
                .map(|(&d, l)| (d, l.clone()))
                .collect(),
            // Lock order matches the candidate pipeline: exclusive
            // holds before CI policies.
            exclusive_holds: self
                .exclusive_holds
                .lock()
                .iter()
                .map(|(&d, (holder, until))| (d, holder.clone(), *until))
                .collect(),
            ci_policies: self
                .ci_policies
                .lock()
                .iter()
                .map(|(&d, p)| (d, p.clone()))
                .collect(),
        }
    }

    /// Replace the substrate's contents with a previously exported
    /// image (recovery from a materialized snapshot).
    pub fn restore_state(&self, image: SubstrateImage) {
        self.metadata.restore_state(image.metadata);
        self.lineage.restore_state(image.lineage, image.lineage_seq);
        self.ledger.restore_state(image.ledger);
        *self.reserves.lock() = image.reserves.into_iter().collect();
        *self.licenses.lock() = image.licenses.into_iter().collect();
        *self.exclusive_holds.lock() = image
            .exclusive_holds
            .into_iter()
            .map(|(d, holder, until)| (d, (holder, until)))
            .collect();
        *self.ci_policies.lock() = image.ci_policies.into_iter().collect();
    }
}

/// Shared-substrate state captured by [`MarketSubstrate::export_state`].
#[derive(Debug, Clone, Default)]
pub struct SubstrateImage {
    /// Dataset catalog (relations, versions, tags, id/clock counters).
    pub metadata: dmp_discovery::metadata::MetadataImage,
    /// Per-dataset lineage events, dataset-sorted.
    pub lineage: Vec<(DatasetId, Vec<(u64, dmp_discovery::LineageEvent)>)>,
    /// The lineage sequence counter.
    pub lineage_seq: u64,
    /// Exact micro-credit ledger state.
    pub ledger: crate::arbiter::ledger::LedgerImage,
    /// Seller reserve prices, dataset-sorted.
    pub reserves: Vec<(DatasetId, f64)>,
    /// Licenses attached to datasets, dataset-sorted.
    pub licenses: Vec<(DatasetId, License)>,
    /// Contextual-integrity policies, dataset-sorted.
    pub ci_policies: Vec<(DatasetId, ContextualIntegrityPolicy)>,
    /// Active exclusivity holds `(dataset, holder, until_round)`.
    pub exclusive_holds: Vec<(DatasetId, String, u64)>,
}

/// Everything one market shard owns *privately*, captured for a
/// materialized snapshot: the offer book and its lifecycle records, the
/// participant roster, the shard clock and id allocators, the audit
/// chain's events, disputes, and the shard's RNG stream position.
#[derive(Debug, Clone)]
pub struct MarketShardState {
    /// Logical clock.
    pub clock: u64,
    /// Completed rounds.
    pub round: u64,
    /// Next offer id the shard-local allocator would hand out.
    pub next_offer: u64,
    /// Next transaction id.
    pub next_tx: u64,
    /// Next delivery id.
    pub next_delivery: u64,
    /// The offer book, id-sorted.
    pub offers: Vec<Offer>,
    /// Settled transactions, in settlement order.
    pub transactions: Vec<TransactionRecord>,
    /// Ex post deliveries, in delivery order.
    pub deliveries: Vec<Delivery>,
    /// Purchase records feeding the recommender.
    pub purchases: Vec<Purchase>,
    /// Participant roster, name-sorted.
    pub participants: Vec<Participant>,
    /// Missing-attribute lists from the most recent round.
    pub last_missing: Vec<Vec<String>>,
    /// Negotiation requests from the most recent round.
    pub last_negotiations: Vec<NegotiationRequest>,
    /// The shard RNG's xoshiro256++ state words.
    pub rng: [u64; 4],
    /// Audit-chain events in append order (the chain's hashes are
    /// recomputed on restore; they are process-local tamper evidence,
    /// not durable state).
    pub audit_events: Vec<AuditEvent>,
    /// Disputes in id order (ids are dense from 0).
    pub disputes: Vec<crate::trust::Dispute>,
}

/// The deployed data market.
pub struct DataMarket {
    pub(crate) config: MarketConfig,
    pub(crate) metadata: Arc<MetadataEngine>,
    pub(crate) lineage: Arc<LineageLog>,
    pub(crate) privacy: PrivacyBudget,
    pub(crate) ledger: Arc<Ledger>,
    pub(crate) audit: AuditLog,
    pub(crate) disputes: DisputeManager,
    clock: AtomicU64,
    pub(crate) round_counter: AtomicU64,
    next_offer: AtomicU64,
    pub(crate) next_tx: AtomicU64,
    pub(crate) next_delivery: AtomicU64,
    /// Offer book, keyed by offer id (ordered ⇒ deterministic rounds,
    /// O(log n) state updates instead of the former linear scans).
    pub(crate) offers: Mutex<BTreeMap<u64, Offer>>,
    pub(crate) transactions: Mutex<Vec<TransactionRecord>>,
    pub(crate) deliveries: Mutex<Vec<Delivery>>,
    pub(crate) purchases: Mutex<Vec<Purchase>>,
    pub(crate) reserves: Arc<Mutex<BTreeMap<DatasetId, f64>>>,
    pub(crate) licenses: Arc<Mutex<BTreeMap<DatasetId, License>>>,
    pub(crate) ci_policies: Arc<Mutex<BTreeMap<DatasetId, ContextualIntegrityPolicy>>>,
    pub(crate) exclusive_holds: Arc<Mutex<BTreeMap<DatasetId, (String, u64)>>>,
    pub(crate) participants: Mutex<BTreeMap<String, Participant>>,
    pub(crate) last_missing: Mutex<Vec<Vec<String>>>,
    pub(crate) last_negotiations: Mutex<Vec<NegotiationRequest>>,
    pub(crate) rng: Mutex<rand::rngs::StdRng>,
}

impl DataMarket {
    /// Deploy a market with a configuration and a private substrate.
    pub fn new(config: MarketConfig) -> Self {
        Self::with_substrate(config, MarketSubstrate::new())
    }

    /// Deploy a market *shard* onto an existing substrate: the catalog,
    /// licensing terms and ledger are shared with every other market on
    /// the same substrate, while participants, offer books, clocks and
    /// RNG streams stay private to this shard.
    pub fn with_substrate(config: MarketConfig, substrate: MarketSubstrate) -> Self {
        let rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        DataMarket {
            config,
            metadata: substrate.metadata,
            lineage: substrate.lineage,
            privacy: PrivacyBudget::new(),
            ledger: substrate.ledger,
            audit: AuditLog::new(),
            disputes: DisputeManager::new(),
            clock: AtomicU64::new(0),
            round_counter: AtomicU64::new(0),
            next_offer: AtomicU64::new(0),
            next_tx: AtomicU64::new(0),
            next_delivery: AtomicU64::new(0),
            offers: Mutex::new(BTreeMap::new()),
            transactions: Mutex::new(Vec::new()),
            deliveries: Mutex::new(Vec::new()),
            purchases: Mutex::new(Vec::new()),
            reserves: substrate.reserves,
            licenses: substrate.licenses,
            ci_policies: substrate.ci_policies,
            exclusive_holds: substrate.exclusive_holds,
            participants: Mutex::new(BTreeMap::new()),
            last_missing: Mutex::new(Vec::new()),
            last_negotiations: Mutex::new(Vec::new()),
            rng: Mutex::new(rng),
        }
    }

    /// A handle to this market's substrate (clone it into
    /// [`DataMarket::with_substrate`] to deploy further shards over the
    /// same catalog and ledger).
    pub fn substrate(&self) -> MarketSubstrate {
        MarketSubstrate {
            metadata: Arc::clone(&self.metadata),
            lineage: Arc::clone(&self.lineage),
            ledger: Arc::clone(&self.ledger),
            reserves: Arc::clone(&self.reserves),
            licenses: Arc::clone(&self.licenses),
            ci_policies: Arc::clone(&self.ci_policies),
            exclusive_holds: Arc::clone(&self.exclusive_holds),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// Logical time (monotone).
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    pub(crate) fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Completed rounds.
    pub fn round(&self) -> u64 {
        self.round_counter.load(Ordering::Relaxed)
    }

    /// Enroll a participant with a role; grants enrollment funds.
    pub fn enroll(&self, name: impl Into<String>, role: impl Into<String>) {
        let name = name.into();
        let grant = self.config.currency.enrollment_grant();
        if grant > 0.0 {
            self.ledger.deposit(&name, grant);
        }
        self.participants
            .lock()
            .entry(name.clone())
            .or_insert(Participant {
                name,
                role: role.into(),
                reputation: 1.0,
                excluded_until: 0,
            });
    }

    /// Participant lookup.
    pub fn participant(&self, name: &str) -> Option<Participant> {
        self.participants.lock().get(name).cloned()
    }

    /// All participants, sorted by name (enumerable for snapshots and
    /// service-layer digests).
    pub fn participants(&self) -> Vec<Participant> {
        // BTreeMap iteration is already name-ordered.
        self.participants.lock().values().cloned().collect()
    }

    /// Credit an account directly (command-application hook for the
    /// service layer's `Deposit` command; buyers normally deposit
    /// through [`crate::buyer::BuyerHandle::deposit`]).
    pub fn deposit(&self, account: &str, amount: f64) {
        self.ledger.deposit(account, amount);
    }

    /// The ledger (read access for snapshots / durability digests: the
    /// service layer enumerates balances and open escrow holds).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// A seller-facing handle.
    pub fn seller(&self, name: &str) -> SellerHandle<'_> {
        self.enroll(name, "seller");
        SellerHandle::new(self, name)
    }

    /// A buyer-facing handle.
    pub fn buyer(&self, name: &str) -> BuyerHandle<'_> {
        self.enroll(name, "buyer");
        BuyerHandle::new(self, name)
    }

    /// The metadata engine (read access for discovery tooling).
    pub fn metadata(&self) -> &MetadataEngine {
        &self.metadata
    }

    /// The audit log.
    pub fn audit_log(&self) -> &AuditLog {
        &self.audit
    }

    /// The dispute manager.
    pub fn disputes(&self) -> &DisputeManager {
        &self.disputes
    }

    /// Ledger balance of any account.
    pub fn balance(&self, account: &str) -> f64 {
        self.ledger.balance(account)
    }

    /// All settled transactions.
    pub fn transactions(&self) -> Vec<TransactionRecord> {
        self.transactions.lock().clone()
    }

    /// Fetch an offer (O(log n) in the id-keyed offer book).
    pub fn offer(&self, id: u64) -> Option<Offer> {
        self.offers.lock().get(&id).cloned()
    }

    /// All offers (cloned snapshot, in id order).
    pub fn offers(&self) -> Vec<Offer> {
        self.offers.lock().values().cloned().collect()
    }

    /// All deliveries (cloned snapshot).
    pub fn deliveries(&self) -> Vec<Delivery> {
        self.deliveries.lock().clone()
    }

    /// Deliveries awaiting an ex post report: `(offer, delivery, buyer)`.
    pub fn awaiting_reports(&self) -> Vec<(u64, u64, String)> {
        self.offers
            .lock()
            .values()
            .filter_map(|o| match o.state {
                OfferState::AwaitingReport { delivery } => {
                    Some((o.id, delivery, o.wtp.buyer.clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// Submit a WTP offer for a declared purpose.
    pub fn submit_wtp_for_purpose(
        &self,
        wtp: WtpFunction,
        purpose: impl Into<String>,
    ) -> MarketResult<u64> {
        self.check_submittable(&wtp.buyer)?;
        let id = self.next_offer.fetch_add(1, Ordering::Relaxed);
        self.insert_offer(id, wtp, purpose.into());
        Ok(id)
    }

    /// Submit a WTP offer under a **caller-assigned** offer id. Sharded
    /// deployments use this to hand out *globally unique* ids across
    /// shards: the per-offer RNG stream that breaks candidate ties is
    /// derived from `(round_seed, offer_id)`, so ids must not depend on
    /// which shard an offer landed on if an M-shard market is to clear
    /// exactly like the 1-shard market. The id must be unused; the
    /// market's own id allocator is bumped past it so mixed explicit /
    /// automatic submission stays collision-free.
    pub fn submit_wtp_with_id(
        &self,
        id: u64,
        wtp: WtpFunction,
        purpose: impl Into<String>,
    ) -> MarketResult<u64> {
        self.check_submittable(&wtp.buyer)?;
        if self.offers.lock().contains_key(&id) {
            return Err(MarketError::Invalid(format!("offer id {id} already taken")));
        }
        self.next_offer.fetch_max(id + 1, Ordering::Relaxed);
        self.insert_offer(id, wtp, purpose.into());
        Ok(id)
    }

    /// Shared submission guard: the buyer must be enrolled and not
    /// currently excluded.
    fn check_submittable(&self, buyer: &str) -> MarketResult<()> {
        let current_round = self.round();
        let participants = self.participants.lock();
        let p = participants
            .get(buyer)
            .ok_or_else(|| MarketError::UnknownParticipant(buyer.to_string()))?;
        if p.excluded_until > current_round {
            return Err(MarketError::Invalid(format!(
                "{buyer} is excluded until round {}",
                p.excluded_until
            )));
        }
        Ok(())
    }

    fn insert_offer(&self, id: u64, wtp: WtpFunction, purpose: String) {
        let at = self.tick();
        self.audit.record(AuditEvent::WtpSubmitted {
            offer: id,
            buyer: wtp.buyer.clone(),
        });
        self.offers.lock().insert(
            id,
            Offer {
                id,
                wtp,
                purpose,
                submitted_at: at,
                state: OfferState::Pending,
            },
        );
    }

    /// Submit with the default "analytics" purpose.
    pub fn submit_wtp(&self, wtp: WtpFunction) -> MarketResult<u64> {
        self.submit_wtp_for_purpose(wtp, "analytics")
    }

    /// Execute one full market round through the default arbiter
    /// pipeline (expiry → candidates → clearing → settlement).
    pub fn run_round(&self) -> RoundReport {
        self.run_round_with(&pipeline::default_pipeline())
    }

    /// Execute one market round through a custom stage list (see
    /// [`crate::arbiter::pipeline`] for the available stages and the
    /// contract between them).
    pub fn run_round_with(&self, stages: &[Box<dyn RoundStage>]) -> RoundReport {
        let mut ctx = pipeline::RoundContext::open(self);
        for stage in stages {
            pipeline::run_stage_timed(stage.as_ref(), self, &mut ctx);
        }
        ctx.finish(self)
    }

    /// **Phase 1** of a two-phase (cross-shard) round: open the round
    /// under an externally-supplied seed and run expiry + candidate
    /// generation, but do **not** clear or settle. The returned context
    /// carries the candidate bids ([`pipeline::RoundContext::candidate_set`])
    /// for a global clearing pass; hand the context back to
    /// [`DataMarket::settle_sale`] / [`DataMarket::close_round`] to
    /// finish the round. The seed replaces the market's own RNG draw so
    /// every shard of a deployment ties-breaks from one coordinated
    /// stream keyed by global offer ids.
    pub fn begin_round_seeded(&self, round_seed: u64) -> pipeline::RoundContext {
        let mut ctx = pipeline::RoundContext::open_seeded(self, round_seed);
        pipeline::run_stage_timed(&pipeline::ExpiryStage, self, &mut ctx);
        pipeline::run_stage_timed(&pipeline::CandidateStage::default(), self, &mut ctx);
        ctx
    }

    /// [`DataMarket::begin_round_seeded`], additionally capturing the
    /// complete candidate-phase outcome as a
    /// [`pipeline::CandidatePhaseExport`]: what a shard worker computes
    /// and ships to the settlement coordinator. The export carries the
    /// winning mashups (relations included — revenue allocation needs
    /// them) and the audit events the candidate stage recorded, so a
    /// peer holding the same pre-round state can adopt the phase via
    /// [`DataMarket::begin_round_imported`] and end up bit-identical.
    pub fn begin_round_exported(
        &self,
        round_seed: u64,
    ) -> (pipeline::RoundContext, pipeline::CandidatePhaseExport) {
        let mut ctx = pipeline::RoundContext::open_seeded(self, round_seed);
        pipeline::run_stage_timed(&pipeline::ExpiryStage, self, &mut ctx);
        let audit_mark = self.audit.len() as u64;
        pipeline::run_stage_timed(&pipeline::CandidateStage::default(), self, &mut ctx);
        let export = pipeline::CandidatePhaseExport {
            round: ctx.round,
            bids: ctx.bids.clone(),
            best_mashups: ctx
                .best_mashups
                .iter()
                .map(|(id, m)| (*id, m.clone()))
                .collect(),
            missing: ctx.missing.clone(),
            negotiations: ctx.negotiations.clone(),
            audit_events: self.audit.events_since(audit_mark),
        };
        (ctx, export)
    }

    /// Adopt a candidate phase computed elsewhere: open the round under
    /// the coordinated seed, run expiry **locally** (it is a pure
    /// function of the local offer book and clock, and both replicas
    /// hold the same pre-round state), replay the exported audit
    /// events, and install the exported bids/mashups/negotiations. The
    /// resulting market state and context are bit-identical to having
    /// run [`DataMarket::begin_round_exported`] locally.
    pub fn begin_round_imported(
        &self,
        round_seed: u64,
        export: &pipeline::CandidatePhaseExport,
    ) -> pipeline::RoundContext {
        let mut ctx = pipeline::RoundContext::open_seeded(self, round_seed);
        pipeline::run_stage_timed(&pipeline::ExpiryStage, self, &mut ctx);
        for event in &export.audit_events {
            self.audit.record(event.clone());
        }
        ctx.bids = export.bids.clone();
        ctx.best_mashups = export.best_mashups.iter().cloned().collect();
        ctx.missing = export.missing.clone();
        ctx.negotiations = export.negotiations.clone();
        ctx
    }

    /// **Phase 2** (per cleared sale): settle one externally-cleared
    /// sale into this market — ex ante payment or ex post delivery,
    /// exactly as [`pipeline::SettlementStage`] would. The sale's offer
    /// must live on this market (its winning mashup is looked up in the
    /// context); sales without a recorded mashup are ignored.
    pub fn settle_sale(
        &self,
        ctx: &mut pipeline::RoundContext,
        sale: crate::arbiter::pricing::Sale,
    ) {
        pipeline::SettlementStage::settle_one(self, ctx, sale);
    }

    /// [`DataMarket::settle_sale`] with an optional precomputed
    /// [`pipeline::SettlementPlan`] — the commit half of conflict-graph
    /// parallel settlement. Plans may be computed concurrently (they
    /// never read commit-mutated state); commits must arrive here in
    /// global offer-id order.
    pub fn settle_sale_planned(
        &self,
        ctx: &mut pipeline::RoundContext,
        sale: crate::arbiter::pricing::Sale,
        plan: Option<&pipeline::SettlementPlan>,
    ) {
        pipeline::SettlementStage::settle_one_planned(self, ctx, sale, plan);
    }

    /// **Phase 3**: close a two-phase round — publish negotiation and
    /// demand state and produce the round report.
    pub fn close_round(&self, ctx: pipeline::RoundContext) -> RoundReport {
        ctx.finish(self)
    }

    pub(crate) fn set_offer_state(&self, id: u64, state: OfferState) {
        if let Some(o) = self.offers.lock().get_mut(&id) {
            o.state = state;
        }
    }

    /// The license attached to a dataset (Standard when unset).
    pub fn license_of(&self, dataset: DatasetId) -> License {
        self.licenses
            .lock()
            .get(&dataset)
            .cloned()
            .unwrap_or_default()
    }

    /// Negotiation requests from the most recent round (§4.1): what the
    /// arbiter would ask sellers to complete. Sellers respond via
    /// `SellerHandle::annotate` / `publish_mapping_table`.
    pub fn negotiation_requests(&self) -> Vec<NegotiationRequest> {
        self.last_negotiations.lock().clone()
    }

    /// The demand report from the most recent round (§7.1 opportunities).
    pub fn demand_report(&self) -> DemandReport {
        let missing = self.last_missing.lock();
        demand_report(missing.iter().map(|v| v.as_slice()))
    }

    /// Item-based CF recommendations for a buyer.
    pub fn recommendations(&self, buyer: &str, k: usize) -> Vec<DatasetId> {
        crate::arbiter::services::recommend(&self.purchases.lock(), buyer, k)
    }

    /// Capture this shard's private state for a materialized snapshot.
    /// Shared substrate state is exported separately via
    /// [`MarketSubstrate::export_state`].
    pub fn export_shard_state(&self) -> MarketShardState {
        MarketShardState {
            clock: self.clock.load(Ordering::SeqCst),
            round: self.round_counter.load(Ordering::SeqCst),
            next_offer: self.next_offer.load(Ordering::SeqCst),
            next_tx: self.next_tx.load(Ordering::SeqCst),
            next_delivery: self.next_delivery.load(Ordering::SeqCst),
            offers: self.offers(),
            transactions: self.transactions.lock().clone(),
            deliveries: self.deliveries.lock().clone(),
            purchases: self.purchases.lock().clone(),
            participants: self.participants(),
            last_missing: self.last_missing.lock().clone(),
            last_negotiations: self.last_negotiations.lock().clone(),
            rng: self.rng.lock().state(),
            audit_events: self.audit.entries().into_iter().map(|e| e.event).collect(),
            disputes: (0..).map_while(|i| self.disputes.get(i)).collect(),
        }
    }

    /// Restore a shard's private state from a previously exported
    /// image. The market must be freshly constructed: the audit chain
    /// and dispute log are append-only, so this replays their events
    /// into the empty structures rather than overwriting.
    pub fn restore_shard_state(&self, state: MarketShardState) {
        self.clock.store(state.clock, Ordering::SeqCst);
        self.round_counter.store(state.round, Ordering::SeqCst);
        self.next_offer.store(state.next_offer, Ordering::SeqCst);
        self.next_tx.store(state.next_tx, Ordering::SeqCst);
        self.next_delivery
            .store(state.next_delivery, Ordering::SeqCst);
        *self.offers.lock() = state.offers.into_iter().map(|o| (o.id, o)).collect();
        *self.transactions.lock() = state.transactions;
        *self.deliveries.lock() = state.deliveries;
        *self.purchases.lock() = state.purchases;
        *self.participants.lock() = state
            .participants
            .into_iter()
            .map(|p| (p.name.clone(), p))
            .collect();
        *self.last_missing.lock() = state.last_missing;
        *self.last_negotiations.lock() = state.last_negotiations;
        *self.rng.lock() = rand::rngs::StdRng::from_state(state.rng);
        for event in state.audit_events {
            self.audit.record(event);
        }
        for d in state.disputes {
            let id = self.disputes.open(d.complainant, d.tx, d.reason);
            debug_assert_eq!(id, d.id, "dispute ids are dense from 0");
            if let crate::trust::DisputeState::Resolved { refund } = d.state {
                self.disputes.resolve(id, refund);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_mechanism::design::MarketDesign;
    use dmp_mechanism::wtp::PriceCurve;

    fn simple_market() -> DataMarket {
        let config =
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0));
        DataMarket::new(config)
    }

    #[test]
    fn unknown_buyer_rejected() {
        let market = simple_market();
        let wtp = WtpFunction::simple("ghost", ["k"], PriceCurve::Constant(1.0));
        assert!(matches!(
            market.submit_wtp(wtp),
            Err(MarketError::UnknownParticipant(_))
        ));
    }

    #[test]
    fn offer_book_is_id_keyed() {
        let market = simple_market();
        let _ = market.buyer("b");
        let ids: Vec<u64> = (0..5)
            .map(|i| {
                market
                    .submit_wtp(WtpFunction::simple(
                        "b",
                        ["k"],
                        PriceCurve::Constant(1.0 + i as f64),
                    ))
                    .unwrap()
            })
            .collect();
        // Point lookups hit the exact offer.
        for &id in &ids {
            assert_eq!(market.offer(id).unwrap().id, id);
        }
        assert!(market.offer(999).is_none());
        // State updates address by id, not by position.
        market.set_offer_state(ids[3], OfferState::Expired);
        assert_eq!(market.offer(ids[3]).unwrap().state, OfferState::Expired);
        assert_eq!(market.offer(ids[2]).unwrap().state, OfferState::Pending);
        // Snapshots come back in id order.
        let snapshot: Vec<u64> = market.offers().iter().map(|o| o.id).collect();
        assert_eq!(snapshot, ids);
    }
}
