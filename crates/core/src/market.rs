//! The [`DataMarket`]: one deployable DMMS instance (Fig. 1 (4), Fig. 2)
//! wired to a plug'n'play [`MarketDesign`]. Internal, external and barter
//! markets are the same platform with different configs (§3.3).
//!
//! A market round (`run_round`) executes the full arbiter pipeline:
//! pending WTP offers → mashup builder → WTP-evaluator → pricing engine →
//! transaction support → revenue allocation engine, with licensing,
//! reserves, contextual integrity, privacy accounting, lineage and the
//! audit chain enforced along the way.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::Rng;
use rand::SeedableRng;

use dmp_discovery::{LineageEvent, LineageLog, MetadataEngine};
use dmp_mechanism::design::MarketDesign;
use dmp_mechanism::elicitation::ElicitationProtocol;
use dmp_mechanism::wtp::WtpFunction;
use dmp_privacy::PrivacyBudget;
use dmp_relation::{DatasetId, Relation};
use dmp_valuation::sharing::DatasetShare;

use crate::arbiter::ledger::Ledger;
use crate::arbiter::mashup_builder::{build_mashups, BuiltMashup};
use crate::arbiter::pricing::{clear, RoundBid, Sale};
use crate::arbiter::revenue::dataset_shares;
use crate::arbiter::services::{demand_report, DemandReport, Purchase};
use crate::arbiter::wtp_evaluator::evaluate;
use crate::buyer::BuyerHandle;
use crate::currency::Currency;
use crate::error::{MarketError, MarketResult};
use crate::license::{ContextualIntegrityPolicy, License};
use crate::seller::SellerHandle;
use crate::trust::{AuditEvent, AuditLog, DisputeManager};

/// Market deployment flavor (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketKind {
    /// Within one organization; welfare goal, bonus points.
    Internal,
    /// Across organizations; revenue goal, money.
    External,
    /// Data-for-data economies; credits earned by sharing.
    Barter,
}

/// Full market configuration.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Deployment flavor.
    pub kind: MarketKind,
    /// The plugged-in market design (Fig. 1 (2)).
    pub design: MarketDesign,
    /// Incentive denomination.
    pub currency: Currency,
    /// Seed for audit draws and other market-side randomness.
    pub seed: u64,
    /// Candidate mashups considered per offer per round.
    pub max_candidates: usize,
    /// Platform-minted reward paid to contributing sellers per
    /// transaction regardless of the price (the §3.3 bonus-point
    /// incentive for internal markets where buyers pay nothing).
    pub contribution_reward: f64,
}

impl MarketConfig {
    /// Internal market preset: welfare design + bonus points.
    pub fn internal() -> Self {
        MarketConfig {
            kind: MarketKind::Internal,
            design: MarketDesign::internal_welfare(),
            currency: Currency::BonusPoints,
            seed: 7,
            max_candidates: 4,
            contribution_reward: 10.0,
        }
    }

    /// External market preset: revenue design + money.
    pub fn external(seed: u64) -> Self {
        MarketConfig {
            kind: MarketKind::External,
            design: MarketDesign::external_revenue(seed),
            currency: Currency::Money,
            seed,
            max_candidates: 4,
            contribution_reward: 0.0,
        }
    }

    /// Barter market preset: transactions goal + data credits.
    pub fn barter() -> Self {
        MarketConfig {
            kind: MarketKind::Barter,
            design: MarketDesign::posted_price_baseline(5.0),
            currency: Currency::DataCredits,
            seed: 7,
            max_candidates: 4,
            contribution_reward: 5.0,
        }
    }

    /// Replace the design (plug'n'play).
    pub fn with_design(mut self, design: MarketDesign) -> Self {
        self.design = design;
        self
    }
}

/// Offer lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum OfferState {
    /// Awaiting a satisfying mashup / clearing.
    Pending,
    /// Fulfilled by a transaction.
    Fulfilled {
        /// Settling transaction id.
        tx: u64,
    },
    /// Delivered, awaiting the buyer's ex post report.
    AwaitingReport {
        /// Delivery id.
        delivery: u64,
    },
    /// Expired unserved.
    Expired,
}

/// A submitted WTP offer.
#[derive(Debug, Clone)]
pub struct Offer {
    /// Offer id.
    pub id: u64,
    /// The WTP-function.
    pub wtp: WtpFunction,
    /// Declared purpose (checked against contextual-integrity policies).
    pub purpose: String,
    /// Logical submission time.
    pub submitted_at: u64,
    /// Lifecycle state.
    pub state: OfferState,
}

/// A settled transaction.
#[derive(Debug, Clone)]
pub struct TransactionRecord {
    /// Transaction id.
    pub id: u64,
    /// The fulfilled offer.
    pub offer_id: u64,
    /// Buyer principal.
    pub buyer: String,
    /// Price paid (including license uplift).
    pub price: f64,
    /// Arbiter fee retained.
    pub fee: f64,
    /// Satisfaction delivered.
    pub satisfaction: f64,
    /// Contributing datasets.
    pub datasets: Vec<DatasetId>,
    /// Revenue shares distributed to datasets.
    pub shares: Vec<DatasetShare>,
    /// Round in which the sale cleared.
    pub round: u64,
}

/// An ex post delivery awaiting (or past) the buyer's value report.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Delivery id.
    pub id: u64,
    /// The offer it serves.
    pub offer_id: u64,
    /// Buyer principal.
    pub buyer: String,
    /// The delivered mashup.
    pub relation: Relation,
    /// Arbiter-measured satisfaction (used for audits).
    pub satisfaction: f64,
    /// Escrowed deposit id.
    pub escrow: u64,
    /// Contributing datasets.
    pub datasets: Vec<DatasetId>,
    /// Settlement, once reported.
    pub settlement: Option<Settlement>,
}

/// Outcome of an ex post report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Settlement {
    /// Amount paid for the data (the report, capped by the deposit).
    pub paid: f64,
    /// Penalty charged on detected under-reporting.
    pub penalty: f64,
    /// Whether the report was audited.
    pub audited: bool,
}

/// Per-participant state.
#[derive(Debug, Clone)]
pub struct Participant {
    /// Principal name.
    pub name: String,
    /// Role (matched against contextual-integrity policies).
    pub role: String,
    /// Reputation in [0, 1]; drops on detected misreports.
    pub reputation: f64,
    /// Excluded from submitting offers until this round.
    pub excluded_until: u64,
}

/// What one `run_round` did.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round number.
    pub round: u64,
    /// Offers considered.
    pub considered: usize,
    /// Sales cleared (ex ante settled; ex post delivered).
    pub sales: Vec<Sale>,
    /// Revenue collected this round (ex ante only).
    pub revenue: f64,
    /// Arbiter fees collected.
    pub fees: f64,
    /// Offers expired this round.
    pub expired: usize,
    /// Deliveries created (ex post).
    pub deliveries: Vec<u64>,
    /// Unmet attribute demand (for opportunistic sellers).
    pub unmet: DemandReport,
}

/// A negotiation round request (§4.1): "if the AMS cannot find mashups
/// that fulfill the buyer's needs, it can describe the information it
/// lacks and ask the sellers to complete it."
#[derive(Debug, Clone, PartialEq)]
pub struct NegotiationRequest {
    /// The under-served offer.
    pub offer_id: u64,
    /// Its buyer.
    pub buyer: String,
    /// Attributes the mashup builder could not source.
    pub missing: Vec<String>,
    /// Sellers whose datasets already participate in the best partial
    /// mashup — the ones best placed to annotate or publish mappings.
    pub candidate_sellers: Vec<String>,
}

/// The account name the arbiter accrues fees into.
pub const ARBITER_ACCOUNT: &str = "__arbiter__";

/// The deployed data market.
pub struct DataMarket {
    pub(crate) config: MarketConfig,
    pub(crate) metadata: MetadataEngine,
    pub(crate) lineage: LineageLog,
    pub(crate) privacy: PrivacyBudget,
    pub(crate) ledger: Ledger,
    pub(crate) audit: AuditLog,
    pub(crate) disputes: DisputeManager,
    clock: AtomicU64,
    round: AtomicU64,
    next_offer: AtomicU64,
    next_tx: AtomicU64,
    next_delivery: AtomicU64,
    pub(crate) offers: Mutex<Vec<Offer>>,
    pub(crate) transactions: Mutex<Vec<TransactionRecord>>,
    pub(crate) deliveries: Mutex<Vec<Delivery>>,
    pub(crate) purchases: Mutex<Vec<Purchase>>,
    pub(crate) reserves: Mutex<HashMap<DatasetId, f64>>,
    pub(crate) licenses: Mutex<HashMap<DatasetId, License>>,
    pub(crate) ci_policies: Mutex<HashMap<DatasetId, ContextualIntegrityPolicy>>,
    pub(crate) exclusive_holds: Mutex<HashMap<DatasetId, (String, u64)>>,
    pub(crate) participants: Mutex<HashMap<String, Participant>>,
    last_missing: Mutex<Vec<Vec<String>>>,
    last_negotiations: Mutex<Vec<NegotiationRequest>>,
    rng: Mutex<rand::rngs::StdRng>,
}

impl DataMarket {
    /// Deploy a market with a configuration.
    pub fn new(config: MarketConfig) -> Self {
        let rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        DataMarket {
            config,
            metadata: MetadataEngine::new(),
            lineage: LineageLog::new(),
            privacy: PrivacyBudget::new(),
            ledger: Ledger::new(),
            audit: AuditLog::new(),
            disputes: DisputeManager::new(),
            clock: AtomicU64::new(0),
            round: AtomicU64::new(0),
            next_offer: AtomicU64::new(0),
            next_tx: AtomicU64::new(0),
            next_delivery: AtomicU64::new(0),
            offers: Mutex::new(Vec::new()),
            transactions: Mutex::new(Vec::new()),
            deliveries: Mutex::new(Vec::new()),
            purchases: Mutex::new(Vec::new()),
            reserves: Mutex::new(HashMap::new()),
            licenses: Mutex::new(HashMap::new()),
            ci_policies: Mutex::new(HashMap::new()),
            exclusive_holds: Mutex::new(HashMap::new()),
            participants: Mutex::new(HashMap::new()),
            last_missing: Mutex::new(Vec::new()),
            last_negotiations: Mutex::new(Vec::new()),
            rng: Mutex::new(rng),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// Logical time (monotone).
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    pub(crate) fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Completed rounds.
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// Enroll a participant with a role; grants enrollment funds.
    pub fn enroll(&self, name: impl Into<String>, role: impl Into<String>) {
        let name = name.into();
        let grant = self.config.currency.enrollment_grant();
        if grant > 0.0 {
            self.ledger.deposit(&name, grant);
        }
        self.participants.lock().entry(name.clone()).or_insert(Participant {
            name,
            role: role.into(),
            reputation: 1.0,
            excluded_until: 0,
        });
    }

    /// Participant lookup.
    pub fn participant(&self, name: &str) -> Option<Participant> {
        self.participants.lock().get(name).cloned()
    }

    /// A seller-facing handle.
    pub fn seller(&self, name: &str) -> SellerHandle<'_> {
        self.enroll(name, "seller");
        SellerHandle::new(self, name)
    }

    /// A buyer-facing handle.
    pub fn buyer(&self, name: &str) -> BuyerHandle<'_> {
        self.enroll(name, "buyer");
        BuyerHandle::new(self, name)
    }

    /// The metadata engine (read access for discovery tooling).
    pub fn metadata(&self) -> &MetadataEngine {
        &self.metadata
    }

    /// The audit log.
    pub fn audit_log(&self) -> &AuditLog {
        &self.audit
    }

    /// The dispute manager.
    pub fn disputes(&self) -> &DisputeManager {
        &self.disputes
    }

    /// Ledger balance of any account.
    pub fn balance(&self, account: &str) -> f64 {
        self.ledger.balance(account)
    }

    /// All settled transactions.
    pub fn transactions(&self) -> Vec<TransactionRecord> {
        self.transactions.lock().clone()
    }

    /// Fetch an offer.
    pub fn offer(&self, id: u64) -> Option<Offer> {
        self.offers.lock().iter().find(|o| o.id == id).cloned()
    }

    /// All offers (cloned snapshot).
    pub fn offers(&self) -> Vec<Offer> {
        self.offers.lock().clone()
    }

    /// All deliveries (cloned snapshot).
    pub fn deliveries(&self) -> Vec<Delivery> {
        self.deliveries.lock().clone()
    }

    /// Deliveries awaiting an ex post report: `(offer, delivery, buyer)`.
    pub fn awaiting_reports(&self) -> Vec<(u64, u64, String)> {
        self.offers
            .lock()
            .iter()
            .filter_map(|o| match o.state {
                OfferState::AwaitingReport { delivery } => {
                    Some((o.id, delivery, o.wtp.buyer.clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// Submit a WTP offer for a declared purpose.
    pub fn submit_wtp_for_purpose(
        &self,
        wtp: WtpFunction,
        purpose: impl Into<String>,
    ) -> MarketResult<u64> {
        let buyer = wtp.buyer.clone();
        let current_round = self.round();
        {
            let participants = self.participants.lock();
            let p = participants
                .get(&buyer)
                .ok_or_else(|| MarketError::UnknownParticipant(buyer.clone()))?;
            if p.excluded_until > current_round {
                return Err(MarketError::Invalid(format!(
                    "{buyer} is excluded until round {}",
                    p.excluded_until
                )));
            }
        }
        let id = self.next_offer.fetch_add(1, Ordering::Relaxed);
        let at = self.tick();
        self.audit.record(AuditEvent::WtpSubmitted { offer: id, buyer });
        self.offers.lock().push(Offer {
            id,
            wtp,
            purpose: purpose.into(),
            submitted_at: at,
            state: OfferState::Pending,
        });
        Ok(id)
    }

    /// Submit with the default "analytics" purpose.
    pub fn submit_wtp(&self, wtp: WtpFunction) -> MarketResult<u64> {
        self.submit_wtp_for_purpose(wtp, "analytics")
    }

    /// Is a mashup's dataset set admissible for this buyer/offer?
    fn admissible(&self, mashup: &BuiltMashup, offer: &Offer, now: u64, round: u64) -> bool {
        let buyer_role = self
            .participants
            .lock()
            .get(&offer.wtp.buyer)
            .map(|p| p.role.clone())
            .unwrap_or_default();
        let licenses = self.licenses.lock();
        let holds = self.exclusive_holds.lock();
        let policies = self.ci_policies.lock();
        for &d in &mashup.datasets {
            let entry = match self.metadata.get(d) {
                Some(e) => e,
                None => return false,
            };
            if !offer
                .wtp
                .constraints
                .admits_dataset(entry.registered_at, &entry.owner, now)
            {
                return false;
            }
            if let Some((holder, until)) = holds.get(&d) {
                if *until >= round && holder != &offer.wtp.buyer {
                    return false; // exclusively held by someone else
                }
            }
            if let Some(policy) = policies.get(&d) {
                if !policy.permits(&buyer_role, &offer.purpose) {
                    return false;
                }
            }
            let _ = licenses.get(&d); // license checked at pricing time
        }
        true
    }

    /// License multiplier for a dataset set: the max of individual
    /// multipliers (one exclusive dataset taxes the whole mashup).
    fn license_multiplier(&self, datasets: &[DatasetId]) -> f64 {
        let licenses = self.licenses.lock();
        datasets
            .iter()
            .map(|d| licenses.get(d).cloned().unwrap_or_default().price_multiplier())
            .fold(1.0, f64::max)
    }

    fn reserve_floor(&self, datasets: &[DatasetId]) -> f64 {
        let reserves = self.reserves.lock();
        datasets.iter().map(|d| reserves.get(d).copied().unwrap_or(0.0)).sum()
    }

    /// Execute one full market round.
    pub fn run_round(&self) -> RoundReport {
        let round = self.round.fetch_add(1, Ordering::Relaxed) + 1;
        let now = self.tick();

        // Phase 1: build + evaluate candidate mashups per pending offer.
        let pending: Vec<Offer> = self
            .offers
            .lock()
            .iter()
            .filter(|o| o.state == OfferState::Pending)
            .cloned()
            .collect();
        let considered = pending.len();

        let mut bids: Vec<RoundBid> = Vec::new();
        let mut best_mashups: HashMap<u64, BuiltMashup> = HashMap::new();
        let mut missing: Vec<Vec<String>> = Vec::new();
        let mut negotiations: Vec<NegotiationRequest> = Vec::new();
        let mut expired = 0usize;

        for offer in &pending {
            if !offer.wtp.constraints.is_live(now) {
                self.set_offer_state(offer.id, OfferState::Expired);
                expired += 1;
                continue;
            }
            let mashups = build_mashups(&self.metadata, &offer.wtp, self.config.max_candidates);
            // Prefer *viable* candidates: ones whose seller reserve floor
            // the buyer's bid can possibly cover — otherwise a single
            // overpriced dataset would block an offer that an equivalent
            // cheaper mashup could serve. Ties between equally-priced
            // candidates break randomly, so equivalent suppliers share
            // demand instead of the first-registered seller capturing it.
            let mut evaluated: Vec<(BuiltMashup, f64, f64, bool)> = Vec::new();
            for m in mashups {
                if !self.admissible(&m, offer, now, round) {
                    continue;
                }
                let ev = evaluate(&offer.wtp, &m.relation);
                if ev.bid <= 0.0 {
                    continue;
                }
                let mult = self.license_multiplier(&m.datasets).max(1.0);
                let viable = ev.bid * mult + 1e-9 >= self.reserve_floor(&m.datasets);
                evaluated.push((m, ev.satisfaction, ev.bid, viable));
            }
            let any_viable = evaluated.iter().any(|(_, _, _, v)| *v);
            if any_viable {
                evaluated.retain(|(_, _, _, v)| *v);
            }
            let best_bid = evaluated
                .iter()
                .map(|(_, _, b, _)| *b)
                .fold(f64::NEG_INFINITY, f64::max);
            let tied: Vec<usize> = evaluated
                .iter()
                .enumerate()
                .filter(|(_, (_, _, b, _))| (*b - best_bid).abs() < 1e-9)
                .map(|(i, _)| i)
                .collect();
            let best: Option<(BuiltMashup, f64, f64)> = if tied.is_empty() {
                None
            } else {
                let pick = tied[self.rng.lock().gen_range(0..tied.len())];
                let (m, s, b, _) = evaluated.swap_remove(pick);
                Some((m, s, b))
            };
            match best {
                Some((m, satisfaction, bid)) => {
                    self.audit.record(AuditEvent::MashupBuilt {
                        offer: offer.id,
                        datasets: m.datasets.clone(),
                    });
                    if !m.missing.is_empty() {
                        missing.push(m.missing.clone());
                        let mut owners: Vec<String> = m
                            .datasets
                            .iter()
                            .filter_map(|&d| self.metadata.get(d).map(|e| e.owner))
                            .collect();
                        owners.sort();
                        owners.dedup();
                        negotiations.push(NegotiationRequest {
                            offer_id: offer.id,
                            buyer: offer.wtp.buyer.clone(),
                            missing: m.missing.clone(),
                            candidate_sellers: owners,
                        });
                    }
                    bids.push(RoundBid {
                        offer_id: offer.id,
                        buyer: offer.wtp.buyer.clone(),
                        bid,
                        satisfaction,
                        datasets: m.datasets.clone(),
                        reserve_floor: self.reserve_floor(&m.datasets),
                        license_multiplier: self.license_multiplier(&m.datasets),
                    });
                    best_mashups.insert(offer.id, m);
                }
                None => {
                    // Nothing sellable: record the full attribute list as
                    // unmet when no mashup exists at all.
                    missing.push(offer.wtp.attributes.clone());
                    negotiations.push(NegotiationRequest {
                        offer_id: offer.id,
                        buyer: offer.wtp.buyer.clone(),
                        missing: offer.wtp.attributes.clone(),
                        candidate_sellers: Vec::new(),
                    });
                }
            }
        }

        // Phase 2: clear under the market design.
        let sales = clear(&self.config.design, &bids);

        // Phase 3: settle (ex ante) or deliver (ex post).
        let mut revenue = 0.0;
        let mut fees = 0.0;
        let mut deliveries = Vec::new();
        let ex_post = matches!(
            self.config.design.elicitation,
            ElicitationProtocol::ExPost(_)
        );
        let mut completed_sales = Vec::new();
        for sale in sales {
            let mashup = match best_mashups.get(&sale.offer_id) {
                Some(m) => m.clone(),
                None => continue,
            };
            if ex_post {
                match self.deliver_ex_post(&sale, &mashup, round) {
                    Ok(delivery_id) => {
                        deliveries.push(delivery_id);
                        completed_sales.push(sale);
                    }
                    Err(_) => { /* deposit unavailable: offer stays pending */ }
                }
            } else {
                match self.settle(&sale, &mashup, round) {
                    Ok(record) => {
                        revenue += record.price;
                        fees += record.fee;
                        completed_sales.push(sale);
                    }
                    Err(_) => { /* insufficient funds: offer stays pending */ }
                }
            }
        }

        *self.last_missing.lock() = missing.clone();
        *self.last_negotiations.lock() = negotiations;
        RoundReport {
            round,
            considered,
            sales: completed_sales,
            revenue,
            fees,
            expired,
            deliveries,
            unmet: demand_report(missing.iter().map(|v| v.as_slice())),
        }
    }

    fn set_offer_state(&self, id: u64, state: OfferState) {
        if let Some(o) = self.offers.lock().iter_mut().find(|o| o.id == id) {
            o.state = state;
        }
    }

    /// Ex ante settlement: move money, split revenue, record everything.
    fn settle(
        &self,
        sale: &Sale,
        mashup: &BuiltMashup,
        round: u64,
    ) -> MarketResult<TransactionRecord> {
        let fee = sale.price * self.config.design.arbiter_fee.clamp(0.0, 1.0);
        let to_sellers = sale.price - fee;
        let shares = dataset_shares(&self.config.design, &mashup.relation, to_sellers);

        // Atomic-ish: verify funds, then transfer piecewise.
        let escrow = self.ledger.hold(&sale.buyer, sale.price)?;
        if fee > 0.0 {
            self.ledger.release(escrow, ARBITER_ACCOUNT, fee)?;
        }
        for share in &shares {
            let owner = match self.metadata.get(share.dataset) {
                Some(e) => e.owner,
                None => ARBITER_ACCOUNT.to_string(), // provenance-free residual
            };
            self.ledger.release(escrow, &owner, share.amount)?;
        }
        self.ledger.close(escrow)?; // refund rounding residue, if any

        let tx = self.next_tx.fetch_add(1, Ordering::Relaxed);
        let record = TransactionRecord {
            id: tx,
            offer_id: sale.offer_id,
            buyer: sale.buyer.clone(),
            price: sale.price,
            fee,
            satisfaction: sale.satisfaction,
            datasets: mashup.datasets.clone(),
            shares: shares.clone(),
            round,
        };
        self.finish_transaction(&record, mashup, round);

        // Deliver the data as a settled delivery record.
        let delivery_id = self.next_delivery.fetch_add(1, Ordering::Relaxed);
        self.deliveries.lock().push(Delivery {
            id: delivery_id,
            offer_id: sale.offer_id,
            buyer: sale.buyer.clone(),
            relation: mashup.relation.clone(),
            satisfaction: sale.satisfaction,
            escrow: u64::MAX,
            datasets: mashup.datasets.clone(),
            settlement: Some(Settlement { paid: sale.price, penalty: 0.0, audited: false }),
        });
        self.set_offer_state(sale.offer_id, OfferState::Fulfilled { tx });
        self.transactions.lock().push(record.clone());
        Ok(record)
    }

    /// Shared bookkeeping after money moved.
    fn finish_transaction(&self, record: &TransactionRecord, mashup: &BuiltMashup, round: u64) {
        // Platform-minted contribution rewards (bonus points / credits):
        // sellers are compensated even when the design charges buyers
        // nothing, split like the revenue shares would be.
        if self.config.contribution_reward > 0.0 {
            let reward_shares = dataset_shares(
                &self.config.design,
                &mashup.relation,
                self.config.contribution_reward,
            );
            for share in &reward_shares {
                if let Some(e) = self.metadata.get(share.dataset) {
                    self.ledger.deposit(&e.owner, share.amount);
                }
            }
        }
        self.audit.record(AuditEvent::TransactionSettled {
            tx: record.id,
            buyer: record.buyer.clone(),
            price: record.price,
        });
        for share in &record.shares {
            self.lineage.record(
                share.dataset,
                LineageEvent::SoldInMashup {
                    mashup: format!("offer{}", record.offer_id),
                    revenue: share.amount,
                },
            );
        }
        for &d in &mashup.datasets {
            self.lineage.record(
                d,
                LineageEvent::UsedInMashup {
                    mashup: format!("offer{}", record.offer_id),
                    rows_contributed: mashup.relation.len(),
                },
            );
        }
        self.purchases.lock().push(Purchase {
            buyer: record.buyer.clone(),
            datasets: mashup.datasets.clone(),
        });
        // Start exclusivity holds.
        let licenses = self.licenses.lock();
        let mut holds = self.exclusive_holds.lock();
        for &d in &mashup.datasets {
            if let Some(l) = licenses.get(&d) {
                if l.is_exclusive() {
                    holds.insert(d, (record.buyer.clone(), round + l.hold_rounds() as u64));
                }
            }
        }
    }

    /// Ex post delivery: escrow the buyer's declared cap, hand over data.
    fn deliver_ex_post(
        &self,
        sale: &Sale,
        mashup: &BuiltMashup,
        _round: u64,
    ) -> MarketResult<u64> {
        let offer = self
            .offer(sale.offer_id)
            .ok_or(MarketError::UnknownId(sale.offer_id))?;
        let deposit = offer.wtp.max_price().max(sale.price);
        let escrow = self.ledger.hold(&sale.buyer, deposit)?;
        let delivery_id = self.next_delivery.fetch_add(1, Ordering::Relaxed);
        self.deliveries.lock().push(Delivery {
            id: delivery_id,
            offer_id: sale.offer_id,
            buyer: sale.buyer.clone(),
            relation: mashup.relation.clone(),
            satisfaction: sale.satisfaction,
            escrow,
            datasets: mashup.datasets.clone(),
            settlement: None,
        });
        self.set_offer_state(sale.offer_id, OfferState::AwaitingReport { delivery: delivery_id });
        Ok(delivery_id)
    }

    /// Buyer reports the value realized from an ex post delivery; the
    /// market settles, possibly audits, penalizes detected
    /// under-reporting, and distributes revenue.
    pub fn report_value(&self, delivery_id: u64, reported: f64) -> MarketResult<Settlement> {
        let mech = match &self.config.design.elicitation {
            ElicitationProtocol::ExPost(m) => m.clone(),
            ElicitationProtocol::ExAnte => {
                return Err(MarketError::Invalid(
                    "market uses ex ante elicitation; nothing to report".into(),
                ))
            }
        };
        let (offer_id, buyer, satisfaction, escrow, mashup_rel, datasets) = {
            let deliveries = self.deliveries.lock();
            let d = deliveries
                .iter()
                .find(|d| d.id == delivery_id)
                .ok_or(MarketError::UnknownId(delivery_id))?;
            if d.settlement.is_some() {
                return Err(MarketError::Invalid("delivery already settled".into()));
            }
            (
                d.offer_id,
                d.buyer.clone(),
                d.satisfaction,
                d.escrow,
                d.relation.clone(),
                d.datasets.clone(),
            )
        };
        let offer = self.offer(offer_id).ok_or(MarketError::UnknownId(offer_id))?;
        let deposit = self
            .ledger
            .escrow_remaining(escrow)
            .ok_or(MarketError::UnknownId(escrow))?;
        // Reports are capped by the escrowed deposit (the declared cap).
        let reported = reported.max(0.0).min(deposit);

        // Audit: the arbiter re-runs the packaged task (it already knows
        // the measured satisfaction) and compares the implied value.
        let audited = self.rng.lock().gen::<f64>() < mech.audit_prob;
        let true_value = offer.wtp.curve.price(satisfaction);
        let mut penalty = 0.0;
        if audited && reported + 1e-9 < true_value {
            penalty = mech.penalty_mult * (true_value - reported);
            let round = self.round();
            if let Some(p) = self.participants.lock().get_mut(&buyer) {
                p.reputation = (p.reputation * 0.5).max(0.0);
                p.excluded_until = round + mech.exclusion_rounds as u64;
            }
        }
        self.audit.record(AuditEvent::ExPostAudit {
            delivery: delivery_id,
            underreported: penalty > 0.0,
        });

        // Pay from escrow: sellers first, then fee + penalty (capped by
        // what the deposit can still cover).
        let fee_rate = self.config.design.arbiter_fee.clamp(0.0, 1.0);
        let base = reported;
        let to_sellers = base * (1.0 - fee_rate);
        let fee = (base * fee_rate + penalty).min(deposit - to_sellers);
        let shares = dataset_shares(&self.config.design, &mashup_rel, to_sellers);
        for share in &shares {
            let owner = match self.metadata.get(share.dataset) {
                Some(e) => e.owner,
                None => ARBITER_ACCOUNT.to_string(),
            };
            self.ledger.release(escrow, &owner, share.amount)?;
        }
        if fee > 0.0 {
            self.ledger.release(escrow, ARBITER_ACCOUNT, fee)?;
        }
        self.ledger.close(escrow)?;

        let settlement = Settlement { paid: base, penalty, audited };
        let tx = self.next_tx.fetch_add(1, Ordering::Relaxed);
        let record = TransactionRecord {
            id: tx,
            offer_id,
            buyer: buyer.clone(),
            price: base,
            fee,
            satisfaction,
            datasets: datasets.clone(),
            shares,
            round: self.round(),
        };
        let built = BuiltMashup {
            relation: mashup_rel,
            datasets,
            coverage: 1.0,
            confidence: 1.0,
            missing: Vec::new(),
        };
        self.finish_transaction(&record, &built, self.round());
        self.transactions.lock().push(record);
        self.set_offer_state(offer_id, OfferState::Fulfilled { tx });
        if let Some(d) = self.deliveries.lock().iter_mut().find(|d| d.id == delivery_id) {
            d.settlement = Some(settlement);
        }
        Ok(settlement)
    }

    /// The license attached to a dataset (Standard when unset).
    pub fn license_of(&self, dataset: DatasetId) -> License {
        self.licenses.lock().get(&dataset).cloned().unwrap_or_default()
    }

    /// Negotiation requests from the most recent round (§4.1): what the
    /// arbiter would ask sellers to complete. Sellers respond via
    /// `SellerHandle::annotate` / `publish_mapping_table`.
    pub fn negotiation_requests(&self) -> Vec<NegotiationRequest> {
        self.last_negotiations.lock().clone()
    }

    /// The demand report from the most recent round (§7.1 opportunities).
    pub fn demand_report(&self) -> DemandReport {
        let missing = self.last_missing.lock();
        demand_report(missing.iter().map(|v| v.as_slice()))
    }

    /// Item-based CF recommendations for a buyer.
    pub fn recommendations(&self, buyer: &str, k: usize) -> Vec<DatasetId> {
        crate::arbiter::services::recommend(&self.purchases.lock(), buyer, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_mechanism::wtp::PriceCurve;
    use dmp_relation::builder::keyed_rel;

    fn simple_market() -> DataMarket {
        let config = MarketConfig::external(3)
            .with_design(MarketDesign::posted_price_baseline(10.0));
        DataMarket::new(config)
    }

    #[test]
    fn end_to_end_posted_price_sale() {
        let market = simple_market();
        let seller = market.seller("s1");
        let id = seller
            .share(keyed_rel("inventory", &[(1, "widget"), (2, "gadget")]))
            .unwrap();
        let buyer = market.buyer("b1");
        buyer.deposit(100.0);
        let wtp = WtpFunction::simple("b1", ["k", "v"], PriceCurve::Constant(25.0));
        market.submit_wtp(wtp).unwrap();

        let report = market.run_round();
        assert_eq!(report.sales.len(), 1);
        assert_eq!(report.revenue, 10.0); // posted price
        assert!(market.balance("b1") < 100.0);
        assert!(market.balance("s1") > 0.0);
        // conservation: all money accounted for
        assert!((market.ledger.total_supply() - 100.0).abs() < 1e-9);
        // lineage recorded
        assert!(market.lineage.total_revenue(id) > 0.0);
        // audit chain intact
        assert!(market.audit_log().verify_chain());
    }

    #[test]
    fn unfunded_buyer_cannot_settle() {
        let market = simple_market();
        market.seller("s1").share(keyed_rel("t", &[(1, "x")])).unwrap();
        let _buyer = market.buyer("broke");
        let wtp = WtpFunction::simple("broke", ["k"], PriceCurve::Constant(50.0));
        market.submit_wtp(wtp).unwrap();
        let report = market.run_round();
        assert!(report.sales.is_empty());
        // offer remains pending for when funds arrive
        assert_eq!(market.offer(0).unwrap().state, OfferState::Pending);
    }

    #[test]
    fn unknown_buyer_rejected() {
        let market = simple_market();
        let wtp = WtpFunction::simple("ghost", ["k"], PriceCurve::Constant(1.0));
        assert!(matches!(
            market.submit_wtp(wtp),
            Err(MarketError::UnknownParticipant(_))
        ));
    }

    #[test]
    fn internal_market_trades_for_free() {
        let market = DataMarket::new(MarketConfig::internal());
        market.seller("teamA").share(keyed_rel("t", &[(1, "x")])).unwrap();
        let _buyer = market.buyer("teamB"); // bonus-point grant
        let wtp = WtpFunction::simple("teamB", ["k", "v"], PriceCurve::Constant(5.0));
        market.submit_wtp(wtp).unwrap();
        let report = market.run_round();
        assert_eq!(report.sales.len(), 1);
        assert_eq!(report.revenue, 0.0, "internal welfare design charges nothing");
    }

    #[test]
    fn expired_offers_are_dropped() {
        let market = simple_market();
        market.seller("s").share(keyed_rel("t", &[(1, "x")])).unwrap();
        let b = market.buyer("b");
        b.deposit(50.0);
        let mut wtp = WtpFunction::simple("b", ["k"], PriceCurve::Constant(20.0));
        wtp.constraints.expires_at = Some(0); // expires immediately
        let id = market.submit_wtp(wtp).unwrap();
        let report = market.run_round();
        assert_eq!(report.expired, 1);
        assert_eq!(market.offer(id).unwrap().state, OfferState::Expired);
    }

    #[test]
    fn demand_report_lists_unmet_attributes() {
        let market = simple_market();
        market.seller("s").share(keyed_rel("t", &[(1, "x")])).unwrap();
        let b = market.buyer("b");
        b.deposit(50.0);
        let wtp = WtpFunction::simple("b", ["nonexistent_attr"], PriceCurve::Constant(20.0));
        market.submit_wtp(wtp).unwrap();
        let report = market.run_round();
        assert!(report
            .unmet
            .missing_attributes
            .iter()
            .any(|(a, _)| a == "nonexistent_attr"));
    }

    #[test]
    fn reserve_price_blocks_underpriced_sale() {
        let market = simple_market(); // posted price 10
        let seller = market.seller("s1");
        let id = seller.share(keyed_rel("t", &[(1, "x")])).unwrap();
        seller.set_reserve(id, 15.0).unwrap();
        let b = market.buyer("b");
        b.deposit(100.0);
        market
            .submit_wtp(WtpFunction::simple("b", ["k", "v"], PriceCurve::Constant(30.0)))
            .unwrap();
        let report = market.run_round();
        assert!(report.sales.is_empty(), "posted 10 < reserve 15");
    }

    #[test]
    fn rounds_advance() {
        let market = simple_market();
        assert_eq!(market.round(), 0);
        market.run_round();
        market.run_round();
        assert_eq!(market.round(), 2);
    }
}
