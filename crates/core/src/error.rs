//! Error type for the DMMS.

use std::fmt;

use dmp_relation::{DatasetId, RelError};

/// Result alias for market operations.
pub type MarketResult<T> = Result<T, MarketError>;

/// Errors surfaced by the market platform.
#[derive(Debug, Clone, PartialEq)]
pub enum MarketError {
    /// Underlying relational error.
    Relation(RelError),
    /// Referenced dataset is not registered.
    UnknownDataset(DatasetId),
    /// Referenced participant has no account.
    UnknownParticipant(String),
    /// Referenced offer/transaction/delivery id is unknown.
    UnknownId(u64),
    /// Buyer lacks funds for a payment.
    InsufficientFunds {
        /// Account name.
        account: String,
        /// Required amount.
        needed: f64,
        /// Available amount.
        available: f64,
    },
    /// A credit would overflow the ledger's integer micro-credit
    /// storage. The operation is refused with **no state change** —
    /// silently clamping would break the conservation invariant
    /// (`total_supply == sum of deposits`) without any caller noticing.
    BalanceOverflow {
        /// The account (or escrow) whose balance would overflow.
        account: String,
    },
    /// A license forbids the attempted operation.
    LicenseViolation(String),
    /// The seller platform refused a registration (e.g. PII found).
    RegistrationRefused(String),
    /// Privacy budget exhausted or missing.
    PrivacyBudget(String),
    /// No mashup could satisfy the WTP-function.
    NoMashup,
    /// The offer expired before it could be served.
    OfferExpired(u64),
    /// Generic invalid argument.
    Invalid(String),
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::Relation(e) => write!(f, "relation error: {e}"),
            MarketError::UnknownDataset(d) => write!(f, "unknown dataset {d}"),
            MarketError::UnknownParticipant(p) => write!(f, "unknown participant {p}"),
            MarketError::UnknownId(i) => write!(f, "unknown id {i}"),
            MarketError::InsufficientFunds {
                account,
                needed,
                available,
            } => write!(
                f,
                "insufficient funds in {account}: need {needed}, have {available}"
            ),
            MarketError::BalanceOverflow { account } => {
                write!(f, "balance overflow in {account}: credit refused")
            }
            MarketError::LicenseViolation(m) => write!(f, "license violation: {m}"),
            MarketError::RegistrationRefused(m) => write!(f, "registration refused: {m}"),
            MarketError::PrivacyBudget(m) => write!(f, "privacy budget: {m}"),
            MarketError::NoMashup => write!(f, "no mashup satisfies the WTP-function"),
            MarketError::OfferExpired(id) => write!(f, "offer {id} expired"),
            MarketError::Invalid(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for MarketError {}

impl From<RelError> for MarketError {
    fn from(e: RelError) -> Self {
        MarketError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_specifics() {
        let e = MarketError::InsufficientFunds {
            account: "b1".into(),
            needed: 10.0,
            available: 2.0,
        };
        let s = e.to_string();
        assert!(s.contains("b1") && s.contains("10") && s.contains('2'));
    }

    #[test]
    fn from_rel_error() {
        let e: MarketError = RelError::UnknownColumn("x".into()).into();
        assert!(matches!(e, MarketError::Relation(_)));
    }
}
