//! The Seller Management Platform (§4.2): "communicates with the AMS to
//! share datasets and receive profit, to coordinate private data release
//! procedures, as well as to agree on changes to the dataset that may
//! improve the seller's chances of participating in a profitable
//! transaction."

use dmp_discovery::LineageEvent;
use dmp_integration::mapping::{mapping_table, Mapping};
use dmp_privacy::anonymize::k_anonymize;
use dmp_privacy::dp::{perturb_numeric_column, DpParams};
use dmp_privacy::pii::detect_pii;
use dmp_relation::{DatasetId, Relation};
use rand::SeedableRng;

use crate::error::{MarketError, MarketResult};
use crate::license::{ContextualIntegrityPolicy, License};
use crate::market::DataMarket;
use crate::trust::AuditEvent;

/// What the seller sees about one of their datasets (accountability,
/// §4.2: "track how their datasets are being sold in the market").
#[derive(Debug, Clone)]
pub struct AccountabilityReport {
    /// The dataset.
    pub dataset: DatasetId,
    /// Mashups (by offer label) the dataset participated in.
    pub mashups: Vec<String>,
    /// Total revenue earned.
    pub revenue: f64,
    /// Privacy budget spent on releases.
    pub privacy_spent: f64,
    /// Raw lineage events.
    pub events: Vec<LineageEvent>,
}

/// Seller-facing handle onto a market.
pub struct SellerHandle<'m> {
    market: &'m DataMarket,
    name: String,
}

impl<'m> SellerHandle<'m> {
    pub(crate) fn new(market: &'m DataMarket, name: &str) -> Self {
        SellerHandle {
            market,
            name: name.to_string(),
        }
    }

    /// The seller principal.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current balance.
    pub fn balance(&self) -> f64 {
        self.market.balance(&self.name)
    }

    /// Share a dataset with the market. Refused when PII is detected —
    /// use [`SellerHandle::share_private`] or
    /// [`SellerHandle::share_anonymized`] instead (FAQ: "the DMMS offers
    /// tools that help to reduce the risk of leaking data").
    pub fn share(&self, rel: Relation) -> MarketResult<DatasetId> {
        let findings = detect_pii(&rel, 0.5);
        if !findings.is_empty() {
            let cols: Vec<String> = findings
                .iter()
                .map(|f| format!("{} ({:?})", f.column, f.kind))
                .collect();
            return Err(MarketError::RegistrationRefused(format!(
                "PII detected in columns: {}",
                cols.join(", ")
            )));
        }
        Ok(self.register(rel))
    }

    fn register(&self, rel: Relation) -> DatasetId {
        let name = rel.name().to_string();
        // Keep registration timestamps on the market's clock so buyers'
        // freshness constraints compare like with like.
        self.market.metadata.sync_clock(self.market.now());
        let id = self.market.metadata.register(name, &self.name, rel);
        self.market.audit.record(AuditEvent::DatasetRegistered {
            dataset: id,
            seller: self.name.clone(),
        });
        let grant = self.market.config().currency.share_grant();
        if grant > 0.0 {
            self.market.ledger.deposit(&self.name, grant);
        }
        id
    }

    /// Share with differential privacy: numeric columns are Laplace-
    /// perturbed before registration, and the spend is booked against a
    /// fresh per-dataset ε budget of `total_budget`.
    pub fn share_private(
        &self,
        rel: Relation,
        numeric_cols: &[&str],
        params: DpParams,
        total_budget: f64,
    ) -> MarketResult<DatasetId> {
        if params.epsilon > total_budget {
            return Err(MarketError::PrivacyBudget(format!(
                "release ε={} exceeds declared budget {total_budget}",
                params.epsilon
            )));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.market.config().seed ^ 0x5eed);
        let mut released = rel;
        for col in numeric_cols {
            released = perturb_numeric_column(&released, col, params, &mut rng)?;
        }
        let id = self.register(released);
        self.market.privacy.register(id, total_budget);
        self.market
            .privacy
            .spend(id, params.epsilon)
            .map_err(|e| MarketError::PrivacyBudget(e.to_string()))?;
        self.market.lineage.record(
            id,
            LineageEvent::PrivateRelease {
                epsilon: params.epsilon,
            },
        );
        self.market.audit.record(AuditEvent::PrivacyRelease {
            dataset: id,
            epsilon: params.epsilon,
        });
        Ok(id)
    }

    /// Share a k-anonymized release (quasi-identifiers generalized /
    /// suppressed).
    pub fn share_anonymized(
        &self,
        rel: Relation,
        quasi_identifiers: &[&str],
        k: usize,
    ) -> MarketResult<DatasetId> {
        let report = k_anonymize(&rel, quasi_identifiers, k)?;
        Ok(self.register(report.relation))
    }

    /// Update a dataset's contents (bumps its version + snapshot).
    pub fn update(&self, dataset: DatasetId, rel: Relation) -> MarketResult<u32> {
        self.assert_owner(dataset)?;
        self.market.metadata.sync_clock(self.market.now());
        let v = self
            .market
            .metadata
            .update(dataset, rel)
            .ok_or(MarketError::UnknownDataset(dataset))?;
        self.market
            .lineage
            .record(dataset, LineageEvent::Updated { version: v });
        Ok(v)
    }

    /// Withdraw a dataset from the market.
    pub fn withdraw(&self, dataset: DatasetId) -> MarketResult<()> {
        self.assert_owner(dataset)?;
        if self.market.metadata.remove(dataset) {
            Ok(())
        } else {
            Err(MarketError::UnknownDataset(dataset))
        }
    }

    /// Set a reserve price: no mashup containing this dataset sells below
    /// the sum of its datasets' reserves.
    pub fn set_reserve(&self, dataset: DatasetId, reserve: f64) -> MarketResult<()> {
        self.assert_owner(dataset)?;
        self.market
            .reserves
            .lock()
            .insert(dataset, reserve.max(0.0));
        Ok(())
    }

    /// Attach a license (§4.4).
    pub fn set_license(&self, dataset: DatasetId, license: License) -> MarketResult<()> {
        self.assert_owner(dataset)?;
        self.market.licenses.lock().insert(dataset, license);
        Ok(())
    }

    /// Attach a contextual-integrity policy.
    pub fn set_ci_policy(
        &self,
        dataset: DatasetId,
        policy: ContextualIntegrityPolicy,
    ) -> MarketResult<()> {
        self.assert_owner(dataset)?;
        self.market.ci_policies.lock().insert(dataset, policy);
        Ok(())
    }

    /// Respond to a negotiation round with a semantic annotation (§4.1:
    /// "the AMS may ask the seller to explain how to transform an
    /// attribute [...] or semantic annotations").
    pub fn annotate(&self, dataset: DatasetId, tag: impl Into<String>) -> MarketResult<()> {
        self.assert_owner(dataset)?;
        if self.market.metadata.add_tag(dataset, tag) {
            Ok(())
        } else {
            Err(MarketError::UnknownDataset(dataset))
        }
    }

    /// Respond to a negotiation round with a mapping table that links an
    /// obfuscated attribute back to the plain one (the `f(d) → d` case).
    /// The table registers as a regular dataset the DoD engine can join.
    pub fn publish_mapping_table(
        &self,
        name: &str,
        from_col: &str,
        to_col: &str,
        mapping: &Mapping,
    ) -> MarketResult<DatasetId> {
        let table = mapping_table(name, mapping)?
            .rename("from", from_col)?
            .rename("to", to_col)?;
        Ok(self.register(table))
    }

    /// The accountability report for one of the seller's datasets.
    pub fn accountability(&self, dataset: DatasetId) -> MarketResult<AccountabilityReport> {
        self.assert_owner(dataset)?;
        Ok(AccountabilityReport {
            dataset,
            mashups: self.market.lineage.mashups(dataset),
            revenue: self.market.lineage.total_revenue(dataset),
            privacy_spent: self.market.lineage.privacy_spent(dataset),
            events: self
                .market
                .lineage
                .events(dataset)
                .into_iter()
                .map(|(_, e)| e)
                .collect(),
        })
    }

    fn assert_owner(&self, dataset: DatasetId) -> MarketResult<()> {
        match self.market.metadata.get(dataset) {
            Some(e) if e.owner == self.name => Ok(()),
            Some(_) => Err(MarketError::LicenseViolation(format!(
                "{} does not own {dataset}",
                self.name
            ))),
            None => Err(MarketError::UnknownDataset(dataset)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketConfig;
    use dmp_relation::builder::keyed_rel;
    use dmp_relation::{DataType, RelationBuilder, Value};

    fn market() -> DataMarket {
        DataMarket::new(MarketConfig::external(5))
    }

    #[test]
    fn share_and_accountability() {
        let m = market();
        let s = m.seller("alice");
        let id = s.share(keyed_rel("t", &[(1, "x")])).unwrap();
        let report = s.accountability(id).unwrap();
        assert_eq!(report.revenue, 0.0);
        assert!(report.mashups.is_empty());
    }

    #[test]
    fn pii_is_refused() {
        let m = market();
        let s = m.seller("alice");
        let mut b = RelationBuilder::new("users").column("email", DataType::Str);
        for i in 0..10 {
            b = b.row(vec![Value::str(format!("u{i}@mail.com"))]);
        }
        let err = s.share(b.build().unwrap()).unwrap_err();
        assert!(matches!(err, MarketError::RegistrationRefused(m) if m.contains("email")));
    }

    #[test]
    fn private_share_perturbs_and_books_budget() {
        let m = market();
        let s = m.seller("alice");
        let mut b = RelationBuilder::new("salaries").column("pay", DataType::Float);
        for i in 0..50 {
            b = b.row(vec![Value::Float(50_000.0 + i as f64)]);
        }
        let original = b.build().unwrap();
        let id = s
            .share_private(original.clone(), &["pay"], DpParams::new(1.0, 100.0), 2.0)
            .unwrap();
        let released = m.metadata().relation(id).unwrap();
        let orig_vals = original.column_f64("pay").unwrap();
        let rel_vals = released.column_f64("pay").unwrap();
        assert!(orig_vals
            .iter()
            .zip(&rel_vals)
            .any(|(a, b)| (a - b).abs() > 1e-6));
        assert_eq!(m.lineage.privacy_spent(id), 1.0);
        assert_eq!(s.accountability(id).unwrap().privacy_spent, 1.0);
    }

    #[test]
    fn private_share_rejects_epsilon_above_budget() {
        let m = market();
        let s = m.seller("alice");
        let rel = keyed_rel("t", &[(1, "x")]);
        let err = s.share_private(rel, &[], DpParams::new(5.0, 1.0), 1.0);
        assert!(matches!(err, Err(MarketError::PrivacyBudget(_))));
    }

    #[test]
    fn anonymized_share_registers() {
        let m = market();
        let s = m.seller("alice");
        let mut b = RelationBuilder::new("patients").column("age", DataType::Int);
        for age in [30, 31, 32, 33, 50, 51, 52, 53] {
            b = b.row(vec![Value::Int(age)]);
        }
        let id = s.share_anonymized(b.build().unwrap(), &["age"], 2).unwrap();
        assert!(m.metadata().get(id).is_some());
    }

    #[test]
    fn ownership_is_enforced() {
        let m = market();
        let alice = m.seller("alice");
        let id = alice.share(keyed_rel("t", &[(1, "x")])).unwrap();
        let mallory = m.seller("mallory");
        assert!(mallory.set_reserve(id, 1.0).is_err());
        assert!(mallory.withdraw(id).is_err());
        assert!(mallory.accountability(id).is_err());
        assert!(alice.set_reserve(id, 1.0).is_ok());
    }

    #[test]
    fn update_bumps_version_and_logs() {
        let m = market();
        let s = m.seller("alice");
        let id = s.share(keyed_rel("t", &[(1, "x")])).unwrap();
        let v = s.update(id, keyed_rel("t", &[(1, "x"), (2, "y")])).unwrap();
        assert_eq!(v, 2);
        let events = m.lineage.events(id);
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, LineageEvent::Updated { version: 2 })));
    }

    #[test]
    fn mapping_table_publication() {
        let m = market();
        let s = m.seller("seller2");
        let mapping = Mapping::Dictionary(
            [
                (Value::Float(32.0), Value::Float(0.0)),
                (Value::Float(212.0), Value::Float(100.0)),
            ]
            .into_iter()
            .collect(),
        );
        let id = s
            .publish_mapping_table("fd_to_d", "fd", "d", &mapping)
            .unwrap();
        let rel = m.metadata().relation(id).unwrap();
        assert!(rel.schema().contains("fd") && rel.schema().contains("d"));
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn barter_market_grants_credits_on_share() {
        let m = DataMarket::new(MarketConfig::barter());
        let s = m.seller("alice");
        assert_eq!(s.balance(), 0.0);
        s.share(keyed_rel("t", &[(1, "x")])).unwrap();
        assert_eq!(s.balance(), 10.0);
    }
}
