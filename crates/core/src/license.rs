//! Data licensing and contextual integrity (§4.4): "sellers can assign
//! different licenses to the datasets they share that would confer
//! different rights to the beneficiary", including exclusive access whose
//! "artificial scarcity [...] should cost more to buyers, who could be
//! forced to pay a 'tax'", ownership transfers (enabling arbitrageurs,
//! §7.1), and non-transferable grants. Contextual-integrity policies [71]
//! restrict *who* may receive data *for what purpose*.

/// A license attached to a dataset by its seller.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum License {
    /// Non-exclusive use; no resale.
    #[default]
    Standard,
    /// Exclusive access while held; buyers pay an uplift ("tax") of
    /// `tax_rate` on top of the market price, and other buyers are
    /// denied mashups containing this dataset for the hold duration.
    Exclusive {
        /// Price uplift fraction (0.5 = +50 %).
        tax_rate: f64,
        /// Rounds the exclusivity lasts after purchase.
        hold_rounds: u32,
    },
    /// Full ownership transfer: the buyer may resell (arbitrageur path).
    OwnershipTransfer,
    /// Use only; the beneficiary may not re-share even derived data.
    NonTransferable,
}

impl License {
    /// Multiplier applied to the market price.
    pub fn price_multiplier(&self) -> f64 {
        match self {
            License::Exclusive { tax_rate, .. } => 1.0 + tax_rate.max(0.0),
            License::OwnershipTransfer => 1.25, // transfers price above use-rights
            _ => 1.0,
        }
    }

    /// May the beneficiary resell data acquired under this license?
    pub fn allows_resale(&self) -> bool {
        matches!(self, License::OwnershipTransfer)
    }

    /// Does a purchase under this license lock other buyers out?
    pub fn is_exclusive(&self) -> bool {
        matches!(self, License::Exclusive { .. })
    }

    /// How long an exclusivity hold lasts (0 for non-exclusive).
    pub fn hold_rounds(&self) -> u32 {
        match self {
            License::Exclusive { hold_rounds, .. } => *hold_rounds,
            _ => 0,
        }
    }
}

/// A contextual-integrity policy: information flows are appropriate only
/// within their originating context, to permitted recipient roles, and
/// never for forbidden purposes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContextualIntegrityPolicy {
    /// The norm's context (e.g. "healthcare").
    pub context: String,
    /// Recipient roles allowed to receive the data; empty = any role.
    pub allowed_roles: Vec<String>,
    /// Purposes for which transmission is forbidden (e.g. "advertising").
    pub forbidden_purposes: Vec<String>,
}

impl ContextualIntegrityPolicy {
    /// An unconstrained policy.
    pub fn open() -> Self {
        Self::default()
    }

    /// A policy restricted to roles within a context.
    pub fn restricted(
        context: impl Into<String>,
        allowed_roles: Vec<String>,
        forbidden_purposes: Vec<String>,
    ) -> Self {
        ContextualIntegrityPolicy {
            context: context.into(),
            allowed_roles,
            forbidden_purposes,
        }
    }

    /// Does this policy permit transmission to `role` for `purpose`?
    pub fn permits(&self, role: &str, purpose: &str) -> bool {
        if self
            .forbidden_purposes
            .iter()
            .any(|p| p.eq_ignore_ascii_case(purpose))
        {
            return false;
        }
        self.allowed_roles.is_empty()
            || self
                .allowed_roles
                .iter()
                .any(|r| r.eq_ignore_ascii_case(role))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_tax_raises_price() {
        let l = License::Exclusive {
            tax_rate: 0.5,
            hold_rounds: 3,
        };
        assert!((l.price_multiplier() - 1.5).abs() < 1e-12);
        assert!(l.is_exclusive());
        assert_eq!(l.hold_rounds(), 3);
    }

    #[test]
    fn standard_license_neutral() {
        let l = License::Standard;
        assert_eq!(l.price_multiplier(), 1.0);
        assert!(!l.allows_resale());
        assert!(!l.is_exclusive());
        assert_eq!(l.hold_rounds(), 0);
    }

    #[test]
    fn ownership_transfer_allows_resale() {
        assert!(License::OwnershipTransfer.allows_resale());
        assert!(License::OwnershipTransfer.price_multiplier() > 1.0);
        assert!(!License::NonTransferable.allows_resale());
    }

    #[test]
    fn negative_tax_clamped() {
        let l = License::Exclusive {
            tax_rate: -0.9,
            hold_rounds: 1,
        };
        assert_eq!(l.price_multiplier(), 1.0);
    }

    #[test]
    fn ci_policy_blocks_forbidden_purpose() {
        let p = ContextualIntegrityPolicy::restricted(
            "healthcare",
            vec!["clinician".into(), "researcher".into()],
            vec!["advertising".into()],
        );
        assert!(p.permits("clinician", "treatment"));
        assert!(p.permits("Researcher", "study")); // case-insensitive role
        assert!(!p.permits("clinician", "Advertising"));
        assert!(!p.permits("broker", "treatment"));
    }

    #[test]
    fn open_policy_permits_everything() {
        let p = ContextualIntegrityPolicy::open();
        assert!(p.permits("anyone", "anything"));
    }
}
