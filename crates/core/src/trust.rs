//! Trust infrastructure (§4.4): a hash-chained, append-only audit log
//! ("it will implement the rules established by the market design
//! faithfully" — and prove it), transparency queries, and a dispute
//! manager ("for situations when the chain of trust is broken, dispute
//! management systems must be either embedded in or informed by the
//! transactions").

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use parking_lot::Mutex;

use dmp_relation::DatasetId;

/// Events the platform records for transparency.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEvent {
    /// A dataset entered the market.
    DatasetRegistered {
        /// Dataset id.
        dataset: DatasetId,
        /// Seller principal.
        seller: String,
    },
    /// A buyer submitted a WTP offer.
    WtpSubmitted {
        /// Offer id.
        offer: u64,
        /// Buyer principal.
        buyer: String,
    },
    /// The arbiter materialized a mashup for an offer.
    MashupBuilt {
        /// Offer id.
        offer: u64,
        /// Datasets combined.
        datasets: Vec<DatasetId>,
    },
    /// A transaction settled.
    TransactionSettled {
        /// Transaction id.
        tx: u64,
        /// Buyer principal.
        buyer: String,
        /// Price paid.
        price: f64,
    },
    /// A privacy-protected release was produced.
    PrivacyRelease {
        /// Source dataset.
        dataset: DatasetId,
        /// ε spent.
        epsilon: f64,
    },
    /// An ex post report was audited.
    ExPostAudit {
        /// Delivery id.
        delivery: u64,
        /// Whether under-reporting was detected.
        underreported: bool,
    },
    /// A dispute was opened or resolved.
    Dispute {
        /// Dispute id.
        dispute: u64,
        /// Human-readable note.
        note: String,
    },
}

/// One chained entry.
#[derive(Debug, Clone)]
pub struct AuditEntry {
    /// Sequence number.
    pub seq: u64,
    /// Hash of the previous entry (0 for the genesis entry).
    pub prev_hash: u64,
    /// Hash over `(seq, prev_hash, event)`.
    pub hash: u64,
    /// The event.
    pub event: AuditEvent,
}

fn hash_event(seq: u64, prev: u64, event: &AuditEvent) -> u64 {
    let mut h = DefaultHasher::new();
    seq.hash(&mut h);
    prev.hash(&mut h);
    // Hash the debug form: stable within a build, sufficient for tamper
    // evidence in-process.
    format!("{event:?}").hash(&mut h);
    h.finish()
}

/// Append-only, hash-chained audit log.
#[derive(Debug, Default)]
pub struct AuditLog {
    entries: Mutex<Vec<AuditEntry>>,
}

impl AuditLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event; returns its sequence number.
    pub fn record(&self, event: AuditEvent) -> u64 {
        let mut entries = self.entries.lock();
        let seq = entries.len() as u64;
        let prev_hash = entries.last().map(|e| e.hash).unwrap_or(0);
        let hash = hash_event(seq, prev_hash, &event);
        entries.push(AuditEntry {
            seq,
            prev_hash,
            hash,
            event,
        });
        seq
    }

    /// All entries (cloned snapshot).
    pub fn entries(&self) -> Vec<AuditEntry> {
        self.entries.lock().clone()
    }

    /// The events appended at sequence `from` and later — the tail since
    /// a caller-observed [`AuditLog::len`]. The candidate-phase export
    /// captures exactly the events one stage recorded this way, without
    /// cloning the whole history every round.
    pub fn events_since(&self, from: u64) -> Vec<AuditEvent> {
        self.entries
            .lock()
            .iter()
            .skip(from as usize)
            .map(|e| e.event.clone())
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Verify the hash chain end-to-end.
    pub fn verify_chain(&self) -> bool {
        let entries = self.entries.lock();
        let mut prev = 0u64;
        for (i, e) in entries.iter().enumerate() {
            if e.seq != i as u64
                || e.prev_hash != prev
                || e.hash != hash_event(e.seq, e.prev_hash, &e.event)
            {
                return false;
            }
            prev = e.hash;
        }
        true
    }

    /// Transparency query: all events touching a dataset (what sellers
    /// use to see "in what mashups their data is being sold").
    pub fn events_for_dataset(&self, dataset: DatasetId) -> Vec<AuditEvent> {
        self.entries
            .lock()
            .iter()
            .filter(|e| match &e.event {
                AuditEvent::DatasetRegistered { dataset: d, .. } => *d == dataset,
                AuditEvent::MashupBuilt { datasets, .. } => datasets.contains(&dataset),
                AuditEvent::PrivacyRelease { dataset: d, .. } => *d == dataset,
                _ => false,
            })
            .map(|e| e.event.clone())
            .collect()
    }
}

/// Dispute lifecycle state.
#[derive(Debug, Clone, PartialEq)]
pub enum DisputeState {
    /// Awaiting resolution.
    Open,
    /// Resolved with an optional refund to the complainant.
    Resolved {
        /// Refund granted (0 for rejected disputes).
        refund: f64,
    },
}

/// One dispute over a transaction.
#[derive(Debug, Clone)]
pub struct Dispute {
    /// Dispute id.
    pub id: u64,
    /// Complaining principal.
    pub complainant: String,
    /// The transaction disputed.
    pub tx: u64,
    /// Free-form reason.
    pub reason: String,
    /// Current state.
    pub state: DisputeState,
}

/// In-memory dispute manager.
#[derive(Debug, Default)]
pub struct DisputeManager {
    disputes: Mutex<Vec<Dispute>>,
}

impl DisputeManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a dispute; returns its id.
    pub fn open(&self, complainant: impl Into<String>, tx: u64, reason: impl Into<String>) -> u64 {
        let mut ds = self.disputes.lock();
        let id = ds.len() as u64;
        ds.push(Dispute {
            id,
            complainant: complainant.into(),
            tx,
            reason: reason.into(),
            state: DisputeState::Open,
        });
        id
    }

    /// Resolve a dispute with a refund amount (0 = rejected). Returns
    /// false for unknown or already-resolved disputes.
    pub fn resolve(&self, id: u64, refund: f64) -> bool {
        let mut ds = self.disputes.lock();
        match ds.get_mut(id as usize) {
            Some(d) if d.state == DisputeState::Open => {
                d.state = DisputeState::Resolved {
                    refund: refund.max(0.0),
                };
                true
            }
            _ => false,
        }
    }

    /// Fetch a dispute.
    pub fn get(&self, id: u64) -> Option<Dispute> {
        self.disputes.lock().get(id as usize).cloned()
    }

    /// Open dispute count.
    pub fn open_count(&self) -> usize {
        self.disputes
            .lock()
            .iter()
            .filter(|d| d.state == DisputeState::Open)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_verifies_and_detects_order() {
        let log = AuditLog::new();
        log.record(AuditEvent::WtpSubmitted {
            offer: 1,
            buyer: "b1".into(),
        });
        log.record(AuditEvent::TransactionSettled {
            tx: 1,
            buyer: "b1".into(),
            price: 9.0,
        });
        assert!(log.verify_chain());
        assert_eq!(log.len(), 2);
        let entries = log.entries();
        assert_eq!(entries[1].prev_hash, entries[0].hash);
    }

    #[test]
    fn empty_chain_verifies() {
        assert!(AuditLog::new().verify_chain());
    }

    #[test]
    fn dataset_transparency_query() {
        let log = AuditLog::new();
        let d = DatasetId(5);
        log.record(AuditEvent::DatasetRegistered {
            dataset: d,
            seller: "s".into(),
        });
        log.record(AuditEvent::MashupBuilt {
            offer: 1,
            datasets: vec![d, DatasetId(6)],
        });
        log.record(AuditEvent::WtpSubmitted {
            offer: 2,
            buyer: "b".into(),
        });
        let events = log.events_for_dataset(d);
        assert_eq!(events.len(), 2);
        assert!(log.events_for_dataset(DatasetId(99)).is_empty());
    }

    #[test]
    fn dispute_lifecycle() {
        let dm = DisputeManager::new();
        let id = dm.open("b1", 7, "mashup quality below promised satisfaction");
        assert_eq!(dm.open_count(), 1);
        assert!(dm.resolve(id, 12.5));
        assert_eq!(dm.open_count(), 0);
        let d = dm.get(id).unwrap();
        assert_eq!(d.state, DisputeState::Resolved { refund: 12.5 });
        // double-resolve and unknown ids fail
        assert!(!dm.resolve(id, 1.0));
        assert!(!dm.resolve(99, 1.0));
    }

    #[test]
    fn refund_clamped_nonnegative() {
        let dm = DisputeManager::new();
        let id = dm.open("b", 0, "r");
        dm.resolve(id, -4.0);
        assert_eq!(
            dm.get(id).unwrap().state,
            DisputeState::Resolved { refund: 0.0 }
        );
    }
}
