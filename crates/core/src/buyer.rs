//! The Buyer Management Platform (§4.3): helps buyers define
//! WTP-functions, ships them to the arbiter, receives mashups, and (for
//! ex post markets) reports realized value.

use dmp_mechanism::wtp::{IntrinsicConstraints, PriceCurve, TaskKind, WtpFunction};
use dmp_relation::{DatasetId, Relation};

use crate::error::{MarketError, MarketResult};
use crate::market::{DataMarket, Delivery, Settlement};

/// Buyer-facing handle onto a market.
pub struct BuyerHandle<'m> {
    market: &'m DataMarket,
    name: String,
}

impl<'m> BuyerHandle<'m> {
    pub(crate) fn new(market: &'m DataMarket, name: &str) -> Self {
        BuyerHandle {
            market,
            name: name.to_string(),
        }
    }

    /// The buyer principal.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current balance.
    pub fn balance(&self) -> f64 {
        self.market.balance(&self.name)
    }

    /// Deposit funds (external/money markets).
    pub fn deposit(&self, amount: f64) {
        self.market.ledger.deposit(&self.name, amount);
    }

    /// Start building a WTP-function (fluent interface; §4.3: "a BMP must
    /// help buyers define it").
    pub fn wtp<S: Into<String>>(
        &self,
        attributes: impl IntoIterator<Item = S>,
    ) -> WtpBuilder<'m, '_> {
        WtpBuilder {
            buyer: self,
            wtp: WtpFunction::simple(self.name.clone(), attributes, PriceCurve::Constant(0.0)),
            purpose: "analytics".to_string(),
        }
    }

    /// Submit a prebuilt WTP-function.
    pub fn submit(&self, wtp: WtpFunction) -> MarketResult<u64> {
        if wtp.buyer != self.name {
            return Err(MarketError::Invalid(format!(
                "WTP buyer '{}' does not match handle '{}'",
                wtp.buyer, self.name
            )));
        }
        self.market.submit_wtp(wtp)
    }

    /// Deliveries addressed to this buyer.
    pub fn deliveries(&self) -> Vec<Delivery> {
        self.market
            .deliveries
            .lock()
            .iter()
            .filter(|d| d.buyer == self.name)
            .cloned()
            .collect()
    }

    /// Take the data of a delivery (clone of the mashup).
    pub fn take_delivery(&self, delivery_id: u64) -> MarketResult<Relation> {
        self.market
            .deliveries
            .lock()
            .iter()
            .find(|d| d.id == delivery_id && d.buyer == self.name)
            .map(|d| d.relation.clone())
            .ok_or(MarketError::UnknownId(delivery_id))
    }

    /// Report the realized value of an ex post delivery (§3.2.2.2).
    pub fn report_value(&self, delivery_id: u64, value: f64) -> MarketResult<Settlement> {
        // Ownership check before delegating.
        let owns = self
            .market
            .deliveries
            .lock()
            .iter()
            .any(|d| d.id == delivery_id && d.buyer == self.name);
        if !owns {
            return Err(MarketError::UnknownId(delivery_id));
        }
        self.market.report_value(delivery_id, value)
    }

    /// Dataset recommendations for this buyer (§4.1 arbiter services).
    pub fn recommendations(&self, k: usize) -> Vec<DatasetId> {
        self.market.recommendations(&self.name, k)
    }

    /// Open a dispute over a transaction.
    pub fn dispute(&self, tx: u64, reason: impl Into<String>) -> u64 {
        self.market.disputes.open(self.name.clone(), tx, reason)
    }
}

/// Fluent WTP-function builder.
pub struct WtpBuilder<'m, 'b> {
    buyer: &'b BuyerHandle<'m>,
    wtp: WtpFunction,
    purpose: String,
}

impl<'m, 'b> WtpBuilder<'m, 'b> {
    /// Set the task package to classification on a label column.
    pub fn classification(mut self, label: impl Into<String>) -> Self {
        self.wtp.task = TaskKind::Classification {
            label: label.into(),
        };
        self
    }

    /// Set the task package to regression on a target column.
    pub fn regression(mut self, target: impl Into<String>) -> Self {
        self.wtp.task = TaskKind::Regression {
            target: target.into(),
        };
        self
    }

    /// Set the task to aggregate completeness.
    pub fn aggregate_completeness(
        mut self,
        group_by: impl Into<String>,
        expected_groups: usize,
    ) -> Self {
        self.wtp.task = TaskKind::AggregateCompleteness {
            group_by: group_by.into(),
            expected_groups,
        };
        self
    }

    /// Set the satisfaction→price curve.
    pub fn price_curve(mut self, curve: PriceCurve) -> Self {
        self.wtp.curve = curve;
        self
    }

    /// The paper's step example: `$base` at `threshold`, `$bonus` at
    /// `high_threshold`.
    pub fn pay_steps(mut self, steps: &[(f64, f64)]) -> Self {
        self.wtp.curve = PriceCurve::Step(steps.to_vec());
        self
    }

    /// Package owned data the buyer will not pay for (§3.2.2.1).
    pub fn with_owned_data(mut self, data: Relation) -> Self {
        self.wtp.owned_data = Some(data);
        self
    }

    /// Set intrinsic constraints.
    pub fn constraints(mut self, constraints: IntrinsicConstraints) -> Self {
        self.wtp.constraints = constraints;
        self
    }

    /// Restrict discovery with topic keywords.
    pub fn keywords<S: Into<String>>(mut self, kws: impl IntoIterator<Item = S>) -> Self {
        self.wtp.keywords = kws.into_iter().map(Into::into).collect();
        self
    }

    /// Require a minimum mashup size.
    pub fn min_rows(mut self, n: usize) -> Self {
        self.wtp.min_rows = n;
        self
    }

    /// Declare the purpose (checked against contextual integrity).
    pub fn purpose(mut self, purpose: impl Into<String>) -> Self {
        self.purpose = purpose.into();
        self
    }

    /// Inspect the WTP-function without submitting.
    pub fn build(self) -> WtpFunction {
        self.wtp
    }

    /// Submit to the market; returns the offer id.
    pub fn submit(self) -> MarketResult<u64> {
        self.buyer
            .market
            .submit_wtp_for_purpose(self.wtp, self.purpose)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::{MarketConfig, OfferState};
    use dmp_mechanism::design::MarketDesign;
    use dmp_relation::builder::keyed_rel;

    fn market() -> DataMarket {
        DataMarket::new(
            MarketConfig::external(5).with_design(MarketDesign::posted_price_baseline(10.0)),
        )
    }

    #[test]
    fn fluent_builder_produces_wtp() {
        let m = market();
        let b = m.buyer("b1");
        let wtp = b
            .wtp(["a", "b", "d"])
            .classification("label")
            .pay_steps(&[(0.8, 100.0), (0.9, 150.0)])
            .min_rows(50)
            .keywords(["weather"])
            .build();
        assert_eq!(wtp.buyer, "b1");
        assert_eq!(wtp.attributes.len(), 3);
        assert_eq!(wtp.curve.price(0.85), 100.0);
        assert_eq!(wtp.min_rows, 50);
        assert_eq!(wtp.keywords, vec!["weather".to_string()]);
        assert!(matches!(wtp.task, TaskKind::Classification { .. }));
    }

    #[test]
    fn submit_mismatched_buyer_rejected() {
        let m = market();
        let b = m.buyer("b1");
        let wtp = WtpFunction::simple("someone_else", ["a"], PriceCurve::Constant(1.0));
        assert!(b.submit(wtp).is_err());
    }

    #[test]
    fn end_to_end_delivery_visible_to_buyer() {
        let m = market();
        m.seller("s")
            .share(keyed_rel("t", &[(1, "x"), (2, "y")]))
            .unwrap();
        let b = m.buyer("b1");
        b.deposit(100.0);
        let offer = b
            .wtp(["k", "v"])
            .price_curve(PriceCurve::Constant(20.0))
            .submit()
            .unwrap();
        m.run_round();
        assert!(matches!(
            m.offer(offer).unwrap().state,
            OfferState::Fulfilled { .. }
        ));
        let deliveries = b.deliveries();
        assert_eq!(deliveries.len(), 1);
        let data = b.take_delivery(deliveries[0].id).unwrap();
        assert_eq!(data.len(), 2);
    }

    #[test]
    fn cannot_take_others_delivery() {
        let m = market();
        m.seller("s").share(keyed_rel("t", &[(1, "x")])).unwrap();
        let b = m.buyer("b1");
        b.deposit(100.0);
        b.wtp(["k"])
            .price_curve(PriceCurve::Constant(20.0))
            .submit()
            .unwrap();
        m.run_round();
        let id = b.deliveries()[0].id;
        let eve = m.buyer("eve");
        assert!(eve.take_delivery(id).is_err());
    }

    #[test]
    fn dispute_opens() {
        let m = market();
        let b = m.buyer("b1");
        let id = b.dispute(0, "data was stale");
        assert_eq!(m.disputes().open_count(), 1);
        assert!(m.disputes().get(id).is_some());
    }
}
