//! Incentive currencies (§3.3): "markets can be of many types: i)
//! internal to an organization [...] in which case employee compensation
//! may be bonus points; ii) external across companies where money is an
//! appropriate incentive; iii) across organizations but using the shared
//! data as the incentive".

use std::fmt;

/// The unit in which a market denominates incentives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Currency {
    /// Real money (external markets).
    Money,
    /// Internal bonus points minted by the organization.
    BonusPoints,
    /// Barter credits earned by contributing data.
    DataCredits,
}

impl Currency {
    /// Initial grant given to each participant at enrollment. External
    /// markets grant nothing (bring your own money); internal markets
    /// seed points so trade can start; barter grants nothing — credits
    /// are earned by sharing.
    pub fn enrollment_grant(self) -> f64 {
        match self {
            Currency::Money => 0.0,
            Currency::BonusPoints => 100.0,
            Currency::DataCredits => 0.0,
        }
    }

    /// Credits granted per dataset shared (barter economies reward the
    /// act of contribution itself).
    pub fn share_grant(self) -> f64 {
        match self {
            Currency::DataCredits => 10.0,
            _ => 0.0,
        }
    }
}

impl fmt::Display for Currency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Currency::Money => "money",
            Currency::BonusPoints => "bonus-points",
            Currency::DataCredits => "data-credits",
        };
        f.write_str(s)
    }
}

/// An amount of incentive in a specific currency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Incentive {
    /// Denomination.
    pub currency: Currency,
    /// Amount (≥ 0).
    pub amount: f64,
}

impl Incentive {
    /// Construct, clamping negatives to zero.
    pub fn new(currency: Currency, amount: f64) -> Self {
        Incentive {
            currency,
            amount: amount.max(0.0),
        }
    }
}

impl fmt::Display for Incentive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.amount, self.currency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_match_market_type() {
        assert_eq!(Currency::Money.enrollment_grant(), 0.0);
        assert!(Currency::BonusPoints.enrollment_grant() > 0.0);
        assert_eq!(Currency::DataCredits.share_grant(), 10.0);
        assert_eq!(Currency::Money.share_grant(), 0.0);
    }

    #[test]
    fn incentive_clamps_negative() {
        assert_eq!(Incentive::new(Currency::Money, -5.0).amount, 0.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Currency::BonusPoints.to_string(), "bonus-points");
        assert_eq!(Incentive::new(Currency::Money, 3.0).to_string(), "3 money");
    }
}
