//! The Arbiter Management Platform (Fig. 2, §4.1) — "the most complex of
//! all DMMS's components: it builds mashups to match supply and demand,
//! and it implements the five market design components."
//!
//! * [`ledger`] — transaction support: double-entry accounts + escrow;
//! * [`mashup_builder`] — wires the DoD engine (and the buyer's owned
//!   data) into candidate mashups per WTP-function;
//! * [`wtp_evaluator`] — runs the task package on each mashup, measures
//!   satisfaction, derives the buyer's bid from the price curve;
//! * [`pricing`] — the pricing engine: groups bids by product and clears
//!   them under the market design's allocation + payment rules;
//! * [`revenue`] — the revenue allocation engine: dataset shares via
//!   Shapley / leave-one-out / provenance;
//! * [`services`] — arbiter services: demand reports for opportunistic
//!   sellers and item-based collaborative-filtering recommendations;
//! * [`pipeline`] — the staged round pipeline wiring the above into
//!   `DataMarket::run_round`: expiry → candidates (rayon-parallel) →
//!   clearing → settlement.

pub mod ledger;
pub mod mashup_builder;
pub mod pipeline;
pub mod pricing;
pub mod revenue;
pub mod services;
pub mod wtp_evaluator;

pub use ledger::Ledger;
pub use mashup_builder::BuiltMashup;
pub use pipeline::{
    CandidateSet, CandidateStage, ClearingStage, ExpiryStage, RoundContext, RoundReport,
    RoundStage, SettlementStage,
};
pub use pricing::{RoundBid, Sale};
pub use wtp_evaluator::Evaluation;
