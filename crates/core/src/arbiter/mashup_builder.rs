//! The Mashup Builder front-end (Fig. 2 top): turns a WTP-function into
//! materialized candidate mashups `[m1, …, mn]` by driving the DoD engine
//! over the metadata engine's current state, then augmenting with the
//! buyer's packaged owned data when present (§3.2.2.1: "when buyers own
//! multiple features relevant to train the ML model but want other
//! datasets to augment their data").

use dmp_discovery::MetadataEngine;
use dmp_integration::{DodEngine, TargetSpec};
use dmp_mechanism::wtp::WtpFunction;
use dmp_relation::ops::JoinKind;
use dmp_relation::{DatasetId, Relation};

/// A materialized candidate mashup.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltMashup {
    /// The relation (already joined with owned data when provided).
    pub relation: Relation,
    /// Market datasets that contributed (excludes the buyer's own data).
    pub datasets: Vec<DatasetId>,
    /// Fraction of requested attributes covered.
    pub coverage: f64,
    /// Join confidence product.
    pub confidence: f64,
    /// Attributes the DoD could not source (negotiation input, §4.1).
    pub missing: Vec<String>,
}

/// Build up to `max` candidate mashups for a WTP-function.
pub fn build_mashups(metadata: &MetadataEngine, wtp: &WtpFunction, max: usize) -> Vec<BuiltMashup> {
    let mut spec =
        TargetSpec::with_attributes(wtp.attributes.iter().cloned()).min_rows(wtp.min_rows.max(1));
    if !wtp.keywords.is_empty() {
        spec = spec.keywords(wtp.keywords.iter().cloned());
    }
    let dod = DodEngine::new(metadata);
    let candidates = match dod.find_mashups(&spec) {
        Ok(c) => c,
        Err(_) => return Vec::new(),
    };

    let mut out = Vec::new();
    for cand in candidates.into_iter().take(max) {
        let missing: Vec<String> = cand
            .missing(&spec)
            .into_iter()
            .map(str::to_string)
            .collect();
        let relation = match &wtp.owned_data {
            Some(owned) => {
                // Natural join on whatever key columns the mashup shares
                // with the buyer's packaged data (e.g. `a` in the intro
                // example). If nothing is shared, the candidate cannot be
                // bound to the buyer's labels — skip it.
                match cand.relation.natural_join(owned, JoinKind::Inner) {
                    Ok(j) if !j.is_empty() => j,
                    _ => continue,
                }
            }
            None => cand.relation.clone(),
        };
        if relation.len() < wtp.min_rows.max(1) {
            continue;
        }
        out.push(BuiltMashup {
            relation,
            datasets: cand.datasets.clone(),
            coverage: cand.coverage,
            confidence: cand.confidence,
            missing,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_mechanism::wtp::PriceCurve;
    use dmp_tasks::synth::intro_example;

    fn setup() -> (MetadataEngine, WtpFunction) {
        let ex = intro_example(300, 7);
        let metadata = MetadataEngine::new();
        metadata.register("s1", "seller1", ex.s1);
        metadata.register("s2", "seller2", ex.s2);
        let mut wtp =
            WtpFunction::simple("b1", ["a", "b", "fd"], PriceCurve::Step(vec![(0.8, 100.0)]));
        wtp.owned_data = Some(ex.buyer_owned);
        (metadata, wtp)
    }

    #[test]
    fn builds_candidates_with_owned_data_joined() {
        let (metadata, wtp) = setup();
        let mashups = build_mashups(&metadata, &wtp, 4);
        assert!(!mashups.is_empty());
        let best = &mashups[0];
        assert!(
            best.relation.schema().contains("label"),
            "owned labels joined in"
        );
        assert!(best.relation.len() > 100);
    }

    #[test]
    fn full_coverage_candidate_uses_both_sellers() {
        let (metadata, mut wtp) = setup();
        // `c` only exists in s1 and `fd` only in s2, forcing a join.
        wtp.attributes = vec!["a".into(), "c".into(), "fd".into()];
        let mashups = build_mashups(&metadata, &wtp, 4);
        let full = mashups.iter().find(|m| (m.coverage - 1.0).abs() < 1e-9);
        let full = full.expect("a full-coverage mashup should exist");
        assert_eq!(full.datasets.len(), 2);
        assert!(full.missing.is_empty());
    }

    #[test]
    fn without_owned_data_no_label_column() {
        let (metadata, mut wtp) = setup();
        wtp.owned_data = None;
        let mashups = build_mashups(&metadata, &wtp, 4);
        assert!(!mashups.is_empty());
        assert!(!mashups[0].relation.schema().contains("label"));
    }

    #[test]
    fn min_rows_filters() {
        let (metadata, mut wtp) = setup();
        wtp.min_rows = 10_000;
        assert!(build_mashups(&metadata, &wtp, 4).is_empty());
    }

    #[test]
    fn unsourcable_attribute_reported_missing() {
        let (metadata, mut wtp) = setup();
        wtp.attributes.push("e".into()); // the intro example's gap
        let mashups = build_mashups(&metadata, &wtp, 4);
        assert!(!mashups.is_empty());
        assert!(mashups.iter().all(|m| m.missing.contains(&"e".to_string())));
        assert!(mashups.iter().all(|m| m.coverage < 1.0));
    }
}
