//! The Pricing Engine (Fig. 2): "use the Pricing Engine to set a price
//! for each mᵢ and choose a winner". Bids for the *same product* (same
//! dataset combination) compete under the market design's allocation and
//! payment rules; license multipliers and seller reserve floors apply on
//! top.

use std::collections::BTreeMap;

use dmp_mechanism::allocation::Bid;
use dmp_mechanism::design::MarketDesign;
use dmp_relation::DatasetId;

/// One buyer's bid entering a clearing round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundBid {
    /// The offer this bid came from.
    pub offer_id: u64,
    /// Buyer principal.
    pub buyer: String,
    /// The WTP-evaluator's output bid (money).
    pub bid: f64,
    /// Satisfaction backing the bid.
    pub satisfaction: f64,
    /// The product: sorted dataset ids of the mashup.
    pub datasets: Vec<DatasetId>,
    /// Sum of seller reserve prices over those datasets.
    pub reserve_floor: f64,
    /// License price multiplier (exclusivity tax etc.).
    pub license_multiplier: f64,
}

/// A cleared sale.
#[derive(Debug, Clone, PartialEq)]
pub struct Sale {
    /// The winning offer.
    pub offer_id: u64,
    /// Buyer principal.
    pub buyer: String,
    /// Final price (after license multiplier), ≥ reserve floor.
    pub price: f64,
    /// Satisfaction the sale delivers.
    pub satisfaction: f64,
}

/// Clear a round of bids under a market design.
///
/// Bids are grouped by product key; each group runs the design's
/// allocation + payment. A winner's base price is scaled by its license
/// multiplier; sales whose scaled price cannot cover the reserve floor
/// are dropped (the sellers would refuse).
pub fn clear(design: &MarketDesign, bids: &[RoundBid]) -> Vec<Sale> {
    let mut groups: BTreeMap<Vec<DatasetId>, Vec<usize>> = BTreeMap::new();
    for (i, b) in bids.iter().enumerate() {
        groups.entry(b.datasets.clone()).or_default().push(i);
    }
    let mut sales = Vec::new();
    // BTreeMap iteration is key-sorted: deterministic group order.
    for members in groups.values() {
        let group_bids: Vec<Bid> = members
            .iter()
            .map(|&i| Bid::new(bids[i].buyer.clone(), bids[i].bid))
            .collect();
        let winners = design.allocation.allocate(&group_bids);
        let payments = design.payment.payments(&group_bids, &winners);
        for (local_idx, base_price) in payments {
            let rb = &bids[members[local_idx]];
            let price = base_price * rb.license_multiplier.max(1.0);
            if price + 1e-9 < rb.reserve_floor {
                continue; // sellers' reserves unmet: no transaction
            }
            if price > rb.bid * rb.license_multiplier.max(1.0) + 1e-9 {
                continue; // never charge above the (scaled) bid
            }
            sales.push(Sale {
                offer_id: rb.offer_id,
                buyer: rb.buyer.clone(),
                price,
                satisfaction: rb.satisfaction,
            });
        }
    }
    sales.sort_by_key(|s| s.offer_id);
    sales
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_mechanism::design::MarketDesign;

    fn rb(offer: u64, buyer: &str, bid: f64, datasets: Vec<u64>) -> RoundBid {
        RoundBid {
            offer_id: offer,
            buyer: buyer.into(),
            bid,
            satisfaction: 0.9,
            datasets: datasets.into_iter().map(DatasetId).collect(),
            reserve_floor: 0.0,
            license_multiplier: 1.0,
        }
    }

    #[test]
    fn posted_price_clears_affordable_bids() {
        let design = MarketDesign::posted_price_baseline(20.0);
        let bids = vec![
            rb(1, "a", 25.0, vec![1]),
            rb(2, "b", 10.0, vec![1]),
            rb(3, "c", 30.0, vec![2]),
        ];
        let sales = clear(&design, &bids);
        assert_eq!(sales.len(), 2);
        assert!(sales.iter().all(|s| (s.price - 20.0).abs() < 1e-9));
        assert!(sales.iter().any(|s| s.offer_id == 1));
        assert!(sales.iter().any(|s| s.offer_id == 3));
    }

    #[test]
    fn products_compete_separately() {
        // Vickrey on one product should not see the other product's bids.
        let design = MarketDesign::scarce_licenses(1, 0.0);
        let bids = vec![
            rb(1, "a", 100.0, vec![1]),
            rb(2, "b", 60.0, vec![1]),
            rb(3, "c", 10.0, vec![2]),
        ];
        let sales = clear(&design, &bids);
        let s1 = sales.iter().find(|s| s.offer_id == 1).unwrap();
        assert!(
            (s1.price - 60.0).abs() < 1e-9,
            "second price within product 1"
        );
        let s3 = sales.iter().find(|s| s.offer_id == 3).unwrap();
        assert!(s3.price <= 10.0);
    }

    #[test]
    fn reserve_floor_blocks_cheap_sales() {
        let design = MarketDesign::posted_price_baseline(5.0);
        let mut bid = rb(1, "a", 10.0, vec![1]);
        bid.reserve_floor = 8.0; // posted price 5 < reserve 8
        let sales = clear(&design, &[bid]);
        assert!(sales.is_empty());
    }

    #[test]
    fn license_multiplier_raises_price() {
        let design = MarketDesign::posted_price_baseline(10.0);
        let mut bid = rb(1, "a", 20.0, vec![1]);
        bid.license_multiplier = 1.5;
        let sales = clear(&design, &[bid]);
        assert_eq!(sales.len(), 1);
        assert!((sales[0].price - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_bids_no_sales() {
        let design = MarketDesign::posted_price_baseline(1.0);
        assert!(clear(&design, &[]).is_empty());
    }

    #[test]
    fn deterministic_order() {
        let design = MarketDesign::posted_price_baseline(1.0);
        let bids = vec![rb(2, "b", 5.0, vec![2]), rb(1, "a", 5.0, vec![1])];
        let s1 = clear(&design, &bids);
        let s2 = clear(&design, &bids);
        assert_eq!(s1, s2);
        assert_eq!(s1[0].offer_id, 1);
    }
}
