//! Transaction support (Fig. 2): a double-entry in-memory ledger with
//! escrow — the simulated substitute for real payment rails (DESIGN.md
//! substitutions table). Invariant: transfers conserve total supply;
//! only explicit deposits mint currency.
//!
//! Amounts are stored as **integer micro-credits** (1 credit =
//! 1 000 000 µ): every amount crossing the ledger boundary is rounded
//! to the nearest micro-credit before it is applied, so balances never
//! accumulate binary-float drift and the conservation invariant
//! (`total_supply == sum of deposits`) holds *exactly*, bit for bit,
//! under arbitrary interleavings of transfers, holds and releases. The
//! public API stays in `f64` credits.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{MarketError, MarketResult};

/// Micro-credits per credit: the fixed granularity of stored amounts.
// dmp-lint: allow(det-float) -- the one boundary constant: 1e6 is exact in f64 and only used in to/from_micros
pub const MICROS_PER_CREDIT: f64 = 1_000_000.0;

/// Largest amount (in credits) a single operation accepts; amounts are
/// clamped here at the boundary so micro-credit arithmetic on one
/// operation can never overflow `i64` (1e12 credits = 1e18 µ,
/// comfortably inside ±9.2e18). Accumulated balances use **checked**
/// arithmetic on every transfer/escrow path: a credit that would
/// overflow is refused with [`MarketError::BalanceOverflow`] and no
/// state change. Only `deposit` — the explicit mint — saturates at the
/// `i64` ceiling, and that clamp is visible in `total_supply`.
// dmp-lint: allow(det-float) -- boundary clamp constant, exact in f64 (integer below 2^53)
pub const MAX_AMOUNT: f64 = 1e12;

/// Round an amount in credits to whole micro-credits.
fn to_micros(amount: f64) -> i64 {
    (amount.clamp(-MAX_AMOUNT, MAX_AMOUNT) * MICROS_PER_CREDIT).round() as i64
}

fn from_micros(m: i64) -> f64 {
    // dmp-lint: allow(det-float) -- read-side boundary: balances stay i64, only the report value is f64
    m as f64 / MICROS_PER_CREDIT
}

/// Escrow lifecycle.
#[derive(Debug, Clone, PartialEq)]
enum EscrowState {
    Held,
    Closed,
}

#[derive(Debug, Clone)]
struct Escrow {
    from: String,
    remaining: i64,
    state: EscrowState,
}

/// Double-entry ledger with named accounts and escrow holds.
#[derive(Debug, Default)]
pub struct Ledger {
    accounts: Mutex<BTreeMap<String, i64>>,
    escrows: Mutex<BTreeMap<u64, Escrow>>,
    next_escrow: AtomicU64,
}

impl Ledger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint `amount` into an account (enrollment grants, deposits).
    /// Amounts below half a micro-credit are dropped.
    pub fn deposit(&self, account: &str, amount: f64) {
        let m = to_micros(amount);
        if m <= 0 {
            return;
        }
        let mut accounts = self.accounts.lock();
        let e = accounts.entry(account.to_string()).or_insert(0);
        *e = e.saturating_add(m);
    }

    /// Current balance (0 for unknown accounts).
    pub fn balance(&self, account: &str) -> f64 {
        from_micros(self.accounts.lock().get(account).copied().unwrap_or(0))
    }

    /// Transfer between accounts; fails on insufficient funds, and on a
    /// credit that would overflow the receiver (checked, not saturating:
    /// clamping the credit side while the debit side paid in full would
    /// silently destroy currency).
    pub fn transfer(&self, from: &str, to: &str, amount: f64) -> MarketResult<()> {
        // dmp-lint: allow(det-float) -- sign check on the boundary argument, no float arithmetic
        if amount < 0.0 {
            return Err(MarketError::Invalid("negative transfer".into()));
        }
        let m = to_micros(amount);
        if m == 0 {
            return Ok(());
        }
        let mut accounts = self.accounts.lock();
        let available = accounts.get(from).copied().unwrap_or(0);
        if available < m {
            return Err(MarketError::InsufficientFunds {
                account: from.to_string(),
                needed: amount,
                available: from_micros(available),
            });
        }
        *accounts.entry(from.to_string()).or_insert(0) -= m;
        let to_entry = accounts.entry(to.to_string()).or_insert(0);
        match to_entry.checked_add(m) {
            Some(v) => {
                *to_entry = v;
                Ok(())
            }
            None => {
                // Undo the debit under the same lock: a refused
                // transfer leaves no partial state.
                *accounts.entry(from.to_string()).or_insert(0) += m;
                Err(MarketError::BalanceOverflow {
                    account: to.to_string(),
                })
            }
        }
    }

    /// Hold `amount` from an account in escrow; returns the escrow id.
    pub fn hold(&self, from: &str, amount: f64) -> MarketResult<u64> {
        // dmp-lint: allow(det-float) -- sign check on the boundary argument, no float arithmetic
        if amount < 0.0 {
            return Err(MarketError::Invalid("negative escrow".into()));
        }
        let m = to_micros(amount);
        {
            let mut accounts = self.accounts.lock();
            let available = accounts.get(from).copied().unwrap_or(0);
            if available < m {
                return Err(MarketError::InsufficientFunds {
                    account: from.to_string(),
                    needed: amount,
                    available: from_micros(available),
                });
            }
            *accounts.entry(from.to_string()).or_insert(0) -= m;
        }
        let id = self.next_escrow.fetch_add(1, Ordering::Relaxed);
        self.escrows.lock().insert(
            id,
            Escrow {
                from: from.to_string(),
                remaining: m,
                state: EscrowState::Held,
            },
        );
        Ok(id)
    }

    /// Pay `amount` out of an escrow to `to`. The escrow stays open with
    /// the remainder.
    pub fn release(&self, escrow: u64, to: &str, amount: f64) -> MarketResult<()> {
        // dmp-lint: allow(det-float) -- sign check on the boundary argument, no float arithmetic
        if amount < 0.0 {
            return Err(MarketError::Invalid("negative release".into()));
        }
        let m = to_micros(amount);
        let mut escrows = self.escrows.lock();
        let e = escrows
            .get_mut(&escrow)
            .ok_or(MarketError::UnknownId(escrow))?;
        if e.state != EscrowState::Held {
            return Err(MarketError::Invalid("escrow already closed".into()));
        }
        if e.remaining < m {
            return Err(MarketError::InsufficientFunds {
                account: format!("escrow#{escrow}"),
                needed: amount,
                available: from_micros(e.remaining),
            });
        }
        // Checked credit *before* the escrow debit: a refused payout
        // leaves the hold untouched instead of vanishing the money.
        let mut accounts = self.accounts.lock();
        let to_entry = accounts.entry(to.to_string()).or_insert(0);
        let credited = to_entry
            .checked_add(m)
            .ok_or_else(|| MarketError::BalanceOverflow {
                account: to.to_string(),
            })?;
        *to_entry = credited;
        e.remaining -= m;
        Ok(())
    }

    /// Micro-credits of payout overshoot `release_up_to` absorbs: each
    /// payout in a revenue split rounds independently (≤ 0.5 µ each),
    /// so the final one can exceed the (also rounded) hold by the
    /// accumulated dust — bounded well below this for any realistic
    /// share count. Larger overshoots are real accounting bugs and
    /// still fail loudly.
    const RELEASE_DUST_MICROS: i64 = 100;

    /// Pay `min(amount, remaining)` out of an escrow to `to`, returning
    /// what was actually paid. This is the payout used by settlement,
    /// where "the rest of the hold" is the intent; the clamp tolerates
    /// only rounding dust ([`Self::RELEASE_DUST_MICROS`]).
    /// [`Ledger::release`] stays strict for exact payouts.
    pub fn release_up_to(&self, escrow: u64, to: &str, amount: f64) -> MarketResult<f64> {
        // dmp-lint: allow(det-float) -- sign check on the boundary argument, no float arithmetic
        if amount < 0.0 {
            return Err(MarketError::Invalid("negative release".into()));
        }
        let mut escrows = self.escrows.lock();
        let e = escrows
            .get_mut(&escrow)
            .ok_or(MarketError::UnknownId(escrow))?;
        if e.state != EscrowState::Held {
            return Err(MarketError::Invalid("escrow already closed".into()));
        }
        let requested = to_micros(amount);
        if requested > e.remaining.saturating_add(Self::RELEASE_DUST_MICROS) {
            return Err(MarketError::InsufficientFunds {
                account: format!("escrow#{escrow}"),
                needed: amount,
                available: from_micros(e.remaining),
            });
        }
        let m = requested.min(e.remaining);
        if m <= 0 {
            // dmp-lint: allow(det-float) -- exact zero, the "nothing paid" report value
            return Ok(0.0);
        }
        let mut accounts = self.accounts.lock();
        let to_entry = accounts.entry(to.to_string()).or_insert(0);
        let credited = to_entry
            .checked_add(m)
            .ok_or_else(|| MarketError::BalanceOverflow {
                account: to.to_string(),
            })?;
        *to_entry = credited;
        e.remaining -= m;
        Ok(from_micros(m))
    }

    /// Close the escrow, refunding whatever remains to the holder.
    /// Returns the refunded amount.
    pub fn close(&self, escrow: u64) -> MarketResult<f64> {
        let mut escrows = self.escrows.lock();
        let e = escrows
            .get_mut(&escrow)
            .ok_or(MarketError::UnknownId(escrow))?;
        if e.state != EscrowState::Held {
            return Err(MarketError::Invalid("escrow already closed".into()));
        }
        // Checked refund first: on overflow the escrow stays held (and
        // its funds stay counted) instead of silently clamping away.
        let refund = e.remaining;
        let mut accounts = self.accounts.lock();
        let from_entry = accounts.entry(e.from.clone()).or_insert(0);
        let refunded =
            from_entry
                .checked_add(refund)
                .ok_or_else(|| MarketError::BalanceOverflow {
                    account: e.from.clone(),
                })?;
        *from_entry = refunded;
        e.state = EscrowState::Closed;
        e.remaining = 0;
        Ok(from_micros(refund))
    }

    /// Funds still held in an open escrow (`None` for unknown/closed).
    pub fn escrow_remaining(&self, escrow: u64) -> Option<f64> {
        self.escrows
            .lock()
            .get(&escrow)
            .filter(|e| e.state == EscrowState::Held)
            .map(|e| from_micros(e.remaining))
    }

    /// Total currency across accounts and open escrows (conservation
    /// invariant: only `deposit` changes this).
    pub fn total_supply(&self) -> f64 {
        let accounts: i64 = self
            .accounts
            .lock()
            .values()
            .fold(0i64, |acc, &v| acc.saturating_add(v));
        let escrowed: i64 = self
            .escrows
            .lock()
            .values()
            .filter(|e| e.state == EscrowState::Held)
            .fold(0i64, |acc, e| acc.saturating_add(e.remaining));
        from_micros(accounts.saturating_add(escrowed))
    }

    /// All account balances, sorted by name (for reports and snapshots).
    /// `BTreeMap` iteration is already name-ordered.
    pub fn balances(&self) -> Vec<(String, f64)> {
        self.accounts
            .lock()
            .iter()
            .map(|(k, &v)| (k.clone(), from_micros(v)))
            .collect()
    }

    /// All open escrow holds as `(escrow_id, holder, remaining)`, sorted
    /// by id (for snapshots and durability digests). `BTreeMap`
    /// iteration is already id-ordered.
    pub fn escrow_holds(&self) -> Vec<(u64, String, f64)> {
        self.escrows
            .lock()
            .iter()
            .filter(|(_, e)| e.state == EscrowState::Held)
            .map(|(&id, e)| (id, e.from.clone(), from_micros(e.remaining)))
            .collect()
    }

    /// Exact ledger state for materialized snapshots, in integer
    /// micro-credits so the round trip is bit-identical: account
    /// balances, *all* escrows (closed ones keep their ids occupied and
    /// must survive so `next_escrow` stays consistent with the map),
    /// and the next escrow id.
    pub fn export_state(&self) -> LedgerImage {
        let accounts = self
            .accounts
            .lock()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let escrows = self
            .escrows
            .lock()
            .iter()
            .map(|(&id, e)| EscrowImage {
                id,
                from: e.from.clone(),
                remaining_micros: e.remaining,
                held: e.state == EscrowState::Held,
            })
            .collect();
        LedgerImage {
            accounts,
            escrows,
            next_escrow: self.next_escrow.load(Ordering::SeqCst),
        }
    }

    /// Replace the ledger's contents with a previously exported image
    /// (recovery from a materialized snapshot).
    pub fn restore_state(&self, image: LedgerImage) {
        // Lock order matches the payout paths: escrows before accounts.
        let mut escrows = self.escrows.lock();
        let mut accounts = self.accounts.lock();
        accounts.clear();
        for (name, micros) in image.accounts {
            accounts.insert(name, micros);
        }
        escrows.clear();
        for e in image.escrows {
            escrows.insert(
                e.id,
                Escrow {
                    from: e.from,
                    remaining: e.remaining_micros,
                    state: if e.held {
                        EscrowState::Held
                    } else {
                        EscrowState::Closed
                    },
                },
            );
        }
        self.next_escrow.store(image.next_escrow, Ordering::SeqCst);
    }
}

/// One escrow entry in a [`LedgerImage`].
#[derive(Debug, Clone, PartialEq)]
pub struct EscrowImage {
    /// Escrow id.
    pub id: u64,
    /// Account the hold was taken from.
    pub from: String,
    /// Funds still held, in micro-credits.
    pub remaining_micros: i64,
    /// Whether the escrow is still open.
    pub held: bool,
}

/// Bit-exact ledger state (micro-credits), used by snapshot encode and
/// recovery restore.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerImage {
    /// Account balances in micro-credits, name-sorted.
    pub accounts: Vec<(String, i64)>,
    /// Every escrow, open or closed, id-sorted.
    pub escrows: Vec<EscrowImage>,
    /// The next escrow id to allocate.
    pub next_escrow: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_and_transfer() {
        let l = Ledger::new();
        l.deposit("alice", 100.0);
        l.transfer("alice", "bob", 30.0).unwrap();
        assert_eq!(l.balance("alice"), 70.0);
        assert_eq!(l.balance("bob"), 30.0);
        assert_eq!(l.total_supply(), 100.0);
    }

    #[test]
    fn overdraft_refused() {
        let l = Ledger::new();
        l.deposit("alice", 10.0);
        let err = l.transfer("alice", "bob", 20.0).unwrap_err();
        assert!(matches!(err, MarketError::InsufficientFunds { .. }));
        assert_eq!(l.balance("alice"), 10.0);
        assert_eq!(l.balance("bob"), 0.0);
    }

    #[test]
    fn zero_and_negative_transfers() {
        let l = Ledger::new();
        l.deposit("a", 5.0);
        assert!(l.transfer("a", "b", 0.0).is_ok());
        assert!(l.transfer("a", "b", -1.0).is_err());
    }

    #[test]
    fn amounts_round_to_micro_credits() {
        let l = Ledger::new();
        // Sub-micro residue is rounded away at the boundary: classic
        // float drift like 0.1 + 0.2 stores exactly 0.3.
        l.deposit("a", 0.1);
        l.deposit("a", 0.2);
        assert_eq!(l.balance("a"), 0.3);
        // Below half a micro-credit a deposit is a no-op.
        l.deposit("a", 4e-7);
        assert_eq!(l.balance("a"), 0.3);
        // A transfer computed with float error still conserves exactly.
        l.transfer("a", "b", 0.1 + 0.2 - 0.3 + 0.1).unwrap();
        assert_eq!(l.balance("b"), 0.1);
        assert_eq!(l.total_supply(), 0.3);
    }

    #[test]
    fn escrow_lifecycle_conserves_supply() {
        let l = Ledger::new();
        l.deposit("buyer", 100.0);
        let e = l.hold("buyer", 60.0).unwrap();
        assert_eq!(l.balance("buyer"), 40.0);
        assert_eq!(l.total_supply(), 100.0);

        l.release(e, "seller", 45.0).unwrap();
        assert_eq!(l.balance("seller"), 45.0);
        assert_eq!(l.total_supply(), 100.0);

        let refund = l.close(e).unwrap();
        assert_eq!(refund, 15.0);
        assert_eq!(l.balance("buyer"), 55.0);
        assert_eq!(l.total_supply(), 100.0);
    }

    #[test]
    fn release_up_to_absorbs_rounding_dust() {
        let l = Ledger::new();
        l.deposit("buyer", 1.0);
        // Hold 10.5 µ; three "equal" shares of 3.5 µ each round to 4 µ,
        // so the strict release would fail on the third. release_up_to
        // pays out the remainder instead.
        let e = l.hold("buyer", 0.0000105).unwrap();
        assert_eq!(l.release_up_to(e, "s1", 0.0000035).unwrap(), 0.000004);
        assert_eq!(l.release_up_to(e, "s2", 0.0000035).unwrap(), 0.000004);
        let third = l.release_up_to(e, "s3", 0.0000035).unwrap();
        assert_eq!(third, 0.000003, "last share clamps to the remainder");
        assert_eq!(l.escrow_remaining(e), Some(0.0));
        assert_eq!(l.total_supply(), 1.0);
        // Still strict about lifecycle and about non-dust overshoots.
        l.close(e).unwrap();
        assert!(l.release_up_to(e, "s1", 0.1).is_err());
        let e2 = l.hold("buyer", 0.5).unwrap();
        assert!(
            l.release_up_to(e2, "s1", 0.6).is_err(),
            "whole-credit overshoot is an accounting bug, not dust"
        );
    }

    #[test]
    fn oversized_amounts_clamp_instead_of_overflowing() {
        let l = Ledger::new();
        // Far beyond MAX_AMOUNT: clamped at the boundary, and repeated
        // deposits saturate instead of wrapping negative.
        l.deposit("whale", 1e300);
        assert_eq!(l.balance("whale"), MAX_AMOUNT);
        for _ in 0..12 {
            l.deposit("whale", MAX_AMOUNT);
        }
        assert!(l.balance("whale") > 0.0, "no wraparound to negative");
        assert!(l.total_supply() > 0.0);
    }

    /// Saturate an account at the `i64` micro-credit ceiling via the
    /// (documented, clamping) mint path.
    fn max_out(l: &Ledger, account: &str) {
        for _ in 0..12 {
            l.deposit(account, MAX_AMOUNT);
        }
    }

    #[test]
    fn transfer_into_full_account_is_refused_not_clamped() {
        let l = Ledger::new();
        max_out(&l, "whale");
        l.deposit("minnow", 10.0);
        let whale_before = l.balance("whale");
        let err = l.transfer("minnow", "whale", 10.0).unwrap_err();
        assert!(matches!(err, MarketError::BalanceOverflow { ref account } if account == "whale"));
        // No partial state: the debit rolled back, the ceiling held.
        assert_eq!(l.balance("minnow"), 10.0);
        assert_eq!(l.balance("whale"), whale_before);
        // A self-transfer near the ceiling is a no-op, not an inflation.
        l.transfer("whale", "whale", 1.0).unwrap();
        assert_eq!(l.balance("whale"), whale_before);
    }

    #[test]
    fn escrow_release_into_full_account_is_refused() {
        let l = Ledger::new();
        max_out(&l, "whale");
        l.deposit("buyer", 20.0);
        let e = l.hold("buyer", 20.0).unwrap();
        assert!(matches!(
            l.release(e, "whale", 5.0),
            Err(MarketError::BalanceOverflow { .. })
        ));
        assert!(matches!(
            l.release_up_to(e, "whale", 5.0),
            Err(MarketError::BalanceOverflow { .. })
        ));
        // The hold is untouched and still pays out elsewhere.
        assert_eq!(l.escrow_remaining(e), Some(20.0));
        l.release(e, "seller", 20.0).unwrap();
    }

    #[test]
    fn escrow_refund_overflow_keeps_the_hold_open() {
        let l = Ledger::new();
        l.deposit("whale", 100.0);
        let e = l.hold("whale", 50.0).unwrap();
        max_out(&l, "whale");
        let err = l.close(e).unwrap_err();
        assert!(matches!(err, MarketError::BalanceOverflow { .. }));
        // Still held (not silently zeroed), so the funds stay counted.
        assert_eq!(l.escrow_remaining(e), Some(50.0));
        // Payouts to a roomy account still drain it; the emptied escrow
        // then closes cleanly.
        l.release(e, "seller", 50.0).unwrap();
        l.close(e).unwrap();
    }

    #[test]
    fn escrow_cannot_overpay() {
        let l = Ledger::new();
        l.deposit("buyer", 10.0);
        let e = l.hold("buyer", 10.0).unwrap();
        assert!(l.release(e, "s", 11.0).is_err());
        l.release(e, "s", 10.0).unwrap();
        assert!(l.release(e, "s", 0.1).is_err());
    }

    #[test]
    fn closed_escrow_rejects_operations() {
        let l = Ledger::new();
        l.deposit("b", 5.0);
        let e = l.hold("b", 5.0).unwrap();
        l.close(e).unwrap();
        assert!(l.close(e).is_err());
        assert!(l.release(e, "s", 1.0).is_err());
    }

    #[test]
    fn unknown_escrow_is_error() {
        let l = Ledger::new();
        assert!(matches!(l.close(42), Err(MarketError::UnknownId(42))));
    }

    #[test]
    fn hold_requires_funds() {
        let l = Ledger::new();
        assert!(l.hold("nobody", 1.0).is_err());
    }

    #[test]
    fn balances_sorted() {
        let l = Ledger::new();
        l.deposit("zed", 1.0);
        l.deposit("amy", 2.0);
        let b = l.balances();
        assert_eq!(b[0].0, "amy");
        assert_eq!(b[1].0, "zed");
    }

    #[test]
    fn escrow_holds_enumerates_open_holds() {
        let l = Ledger::new();
        l.deposit("b", 30.0);
        let e1 = l.hold("b", 10.0).unwrap();
        let e2 = l.hold("b", 5.0).unwrap();
        l.close(e1).unwrap();
        let holds = l.escrow_holds();
        assert_eq!(holds, vec![(e2, "b".to_string(), 5.0)]);
    }

    #[test]
    fn concurrent_transfers_conserve() {
        use std::sync::Arc;
        let l = Arc::new(Ledger::new());
        l.deposit("pool", 1000.0);
        let mut handles = Vec::new();
        for t in 0..4 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                let me = format!("w{t}");
                for _ in 0..100 {
                    let _ = l.transfer("pool", &me, 1.0);
                    let _ = l.transfer(&me, "pool", 1.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Micro-credit storage makes conservation exact, not approximate.
        assert_eq!(l.total_supply(), 1000.0);
    }
}
