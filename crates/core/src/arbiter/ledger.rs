//! Transaction support (Fig. 2): a double-entry in-memory ledger with
//! escrow — the simulated substitute for real payment rails (DESIGN.md
//! substitutions table). Invariant: transfers conserve total supply;
//! only explicit deposits mint currency.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{MarketError, MarketResult};

/// Escrow lifecycle.
#[derive(Debug, Clone, PartialEq)]
enum EscrowState {
    Held,
    Closed,
}

#[derive(Debug, Clone)]
struct Escrow {
    from: String,
    remaining: f64,
    state: EscrowState,
}

/// Double-entry ledger with named accounts and escrow holds.
#[derive(Debug, Default)]
pub struct Ledger {
    accounts: Mutex<HashMap<String, f64>>,
    escrows: Mutex<HashMap<u64, Escrow>>,
    next_escrow: AtomicU64,
}

impl Ledger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint `amount` into an account (enrollment grants, deposits).
    pub fn deposit(&self, account: &str, amount: f64) {
        if amount <= 0.0 {
            return;
        }
        *self
            .accounts
            .lock()
            .entry(account.to_string())
            .or_insert(0.0) += amount;
    }

    /// Current balance (0 for unknown accounts).
    pub fn balance(&self, account: &str) -> f64 {
        self.accounts.lock().get(account).copied().unwrap_or(0.0)
    }

    /// Transfer between accounts; fails on insufficient funds.
    pub fn transfer(&self, from: &str, to: &str, amount: f64) -> MarketResult<()> {
        if amount < 0.0 {
            return Err(MarketError::Invalid("negative transfer".into()));
        }
        if amount == 0.0 {
            return Ok(());
        }
        let mut accounts = self.accounts.lock();
        let available = accounts.get(from).copied().unwrap_or(0.0);
        if available + 1e-9 < amount {
            return Err(MarketError::InsufficientFunds {
                account: from.to_string(),
                needed: amount,
                available,
            });
        }
        *accounts.entry(from.to_string()).or_insert(0.0) -= amount;
        *accounts.entry(to.to_string()).or_insert(0.0) += amount;
        Ok(())
    }

    /// Hold `amount` from an account in escrow; returns the escrow id.
    pub fn hold(&self, from: &str, amount: f64) -> MarketResult<u64> {
        if amount < 0.0 {
            return Err(MarketError::Invalid("negative escrow".into()));
        }
        {
            let mut accounts = self.accounts.lock();
            let available = accounts.get(from).copied().unwrap_or(0.0);
            if available + 1e-9 < amount {
                return Err(MarketError::InsufficientFunds {
                    account: from.to_string(),
                    needed: amount,
                    available,
                });
            }
            *accounts.entry(from.to_string()).or_insert(0.0) -= amount;
        }
        let id = self.next_escrow.fetch_add(1, Ordering::Relaxed);
        self.escrows.lock().insert(
            id,
            Escrow {
                from: from.to_string(),
                remaining: amount,
                state: EscrowState::Held,
            },
        );
        Ok(id)
    }

    /// Pay `amount` out of an escrow to `to`. The escrow stays open with
    /// the remainder.
    pub fn release(&self, escrow: u64, to: &str, amount: f64) -> MarketResult<()> {
        if amount < 0.0 {
            return Err(MarketError::Invalid("negative release".into()));
        }
        let mut escrows = self.escrows.lock();
        let e = escrows
            .get_mut(&escrow)
            .ok_or(MarketError::UnknownId(escrow))?;
        if e.state != EscrowState::Held {
            return Err(MarketError::Invalid("escrow already closed".into()));
        }
        if e.remaining + 1e-9 < amount {
            return Err(MarketError::InsufficientFunds {
                account: format!("escrow#{escrow}"),
                needed: amount,
                available: e.remaining,
            });
        }
        e.remaining -= amount;
        *self.accounts.lock().entry(to.to_string()).or_insert(0.0) += amount;
        Ok(())
    }

    /// Close the escrow, refunding whatever remains to the holder.
    /// Returns the refunded amount.
    pub fn close(&self, escrow: u64) -> MarketResult<f64> {
        let mut escrows = self.escrows.lock();
        let e = escrows
            .get_mut(&escrow)
            .ok_or(MarketError::UnknownId(escrow))?;
        if e.state != EscrowState::Held {
            return Err(MarketError::Invalid("escrow already closed".into()));
        }
        e.state = EscrowState::Closed;
        let refund = e.remaining;
        e.remaining = 0.0;
        *self.accounts.lock().entry(e.from.clone()).or_insert(0.0) += refund;
        Ok(refund)
    }

    /// Funds still held in an open escrow (`None` for unknown/closed).
    pub fn escrow_remaining(&self, escrow: u64) -> Option<f64> {
        self.escrows
            .lock()
            .get(&escrow)
            .filter(|e| e.state == EscrowState::Held)
            .map(|e| e.remaining)
    }

    /// Total currency across accounts and open escrows (conservation
    /// invariant: only `deposit` changes this).
    pub fn total_supply(&self) -> f64 {
        let accounts: f64 = self.accounts.lock().values().sum();
        let escrowed: f64 = self
            .escrows
            .lock()
            .values()
            .filter(|e| e.state == EscrowState::Held)
            .map(|e| e.remaining)
            .sum();
        accounts + escrowed
    }

    /// All account balances, sorted by name (for reports).
    pub fn balances(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .accounts
            .lock()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_and_transfer() {
        let l = Ledger::new();
        l.deposit("alice", 100.0);
        l.transfer("alice", "bob", 30.0).unwrap();
        assert_eq!(l.balance("alice"), 70.0);
        assert_eq!(l.balance("bob"), 30.0);
        assert_eq!(l.total_supply(), 100.0);
    }

    #[test]
    fn overdraft_refused() {
        let l = Ledger::new();
        l.deposit("alice", 10.0);
        let err = l.transfer("alice", "bob", 20.0).unwrap_err();
        assert!(matches!(err, MarketError::InsufficientFunds { .. }));
        assert_eq!(l.balance("alice"), 10.0);
        assert_eq!(l.balance("bob"), 0.0);
    }

    #[test]
    fn zero_and_negative_transfers() {
        let l = Ledger::new();
        l.deposit("a", 5.0);
        assert!(l.transfer("a", "b", 0.0).is_ok());
        assert!(l.transfer("a", "b", -1.0).is_err());
    }

    #[test]
    fn escrow_lifecycle_conserves_supply() {
        let l = Ledger::new();
        l.deposit("buyer", 100.0);
        let e = l.hold("buyer", 60.0).unwrap();
        assert_eq!(l.balance("buyer"), 40.0);
        assert_eq!(l.total_supply(), 100.0);

        l.release(e, "seller", 45.0).unwrap();
        assert_eq!(l.balance("seller"), 45.0);
        assert_eq!(l.total_supply(), 100.0);

        let refund = l.close(e).unwrap();
        assert_eq!(refund, 15.0);
        assert_eq!(l.balance("buyer"), 55.0);
        assert_eq!(l.total_supply(), 100.0);
    }

    #[test]
    fn escrow_cannot_overpay() {
        let l = Ledger::new();
        l.deposit("buyer", 10.0);
        let e = l.hold("buyer", 10.0).unwrap();
        assert!(l.release(e, "s", 11.0).is_err());
        l.release(e, "s", 10.0).unwrap();
        assert!(l.release(e, "s", 0.1).is_err());
    }

    #[test]
    fn closed_escrow_rejects_operations() {
        let l = Ledger::new();
        l.deposit("b", 5.0);
        let e = l.hold("b", 5.0).unwrap();
        l.close(e).unwrap();
        assert!(l.close(e).is_err());
        assert!(l.release(e, "s", 1.0).is_err());
    }

    #[test]
    fn unknown_escrow_is_error() {
        let l = Ledger::new();
        assert!(matches!(l.close(42), Err(MarketError::UnknownId(42))));
    }

    #[test]
    fn hold_requires_funds() {
        let l = Ledger::new();
        assert!(l.hold("nobody", 1.0).is_err());
    }

    #[test]
    fn balances_sorted() {
        let l = Ledger::new();
        l.deposit("zed", 1.0);
        l.deposit("amy", 2.0);
        let b = l.balances();
        assert_eq!(b[0].0, "amy");
        assert_eq!(b[1].0, "zed");
    }

    #[test]
    fn concurrent_transfers_conserve() {
        use std::sync::Arc;
        let l = Arc::new(Ledger::new());
        l.deposit("pool", 1000.0);
        let mut handles = Vec::new();
        for t in 0..4 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                let me = format!("w{t}");
                for _ in 0..100 {
                    let _ = l.transfer("pool", &me, 1.0);
                    let _ = l.transfer(&me, "pool", 1.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!((l.total_supply() - 1000.0).abs() < 1e-6);
    }
}
