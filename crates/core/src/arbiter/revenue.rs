//! The Revenue Allocation Engine (Fig. 2): "allocates wtpᵢ among the
//! sellers that contributed datasets used to build mᵢ and the arbiter."
//!
//! Combines the market design's component-4 choice (how much credit each
//! row/dataset deserves) with component 5 (propagating through
//! provenance). The Shapley option plays the *coverage game*: a
//! coalition of datasets is worth the fraction of mashup rows it can
//! fully derive — so redundant datasets split credit and pivotal ones
//! collect it, with Monte-Carlo sampling above the exact limit.

use rand::SeedableRng;

use dmp_mechanism::design::{MarketDesign, RevenueAllocationMethod, RevenueSharingMethod};
use dmp_relation::{DatasetId, Relation};
use dmp_valuation::banzhaf::{leave_one_out, normalize_to};
use dmp_valuation::shapley::{exact_shapley, monte_carlo_shapley, CharacteristicFn};
use dmp_valuation::sharing::{share_revenue, DatasetShare, SharingRule};
use dmp_valuation::RowAllocation;

/// Compute each contributing dataset's share of `price` for a sold
/// mashup, per the design's revenue allocation + sharing components.
/// The returned shares sum to `price` (budget balance); datasets absent
/// from provenance receive nothing.
pub fn dataset_shares(design: &MarketDesign, mashup: &Relation, price: f64) -> Vec<DatasetShare> {
    let datasets = mashup.full_provenance().datasets();
    if datasets.is_empty() || price <= 0.0 {
        return Vec::new();
    }

    match design.revenue_allocation {
        RevenueAllocationMethod::UniformPerRow => {
            let rows = RowAllocation::uniform(mashup, price);
            let rule = match design.revenue_sharing {
                RevenueSharingMethod::ByProvenance => SharingRule::ProportionalToAtoms,
                RevenueSharingMethod::EqualPerDataset => SharingRule::EqualPerDataset,
            };
            share_revenue(mashup, &rows, rule)
        }
        RevenueAllocationMethod::Shapley { samples } => {
            let weights = coverage_shapley(mashup, &datasets, samples);
            weights_to_shares(&datasets, &weights, price)
        }
        RevenueAllocationMethod::LeaveOneOut => {
            let game = coverage_game(mashup, &datasets);
            let weights = leave_one_out(&game);
            weights_to_shares(&datasets, &weights, price)
        }
    }
}

fn weights_to_shares(datasets: &[DatasetId], weights: &[f64], price: f64) -> Vec<DatasetShare> {
    let normalized = normalize_to(weights, price);
    datasets
        .iter()
        .zip(normalized)
        .map(|(&dataset, amount)| DatasetShare { dataset, amount })
        .collect()
}

/// The coverage game: `v(S)` = fraction of mashup rows whose provenance
/// datasets are all within coalition `S`.
fn coverage_game(mashup: &Relation, datasets: &[DatasetId]) -> CharacteristicFn {
    let index_of = |d: DatasetId| datasets.iter().position(|&x| x == d);
    // Precompute each row's dataset mask.
    let row_masks: Vec<u64> = mashup
        .rows()
        .iter()
        .map(|r| {
            let mut m = 0u64;
            for d in r.provenance().datasets() {
                if let Some(i) = index_of(d) {
                    m |= 1 << i;
                }
            }
            m
        })
        .collect();
    let total = row_masks.len().max(1) as f64;
    CharacteristicFn::new(datasets.len(), move |mask| {
        row_masks
            .iter()
            .filter(|&&rm| rm != 0 && rm & mask == rm)
            .count() as f64
            / total
    })
}

/// Shapley weights of the coverage game, exact when feasible.
fn coverage_shapley(mashup: &Relation, datasets: &[DatasetId], samples: usize) -> Vec<f64> {
    let game = coverage_game(mashup, datasets);
    if datasets.len() <= 16 {
        exact_shapley(&game)
    } else {
        // Seed derived from the mashup shape keeps settlements replayable.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x9e37 ^ (mashup.len() as u64) << 8);
        monte_carlo_shapley(&game, samples.max(32), &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_mechanism::design::MarketDesign;
    use dmp_relation::ops::JoinKind;
    use dmp_relation::{DataType, RelationBuilder, Value};
    use dmp_valuation::sharing::total_shared;

    fn two_source_mashup() -> Relation {
        let l = RelationBuilder::new("l")
            .column("k", DataType::Int)
            .row(vec![Value::Int(1)])
            .row(vec![Value::Int(2)])
            .source(DatasetId(1))
            .build()
            .unwrap();
        let r = RelationBuilder::new("r")
            .column("k", DataType::Int)
            .row(vec![Value::Int(1)])
            .row(vec![Value::Int(2)])
            .source(DatasetId(2))
            .build()
            .unwrap();
        l.join(&r, &[("k", "k")], JoinKind::Inner).unwrap()
    }

    #[test]
    fn uniform_provenance_splits_evenly() {
        let design = MarketDesign::internal_welfare(); // UniformPerRow + ByProvenance
        let shares = dataset_shares(&design, &two_source_mashup(), 100.0);
        assert_eq!(shares.len(), 2);
        assert!((shares[0].amount - 50.0).abs() < 1e-9);
        assert!((total_shared(&shares) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn shapley_split_on_complementary_join() {
        // Both datasets are essential for every row: symmetric Shapley.
        let design = MarketDesign::external_revenue(1); // Shapley
        let shares = dataset_shares(&design, &two_source_mashup(), 80.0);
        assert_eq!(shares.len(), 2);
        assert!((shares[0].amount - 40.0).abs() < 1e-6, "{shares:?}");
        assert!((total_shared(&shares) - 80.0).abs() < 1e-6);
    }

    #[test]
    fn leave_one_out_on_complementary_join_falls_back_evenly() {
        // LOO of a pure join: removing either dataset kills all rows, so
        // both get equal (full) marginals -> even split after normalizing.
        let mut design = MarketDesign::external_revenue(1);
        design.revenue_allocation = RevenueAllocationMethod::LeaveOneOut;
        let shares = dataset_shares(&design, &two_source_mashup(), 60.0);
        assert!((shares[0].amount - 30.0).abs() < 1e-9);
    }

    #[test]
    fn union_mashup_rewards_proportionally() {
        // dataset 1 contributes 3 rows, dataset 2 contributes 1.
        let a = RelationBuilder::new("a")
            .column("x", DataType::Int)
            .rows((0..3).map(|i| vec![Value::Int(i)]))
            .source(DatasetId(1))
            .build()
            .unwrap();
        let b = RelationBuilder::new("b")
            .column("x", DataType::Int)
            .row(vec![Value::Int(10)])
            .source(DatasetId(2))
            .build()
            .unwrap();
        let m = a.union(&b).unwrap();
        let design = MarketDesign::internal_welfare();
        let shares = dataset_shares(&design, &m, 40.0);
        let d1 = shares.iter().find(|s| s.dataset == DatasetId(1)).unwrap();
        assert!((d1.amount - 30.0).abs() < 1e-9);

        // Shapley on the union coverage game gives the same 3:1 (additive
        // game).
        let design = MarketDesign::external_revenue(2);
        let shares = dataset_shares(&design, &m, 40.0);
        let d1 = shares.iter().find(|s| s.dataset == DatasetId(1)).unwrap();
        assert!((d1.amount - 30.0).abs() < 1e-6, "{shares:?}");
    }

    #[test]
    fn empty_or_free_mashups_share_nothing() {
        let design = MarketDesign::internal_welfare();
        assert!(dataset_shares(&design, &two_source_mashup(), 0.0).is_empty());
        let bare = RelationBuilder::new("bare")
            .column("x", DataType::Int)
            .row(vec![Value::Int(1)])
            .build()
            .unwrap(); // no provenance
        assert!(dataset_shares(&design, &bare, 10.0).is_empty());
    }

    #[test]
    fn budget_balance_across_methods() {
        let m = two_source_mashup();
        for design in [
            MarketDesign::internal_welfare(),
            MarketDesign::external_revenue(3),
            MarketDesign::posted_price_baseline(1.0),
        ] {
            let shares = dataset_shares(&design, &m, 33.0);
            assert!(
                (total_shared(&shares) - 33.0).abs() < 1e-6,
                "{}: {shares:?}",
                design.name
            );
        }
    }
}
