//! The WTP-Evaluator (Fig. 2): "first runs the WTP-function code on each
//! mashup and measures the degree of satisfaction achieved. With the
//! degree of satisfaction, it then computes the amount of money (or other
//! incentives) the buyer is willing to pay."

use dmp_mechanism::wtp::{TaskKind, WtpFunction};
use dmp_relation::Relation;
use dmp_tasks::{ClassifierTask, QueryCompletenessTask, RegressionTask, Satisfaction, Task};

/// Result of evaluating one mashup against one WTP-function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Degree of satisfaction in [0, 1].
    pub satisfaction: f64,
    /// The buyer's willingness to pay at that satisfaction.
    pub bid: f64,
}

/// Instantiate the executable task for a WTP task package. The
/// `coverage` closure context comes from the mashup builder (attribute
/// coverage tasks need no model).
pub fn make_task(kind: &TaskKind, attributes: &[String]) -> Box<dyn Task> {
    match kind {
        TaskKind::Classification { label } => Box::new(ClassifierTask::logistic(label.clone())),
        TaskKind::Regression { target } => Box::new(RegressionTask::new(target.clone())),
        TaskKind::AggregateCompleteness {
            group_by,
            expected_groups,
        } => Box::new(QueryCompletenessTask::new(
            group_by.clone(),
            *expected_groups,
        )),
        TaskKind::AttributeCoverage => Box::new(dmp_tasks::report::CoverageTask::new(
            attributes.iter().cloned(),
        )),
    }
}

/// Evaluate a mashup: run the task, apply the price curve, and zero the
/// bid when intrinsic mashup-level constraints reject the candidate.
pub fn evaluate(wtp: &WtpFunction, mashup: &Relation) -> Evaluation {
    if !wtp.constraints.admits_mashup(mashup) {
        return Evaluation {
            satisfaction: 0.0,
            bid: 0.0,
        };
    }
    let task = make_task(&wtp.task, &wtp.attributes);
    let satisfaction: Satisfaction = task.evaluate(mashup);
    let bid = wtp.curve.price(satisfaction.value());
    Evaluation {
        satisfaction: satisfaction.value(),
        bid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_mechanism::wtp::{IntrinsicConstraints, PriceCurve};
    use dmp_relation::{DataType, DatasetId, RelationBuilder, Value};
    use dmp_tasks::synth::gaussian_blobs;

    #[test]
    fn classification_task_bids_follow_step_curve() {
        let rel = gaussian_blobs(400, 2, 3.0, 2);
        let mut wtp = WtpFunction::simple(
            "b1",
            ["x1", "x2"],
            PriceCurve::Step(vec![(0.8, 100.0), (0.9, 150.0)]),
        );
        wtp.task = TaskKind::Classification {
            label: "label".into(),
        };
        let ev = evaluate(&wtp, &rel);
        assert!(
            ev.satisfaction > 0.9,
            "separable blobs: {}",
            ev.satisfaction
        );
        assert_eq!(ev.bid, 150.0);
    }

    #[test]
    fn hard_task_bids_zero_below_threshold() {
        let rel = gaussian_blobs(400, 2, 0.05, 2); // overlapping classes
        let mut wtp =
            WtpFunction::simple("b1", ["x1", "x2"], PriceCurve::Step(vec![(0.95, 100.0)]));
        wtp.task = TaskKind::Classification {
            label: "label".into(),
        };
        let ev = evaluate(&wtp, &rel);
        assert_eq!(ev.bid, 0.0, "satisfaction {} below 0.95", ev.satisfaction);
    }

    #[test]
    fn coverage_task_for_attribute_acquisition() {
        let rel = RelationBuilder::new("m")
            .column("a", DataType::Int)
            .column("b", DataType::Int)
            .row(vec![Value::Int(1), Value::Int(2)])
            .source(DatasetId(1))
            .build()
            .unwrap();
        let wtp = WtpFunction::simple(
            "b1",
            ["a", "b"],
            PriceCurve::Linear {
                min_satisfaction: 0.0,
                max_price: 50.0,
            },
        );
        let ev = evaluate(&wtp, &rel);
        assert!((ev.satisfaction - 1.0).abs() < 1e-9);
        assert!((ev.bid - 50.0).abs() < 1e-9);
    }

    #[test]
    fn constraint_rejection_zeroes_bid() {
        let rel = RelationBuilder::new("m")
            .column("a", DataType::Int)
            .row(vec![Value::Null])
            .row(vec![Value::Int(1)])
            .source(DatasetId(1))
            .build()
            .unwrap();
        let mut wtp = WtpFunction::simple("b1", ["a"], PriceCurve::Constant(10.0));
        wtp.constraints = IntrinsicConstraints {
            max_missing_ratio: Some(0.1),
            ..Default::default()
        };
        let ev = evaluate(&wtp, &rel);
        assert_eq!(ev.bid, 0.0);
    }

    #[test]
    fn aggregate_completeness_task() {
        let mut b = RelationBuilder::new("m").column("state", DataType::Str);
        for s in ["il", "ny", "ca"] {
            for _ in 0..3 {
                b = b.row(vec![Value::str(s)]);
            }
        }
        let rel = b.source(DatasetId(2)).build().unwrap();
        let mut wtp = WtpFunction::simple(
            "b1",
            ["state"],
            PriceCurve::Linear {
                min_satisfaction: 0.0,
                max_price: 100.0,
            },
        );
        wtp.task = TaskKind::AggregateCompleteness {
            group_by: "state".into(),
            expected_groups: 6,
        };
        let ev = evaluate(&wtp, &rel);
        assert!((ev.satisfaction - 0.5).abs() < 1e-9);
        assert!((ev.bid - 50.0).abs() < 1e-9);
    }

    #[test]
    fn make_task_names() {
        assert_eq!(
            make_task(&TaskKind::AttributeCoverage, &["a".into()]).name(),
            "coverage"
        );
        assert_eq!(
            make_task(&TaskKind::Regression { target: "y".into() }, &[]).name(),
            "regression"
        );
    }
}
