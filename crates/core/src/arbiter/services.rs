//! Arbiter services (§4.1): "because the arbiter knows the supply and
//! demand for datasets, it can use this information to offer additional
//! services" — dataset recommendations via item-based collaborative
//! filtering [83], and demand reports that tell opportunistic sellers
//! (§7.1) which attributes buyers want but nobody supplies.

use std::collections::{BTreeMap, BTreeSet};

use dmp_relation::DatasetId;

/// A purchase record for the recommender: which buyer bought which
/// datasets (as parts of mashups).
#[derive(Debug, Clone)]
pub struct Purchase {
    /// Buyer principal.
    pub buyer: String,
    /// Datasets in the purchased mashup.
    pub datasets: Vec<DatasetId>,
}

/// Item-based collaborative filtering (Sarwar et al. [83]): cosine
/// similarity between dataset co-purchase vectors, recommendations are
/// the nearest items to what the buyer already bought, excluding those.
pub fn recommend(purchases: &[Purchase], buyer: &str, k: usize) -> Vec<DatasetId> {
    // dataset -> set of buyers.
    let mut buyers_of: BTreeMap<DatasetId, BTreeSet<&str>> = BTreeMap::new();
    let mut bought_by_target: BTreeSet<DatasetId> = BTreeSet::new();
    for p in purchases {
        for &d in &p.datasets {
            buyers_of.entry(d).or_default().insert(p.buyer.as_str());
            if p.buyer == buyer {
                bought_by_target.insert(d);
            }
        }
    }
    if bought_by_target.is_empty() {
        // Cold start: most-purchased datasets.
        let mut pop: Vec<(DatasetId, usize)> =
            buyers_of.iter().map(|(&d, b)| (d, b.len())).collect();
        pop.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        return pop.into_iter().take(k).map(|(d, _)| d).collect();
    }

    let cosine = |a: &BTreeSet<&str>, b: &BTreeSet<&str>| -> f64 {
        let inter = a.intersection(b).count() as f64;
        if a.is_empty() || b.is_empty() {
            0.0
        } else {
            inter / ((a.len() as f64).sqrt() * (b.len() as f64).sqrt())
        }
    };

    let mut scores: BTreeMap<DatasetId, f64> = BTreeMap::new();
    for &owned in &bought_by_target {
        let owned_buyers = &buyers_of[&owned];
        for (&cand, cand_buyers) in &buyers_of {
            if bought_by_target.contains(&cand) {
                continue;
            }
            *scores.entry(cand).or_insert(0.0) += cosine(owned_buyers, cand_buyers);
        }
    }
    let mut ranked: Vec<(DatasetId, f64)> = scores.into_iter().filter(|(_, s)| *s > 0.0).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.into_iter().take(k).map(|(d, _)| d).collect()
}

/// Popularity baseline for E15: most-purchased datasets the buyer does
/// not already own.
pub fn recommend_popular(purchases: &[Purchase], buyer: &str, k: usize) -> Vec<DatasetId> {
    let mut owned: BTreeSet<DatasetId> = BTreeSet::new();
    let mut counts: BTreeMap<DatasetId, usize> = BTreeMap::new();
    for p in purchases {
        for &d in &p.datasets {
            *counts.entry(d).or_insert(0) += 1;
            if p.buyer == buyer {
                owned.insert(d);
            }
        }
    }
    let mut ranked: Vec<(DatasetId, usize)> = counts
        .into_iter()
        .filter(|(d, _)| !owned.contains(d))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.into_iter().take(k).map(|(d, _)| d).collect()
}

/// Unmet demand: attributes requested by pending offers that the mashup
/// builder could not source, with request counts. "Because the arbiter
/// knows that b1 would benefit from attribute ⟨e⟩, [...] the arbiter can
/// ask Seller 3 to obtain a dataset s3 = ⟨e⟩ for money" (§7.1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DemandReport {
    /// `(attribute, number of offers wanting it)`, most demanded first.
    pub missing_attributes: Vec<(String, usize)>,
}

/// Build a demand report from per-offer missing-attribute lists.
pub fn demand_report<'a>(
    missing_per_offer: impl IntoIterator<Item = &'a [String]>,
) -> DemandReport {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for missing in missing_per_offer {
        for attr in missing {
            *counts.entry(attr.as_str()).or_insert(0) += 1;
        }
    }
    let mut v: Vec<(String, usize)> = counts
        .into_iter()
        .map(|(a, c)| (a.to_string(), c))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    DemandReport {
        missing_attributes: v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DatasetId {
        DatasetId(i)
    }

    fn history() -> Vec<Purchase> {
        vec![
            Purchase {
                buyer: "a".into(),
                datasets: vec![d(1), d(2)],
            },
            Purchase {
                buyer: "b".into(),
                datasets: vec![d(1), d(2), d(3)],
            },
            Purchase {
                buyer: "c".into(),
                datasets: vec![d(2), d(3)],
            },
            Purchase {
                buyer: "e".into(),
                datasets: vec![d(4)],
            },
        ]
    }

    #[test]
    fn recommends_co_purchased_items() {
        // buyer "a" bought 1,2; buyers of 2 also bought 3 => recommend 3.
        let recs = recommend(&history(), "a", 2);
        assert_eq!(recs.first(), Some(&d(3)), "recs: {recs:?}");
        assert!(!recs.contains(&d(1)) && !recs.contains(&d(2)), "no repeats");
    }

    #[test]
    fn cold_start_falls_back_to_popularity() {
        let recs = recommend(&history(), "newbuyer", 2);
        assert_eq!(recs[0], d(2), "dataset 2 has 3 distinct buyers");
    }

    #[test]
    fn disconnected_items_not_recommended() {
        let recs = recommend(&history(), "a", 10);
        assert!(!recs.contains(&d(4)), "no buyer overlap with 4");
    }

    #[test]
    fn popularity_baseline_excludes_owned() {
        let recs = recommend_popular(&history(), "a", 3);
        assert_eq!(recs[0], d(3));
        assert!(!recs.contains(&d(1)));
    }

    #[test]
    fn demand_report_counts_and_ranks() {
        let offers: Vec<Vec<String>> = vec![vec!["e".into(), "f".into()], vec!["e".into()], vec![]];
        let report = demand_report(offers.iter().map(|v| v.as_slice()));
        assert_eq!(
            report.missing_attributes,
            vec![("e".to_string(), 2), ("f".to_string(), 1)]
        );
    }

    #[test]
    fn empty_history_empty_recs() {
        assert!(recommend(&[], "a", 3).is_empty());
        assert!(recommend_popular(&[], "a", 3).is_empty());
        assert_eq!(demand_report(std::iter::empty()), DemandReport::default());
    }
}
