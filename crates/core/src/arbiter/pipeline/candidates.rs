//! Stage 2: build + evaluate candidate mashups per pending offer.

use rayon::prelude::*;

use dmp_relation::DatasetId;

use crate::arbiter::mashup_builder::{build_mashups, BuiltMashup};
use crate::arbiter::pricing::RoundBid;
use crate::arbiter::wtp_evaluator::evaluate;
use crate::market::{DataMarket, Offer};
use crate::trust::AuditEvent;

use super::{NegotiationRequest, RoundContext, RoundStage};

/// Per-offer candidate evaluation: the mashup builder + WTP-evaluator +
/// admissibility / viability filter + seeded tie-breaking of the paper's
/// arbiter (Fig. 2).
///
/// Offers are independent of one another, so with `parallel` set (the
/// default) the per-offer work fans out across rayon workers. Every
/// offer draws tie-breaks from its own [`RoundContext::offer_rng`]
/// stream and results merge back in offer order, so the parallel and
/// sequential paths are byte-identical for a fixed market seed (audit
/// chain included — events are recorded during the ordered merge, never
/// from workers).
#[derive(Debug, Clone, Copy)]
pub struct CandidateStage {
    /// Evaluate offers on rayon workers (true) or inline (false).
    pub parallel: bool,
}

impl Default for CandidateStage {
    fn default() -> Self {
        CandidateStage { parallel: true }
    }
}

impl CandidateStage {
    /// The sequential reference path (differential tests, debugging).
    pub fn sequential() -> Self {
        CandidateStage { parallel: false }
    }
}

/// Outcome of evaluating one offer's candidates.
struct OfferOutcome {
    offer_id: u64,
    buyer: String,
    /// Winning candidate, if any: (mashup, satisfaction, bid).
    best: Option<(BuiltMashup, f64, f64)>,
    /// Attributes unserved when no candidate exists at all.
    all_attributes: Vec<String>,
}

impl RoundStage for CandidateStage {
    fn name(&self) -> &'static str {
        "candidates"
    }

    fn run(&self, market: &DataMarket, ctx: &mut RoundContext) {
        let pending = std::mem::take(&mut ctx.pending);

        let outcomes: Vec<OfferOutcome> = if self.parallel {
            pending
                .par_iter()
                .map(|offer| evaluate_offer(market, ctx, offer))
                .collect()
        } else {
            pending
                .iter()
                .map(|offer| evaluate_offer(market, ctx, offer))
                .collect()
        };

        // Ordered merge: audit events, bids, and negotiation requests are
        // appended in offer order regardless of worker scheduling.
        for outcome in outcomes {
            match outcome.best {
                Some((m, satisfaction, bid)) => {
                    market.audit.record(AuditEvent::MashupBuilt {
                        offer: outcome.offer_id,
                        datasets: m.datasets.clone(),
                    });
                    if !m.missing.is_empty() {
                        ctx.missing.push(m.missing.clone());
                        let mut owners: Vec<String> = m
                            .datasets
                            .iter()
                            .filter_map(|&d| market.metadata.get(d).map(|e| e.owner))
                            .collect();
                        owners.sort();
                        owners.dedup();
                        ctx.negotiations.push(NegotiationRequest {
                            offer_id: outcome.offer_id,
                            buyer: outcome.buyer.clone(),
                            missing: m.missing.clone(),
                            candidate_sellers: owners,
                        });
                    }
                    ctx.bids.push(RoundBid {
                        offer_id: outcome.offer_id,
                        buyer: outcome.buyer,
                        bid,
                        satisfaction,
                        datasets: m.datasets.clone(),
                        reserve_floor: market.reserve_floor(&m.datasets),
                        license_multiplier: market.license_multiplier(&m.datasets),
                    });
                    ctx.best_mashups.insert(outcome.offer_id, m);
                }
                None => {
                    // Nothing sellable: record the full attribute list as
                    // unmet when no mashup exists at all.
                    ctx.missing.push(outcome.all_attributes.clone());
                    ctx.negotiations.push(NegotiationRequest {
                        offer_id: outcome.offer_id,
                        buyer: outcome.buyer,
                        missing: outcome.all_attributes,
                        candidate_sellers: Vec::new(),
                    });
                }
            }
        }

        ctx.pending = pending;
    }
}

/// Evaluate one offer: candidates in, best admissible-viable bid out.
fn evaluate_offer(market: &DataMarket, ctx: &RoundContext, offer: &Offer) -> OfferOutcome {
    let mashups = build_mashups(&market.metadata, &offer.wtp, market.config.max_candidates);
    // Prefer *viable* candidates: ones whose seller reserve floor the
    // buyer's bid can possibly cover — otherwise a single overpriced
    // dataset would block an offer that an equivalent cheaper mashup
    // could serve. Ties between equally-priced candidates break
    // randomly, so equivalent suppliers share demand instead of the
    // first-registered seller capturing it.
    let mut evaluated: Vec<(BuiltMashup, f64, f64, bool)> = Vec::new();
    for m in mashups {
        if !market.admissible(&m, offer, ctx.now, ctx.round) {
            continue;
        }
        let ev = evaluate(&offer.wtp, &m.relation);
        if ev.bid <= 0.0 {
            continue;
        }
        let mult = market.license_multiplier(&m.datasets).max(1.0);
        let viable = ev.bid * mult + 1e-9 >= market.reserve_floor(&m.datasets);
        evaluated.push((m, ev.satisfaction, ev.bid, viable));
    }
    let any_viable = evaluated.iter().any(|(_, _, _, v)| *v);
    if any_viable {
        evaluated.retain(|(_, _, _, v)| *v);
    }
    let best_bid = evaluated
        .iter()
        .map(|(_, _, b, _)| *b)
        .fold(f64::NEG_INFINITY, f64::max);
    let tied: Vec<usize> = evaluated
        .iter()
        .enumerate()
        .filter(|(_, (_, _, b, _))| (*b - best_bid).abs() < 1e-9)
        .map(|(i, _)| i)
        .collect();
    let best = if tied.is_empty() {
        None
    } else {
        use rand::Rng;
        let pick = tied[ctx.offer_rng(offer.id).gen_range(0..tied.len())];
        let (m, s, b, _) = evaluated.swap_remove(pick);
        Some((m, s, b))
    };
    OfferOutcome {
        offer_id: offer.id,
        buyer: offer.wtp.buyer.clone(),
        best,
        all_attributes: offer.wtp.attributes.clone(),
    }
}

impl DataMarket {
    /// Is a mashup's dataset set admissible for this buyer/offer?
    /// Checks intrinsic constraints, exclusivity holds, and
    /// contextual-integrity policies (§4.4).
    pub(crate) fn admissible(
        &self,
        mashup: &BuiltMashup,
        offer: &Offer,
        now: u64,
        round: u64,
    ) -> bool {
        let buyer_role = self
            .participants
            .lock()
            .get(&offer.wtp.buyer)
            .map(|p| p.role.clone())
            .unwrap_or_default();
        let holds = self.exclusive_holds.lock();
        let policies = self.ci_policies.lock();
        for &d in &mashup.datasets {
            let entry = match self.metadata.get(d) {
                Some(e) => e,
                None => return false,
            };
            if !offer
                .wtp
                .constraints
                .admits_dataset(entry.registered_at, &entry.owner, now)
            {
                return false;
            }
            if let Some((holder, until)) = holds.get(&d) {
                if *until >= round && holder != &offer.wtp.buyer {
                    return false; // exclusively held by someone else
                }
            }
            if let Some(policy) = policies.get(&d) {
                if !policy.permits(&buyer_role, &offer.purpose) {
                    return false;
                }
            }
        }
        true
    }

    /// License multiplier for a dataset set: the max of individual
    /// multipliers (one exclusive dataset taxes the whole mashup).
    pub(crate) fn license_multiplier(&self, datasets: &[DatasetId]) -> f64 {
        let licenses = self.licenses.lock();
        datasets
            .iter()
            .map(|d| {
                licenses
                    .get(d)
                    .cloned()
                    .unwrap_or_default()
                    .price_multiplier()
            })
            .fold(1.0, f64::max)
    }

    /// Sum of seller reserve prices over a dataset set.
    pub(crate) fn reserve_floor(&self, datasets: &[DatasetId]) -> f64 {
        let reserves = self.reserves.lock();
        datasets
            .iter()
            .map(|d| reserves.get(d).copied().unwrap_or(0.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketConfig;
    use dmp_mechanism::design::MarketDesign;
    use dmp_mechanism::wtp::{PriceCurve, WtpFunction};
    use dmp_relation::builder::keyed_rel;

    fn market_with_twin_sellers(seed: u64) -> DataMarket {
        let market = DataMarket::new(
            MarketConfig::external(seed).with_design(MarketDesign::posted_price_baseline(10.0)),
        );
        // Two sellers with interchangeable (same-schema, but not
        // near-duplicate — those the DoD anchor dedup would collapse)
        // products ⇒ tied best bids.
        market
            .seller("alice")
            .share(keyed_rel("t_a", &[(1, "x"), (2, "y")]))
            .unwrap();
        market
            .seller("bob")
            .share(keyed_rel("t_b", &[(10, "p"), (20, "q")]))
            .unwrap();
        let b = market.buyer("buyer");
        b.deposit(500.0);
        market
            .submit_wtp(WtpFunction::simple(
                "buyer",
                ["k", "v"],
                PriceCurve::Constant(30.0),
            ))
            .unwrap();
        market
    }

    fn winner_of(market: &DataMarket, stage: CandidateStage) -> Vec<DatasetId> {
        let mut ctx = RoundContext::open(market);
        super::super::ExpiryStage.run(market, &mut ctx);
        stage.run(market, &mut ctx);
        assert_eq!(ctx.bids.len(), 1);
        ctx.bids[0].datasets.clone()
    }

    #[test]
    fn tie_breaking_is_deterministic_for_a_fixed_seed() {
        let first = winner_of(&market_with_twin_sellers(7), CandidateStage::default());
        for _ in 0..5 {
            let again = winner_of(&market_with_twin_sellers(7), CandidateStage::default());
            assert_eq!(first, again, "same seed must pick the same tied winner");
        }
    }

    #[test]
    fn parallel_and_sequential_pick_identical_winners() {
        for seed in 0..20 {
            let par = winner_of(&market_with_twin_sellers(seed), CandidateStage::default());
            let seq = winner_of(
                &market_with_twin_sellers(seed),
                CandidateStage::sequential(),
            );
            assert_eq!(par, seq, "seed {seed}: rayon path diverged from sequential");
        }
    }

    #[test]
    fn tie_breaking_varies_across_seeds() {
        // Not a fixed winner: across seeds, both sellers get picked.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..30 {
            seen.insert(winner_of(
                &market_with_twin_sellers(seed),
                CandidateStage::default(),
            ));
        }
        assert_eq!(
            seen.len(),
            2,
            "tied suppliers should share demand across seeds"
        );
    }

    #[test]
    fn viability_filter_prefers_coverable_candidate() {
        let market = DataMarket::new(
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0)),
        );
        let pricey = market.seller("pricey");
        let id = pricey
            .share(keyed_rel("gold", &[(1, "x"), (2, "y")]))
            .unwrap();
        pricey.set_reserve(id, 500.0).unwrap(); // bid can never cover this
        market
            .seller("cheap")
            .share(keyed_rel("base", &[(10, "p"), (20, "q")]))
            .unwrap();
        let b = market.buyer("b");
        b.deposit(100.0);
        market
            .submit_wtp(WtpFunction::simple(
                "b",
                ["k", "v"],
                PriceCurve::Constant(30.0),
            ))
            .unwrap();

        let mut ctx = RoundContext::open(&market);
        super::super::ExpiryStage.run(&market, &mut ctx);
        CandidateStage::default().run(&market, &mut ctx);
        assert_eq!(ctx.bids.len(), 1);
        let floor = market.reserve_floor(&ctx.bids[0].datasets);
        assert!(
            ctx.bids[0].bid + 1e-9 >= floor,
            "viability filter must drop the uncoverable candidate (floor {floor})"
        );
    }

    #[test]
    fn any_viable_branch_keeps_unviable_best_when_nothing_viable() {
        // Only one product and its reserve exceeds any possible bid:
        // no candidate is viable, so the unviable best is retained
        // (the offer stays pending rather than reported unserved).
        let market = DataMarket::new(
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0)),
        );
        let s = market.seller("s");
        let id = s.share(keyed_rel("t", &[(1, "x")])).unwrap();
        s.set_reserve(id, 1_000.0).unwrap();
        let b = market.buyer("b");
        b.deposit(100.0);
        market
            .submit_wtp(WtpFunction::simple(
                "b",
                ["k", "v"],
                PriceCurve::Constant(30.0),
            ))
            .unwrap();

        let mut ctx = RoundContext::open(&market);
        super::super::ExpiryStage.run(&market, &mut ctx);
        CandidateStage::default().run(&market, &mut ctx);
        assert_eq!(
            ctx.bids.len(),
            1,
            "unviable best still bids (clearing drops it)"
        );
        assert!(ctx.bids[0].reserve_floor > ctx.bids[0].bid);
    }
}
