//! Per-round shared state threaded through the pipeline stages.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arbiter::mashup_builder::BuiltMashup;
use crate::arbiter::pricing::{RoundBid, Sale};
use crate::arbiter::services::demand_report;
use crate::market::{DataMarket, Offer};

use super::{NegotiationRequest, RoundReport};

/// Mutable state one round accumulates while flowing through the
/// stages. Persistent market state (ledger, audit chain, metadata,
/// lineage, offer book) stays on the [`DataMarket`]; the context only
/// carries what this round has produced so far.
#[derive(Debug)]
pub struct RoundContext {
    /// Round number (1-based; assigned when the context opens).
    pub round: u64,
    /// Logical time at round start.
    pub now: u64,
    /// Round-scoped seed all per-offer RNG streams derive from.
    pub round_seed: u64,
    /// Offers still live after [`super::ExpiryStage`].
    pub pending: Vec<Offer>,
    /// Offers considered this round (live + expired).
    pub considered: usize,
    /// Offers expired this round.
    pub expired: usize,
    /// One bid per offer that found a sellable mashup.
    pub bids: Vec<RoundBid>,
    /// The winning candidate mashup per offer id.
    pub best_mashups: BTreeMap<u64, BuiltMashup>,
    /// Missing-attribute lists (feeds the demand report).
    pub missing: Vec<Vec<String>>,
    /// Negotiation requests for under-served offers (§4.1).
    pub negotiations: Vec<NegotiationRequest>,
    /// Sales the clearing stage produced.
    pub sales: Vec<Sale>,
    /// Sales that actually settled / delivered.
    pub completed_sales: Vec<Sale>,
    /// Ex ante revenue collected.
    pub revenue: f64,
    /// Arbiter fees collected.
    pub fees: f64,
    /// Ex post delivery ids created.
    pub deliveries: Vec<u64>,
}

impl RoundContext {
    /// Open a new round: bump the round counter, advance logical time,
    /// and draw the round seed from the market's seeded RNG.
    pub(crate) fn open(market: &DataMarket) -> Self {
        let round_seed = market.rng.lock().gen::<u64>();
        Self::open_seeded(market, round_seed)
    }

    /// Open a new round under an externally-coordinated seed (two-phase
    /// cross-shard rounds: every shard of a deployment must derive its
    /// per-offer tie-break streams from the *same* seed, or an M-shard
    /// market would clear differently from the 1-shard market).
    pub(crate) fn open_seeded(market: &DataMarket, round_seed: u64) -> Self {
        let round = market.round_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let now = market.tick();
        RoundContext {
            round,
            now,
            round_seed,
            pending: Vec::new(),
            considered: 0,
            expired: 0,
            bids: Vec::new(),
            best_mashups: BTreeMap::new(),
            missing: Vec::new(),
            negotiations: Vec::new(),
            sales: Vec::new(),
            completed_sales: Vec::new(),
            revenue: 0.0,
            fees: 0.0,
            deliveries: Vec::new(),
        }
    }

    /// A deterministic RNG stream for one offer, independent of every
    /// other offer's stream. Derived from `(round_seed, offer_id)` via a
    /// SplitMix64-style mix, so the [`super::CandidateStage`] draws
    /// identical tie-breaks whether offers are evaluated sequentially or
    /// on rayon workers in any schedule.
    pub fn offer_rng(&self, offer_id: u64) -> StdRng {
        let mixed = self
            .round_seed
            .wrapping_add(offer_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .rotate_left(17)
            ^ 0xD1B5_4A32_D192_ED03;
        StdRng::seed_from_u64(mixed)
    }

    /// Export the candidate phase's outcome for global (cross-shard)
    /// clearing: the round number and every bid the [`super::CandidateStage`]
    /// produced. Winning mashups stay in the context — only the bids
    /// travel, and cleared sales come back to [`crate::market::DataMarket::settle_sale`].
    pub fn candidate_set(&self) -> super::CandidateSet {
        super::CandidateSet {
            round: self.round,
            bids: self.bids.clone(),
        }
    }

    /// [`RoundContext::candidate_set`], but **moving** the bids out of
    /// the context (the per-round hot path: after clearing, settlement
    /// only consults [`RoundContext::best_mashups`], so the bids need
    /// not be retained). The context is left with no bids.
    pub fn take_candidate_set(&mut self) -> super::CandidateSet {
        super::CandidateSet {
            round: self.round,
            bids: std::mem::take(&mut self.bids),
        }
    }

    /// Close the round: publish negotiation/demand state on the market
    /// and produce the round report.
    pub(crate) fn finish(self, market: &DataMarket) -> RoundReport {
        *market.last_missing.lock() = self.missing.clone();
        *market.last_negotiations.lock() = self.negotiations;
        RoundReport {
            round: self.round,
            considered: self.considered,
            sales: self.completed_sales,
            revenue: self.revenue,
            fees: self.fees,
            expired: self.expired,
            deliveries: self.deliveries,
            unmet: demand_report(self.missing.iter().map(|v| v.as_slice())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketConfig;

    #[test]
    fn offer_rng_streams_are_deterministic_and_independent() {
        let market = DataMarket::new(MarketConfig::external(5));
        let ctx = RoundContext::open(&market);
        let a1: u64 = ctx.offer_rng(1).gen();
        let a2: u64 = ctx.offer_rng(1).gen();
        let b: u64 = ctx.offer_rng(2).gen();
        assert_eq!(a1, a2, "same offer, same stream");
        assert_ne!(a1, b, "different offers, different streams");
    }

    #[test]
    fn same_market_seed_gives_same_round_seed() {
        let m1 = DataMarket::new(MarketConfig::external(5));
        let m2 = DataMarket::new(MarketConfig::external(5));
        assert_eq!(
            RoundContext::open(&m1).round_seed,
            RoundContext::open(&m2).round_seed
        );
    }

    #[test]
    fn open_advances_the_round_counter() {
        let market = DataMarket::new(MarketConfig::external(5));
        assert_eq!(RoundContext::open(&market).round, 1);
        assert_eq!(RoundContext::open(&market).round, 2);
    }
}
