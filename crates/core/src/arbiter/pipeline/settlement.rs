//! Stage 4: transaction support + revenue allocation — and the ex post
//! reporting path that settles deliveries outside the round.

use std::sync::atomic::Ordering;

use rand::Rng;

use dmp_mechanism::elicitation::ElicitationProtocol;

use crate::arbiter::mashup_builder::BuiltMashup;
use crate::arbiter::pricing::Sale;
use crate::arbiter::revenue::dataset_shares;
use crate::arbiter::services::Purchase;
use crate::error::{MarketError, MarketResult};
use crate::market::{
    DataMarket, DatasetShare, Delivery, OfferState, Settlement, TransactionRecord, ARBITER_ACCOUNT,
};
use crate::trust::AuditEvent;

use super::{RoundContext, RoundStage};

/// The commit-independent arithmetic of one ex ante settlement.
///
/// Everything here is a pure function of the market design, the sale,
/// and the winning mashup's relation — never of ledger state mutated by
/// earlier settlements — so plans for *any* set of sales can be
/// computed concurrently (the conflict-graph settlement path computes
/// them per connected component on rayon workers) and then committed
/// sequentially in global offer-id order with results bit-identical to
/// fully sequential settlement: the commit consumes the plan verbatim,
/// it never recomputes.
#[derive(Debug, Clone, PartialEq)]
pub struct SettlementPlan {
    /// Arbiter fee carved out of the sale price.
    pub fee: f64,
    /// Provenance-based revenue shares over `price − fee`.
    pub shares: Vec<DatasetShare>,
    /// Platform-minted contribution rewards (empty when the config
    /// mints none).
    pub reward_shares: Vec<DatasetShare>,
}

/// Settles the round's cleared sales. Under **ex ante** elicitation the
/// buyer pays now: escrow, fee split, provenance-based revenue shares,
/// lineage, licensing holds. Under **ex post** (use-then-pay,
/// §3.2.2.2) the buyer's declared cap is escrowed and the mashup is
/// delivered; payment happens later through
/// [`DataMarket::report_value`]. A sale whose buyer cannot fund the
/// escrow simply stays pending — no partial state is left behind.
#[derive(Debug, Clone, Copy, Default)]
pub struct SettlementStage;

impl RoundStage for SettlementStage {
    fn name(&self) -> &'static str {
        "settlement"
    }

    fn run(&self, market: &DataMarket, ctx: &mut RoundContext) {
        let sales = std::mem::take(&mut ctx.sales);
        for sale in sales {
            Self::settle_one(market, ctx, sale);
        }
    }
}

impl SettlementStage {
    /// Settle one cleared sale into the market — the per-sale body of
    /// the stage, also driven sale-by-sale (in global offer-id order)
    /// by the service layer's cross-shard exchange. A sale whose
    /// winning mashup is not in this context (routed to the wrong
    /// shard) is ignored; one whose buyer cannot fund the escrow leaves
    /// the offer pending.
    pub(crate) fn settle_one(market: &DataMarket, ctx: &mut RoundContext, sale: Sale) {
        Self::settle_one_planned(market, ctx, sale, None);
    }

    /// [`SettlementStage::settle_one`] with an optionally precomputed
    /// [`SettlementPlan`] (conflict-graph parallel settlement: plans are
    /// computed concurrently per component, commits replay in global
    /// order through here). `None` plans the sale inline — the two paths
    /// are bit-identical because the plan is a pure function of inputs
    /// the commit does not mutate. Ex post sales ignore the plan: their
    /// money moves at report time, not now.
    pub(crate) fn settle_one_planned(
        market: &DataMarket,
        ctx: &mut RoundContext,
        sale: Sale,
        plan: Option<&SettlementPlan>,
    ) {
        let ex_post = matches!(
            market.config.design.elicitation,
            ElicitationProtocol::ExPost(_)
        );
        let mashup = match ctx.best_mashups.get(&sale.offer_id) {
            Some(m) => m.clone(),
            None => return,
        };
        if ex_post {
            match market.deliver_ex_post(&sale, &mashup) {
                Ok(delivery_id) => {
                    ctx.deliveries.push(delivery_id);
                    ctx.completed_sales.push(sale);
                }
                Err(_) => { /* deposit unavailable: offer stays pending */ }
            }
        } else {
            let settled = match plan {
                Some(p) => market.settle_planned(&sale, &mashup, ctx.round, p),
                None => market.settle(&sale, &mashup, ctx.round),
            };
            match settled {
                Ok(record) => {
                    ctx.revenue += record.price;
                    ctx.fees += record.fee;
                    ctx.completed_sales.push(sale);
                }
                Err(_) => { /* insufficient funds: offer stays pending */ }
            }
        }
    }
}

impl DataMarket {
    /// Compute the commit-independent arithmetic of one ex ante
    /// settlement — see [`SettlementPlan`] for why this is safe to run
    /// concurrently for sales that have not committed yet.
    pub fn plan_settlement(&self, sale: &Sale, mashup: &BuiltMashup) -> SettlementPlan {
        let fee = sale.price * self.config.design.arbiter_fee.clamp(0.0, 1.0);
        let to_sellers = sale.price - fee;
        let shares = dataset_shares(&self.config.design, &mashup.relation, to_sellers);
        let reward_shares = if self.config.contribution_reward > 0.0 {
            dataset_shares(
                &self.config.design,
                &mashup.relation,
                self.config.contribution_reward,
            )
        } else {
            Vec::new()
        };
        SettlementPlan {
            fee,
            shares,
            reward_shares,
        }
    }

    /// The conflict keys of one cleared sale: the ledger accounts and
    /// exclusivity-hold slots its settlement writes. Two sales with
    /// disjoint key sets commute semantically; sharing any key makes
    /// them neighbors in the round's conflict graph (see
    /// [`super::conflict::connected_components`]). [`ARBITER_ACCOUNT`]
    /// is excluded — every sale credits the arbiter's fee account, and
    /// integer micro-credit deposits commute exactly, so including it
    /// would collapse every round into one component. A dataset with no
    /// metadata entry pays its residual to the arbiter and is likewise
    /// account-free (its `d:` hold key still counts).
    pub fn settlement_conflict_keys(&self, sale: &Sale, mashup: &BuiltMashup) -> Vec<String> {
        let mut keys = vec![format!("a:{}", sale.buyer)];
        for &d in &mashup.datasets {
            if let Some(e) = self.metadata.get(d) {
                if e.owner != ARBITER_ACCOUNT {
                    keys.push(format!("a:{}", e.owner));
                }
            }
            keys.push(format!("d:{}", d.0));
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Ex ante settlement: move money, split revenue, record everything.
    pub(crate) fn settle(
        &self,
        sale: &Sale,
        mashup: &BuiltMashup,
        round: u64,
    ) -> MarketResult<TransactionRecord> {
        let plan = self.plan_settlement(sale, mashup);
        self.settle_planned(sale, mashup, round, &plan)
    }

    /// Commit one ex ante settlement from its precomputed plan. Order
    /// matters here — escrow/tx/delivery id allocation, the audit
    /// chain, and hold success all depend on every prior commit — so
    /// callers drive commits sequentially in global offer-id order.
    pub(crate) fn settle_planned(
        &self,
        sale: &Sale,
        mashup: &BuiltMashup,
        round: u64,
        plan: &SettlementPlan,
    ) -> MarketResult<TransactionRecord> {
        let fee = plan.fee;
        let shares = &plan.shares;

        // Atomic-ish: verify funds, then transfer piecewise.
        let escrow = self.ledger.hold(&sale.buyer, sale.price)?;
        // Payouts go through `release_up_to`: fee and shares are each
        // micro-rounded independently, so the last payout may exceed
        // the (also rounded) hold by sub-micro dust.
        if fee > 0.0 {
            self.ledger.release_up_to(escrow, ARBITER_ACCOUNT, fee)?;
        }
        for share in shares {
            let owner = match self.metadata.get(share.dataset) {
                Some(e) => e.owner,
                None => ARBITER_ACCOUNT.to_string(), // provenance-free residual
            };
            self.ledger.release_up_to(escrow, &owner, share.amount)?;
        }
        self.ledger.close(escrow)?; // refund rounding residue, if any

        let tx = self.next_tx.fetch_add(1, Ordering::Relaxed);
        let record = TransactionRecord {
            id: tx,
            offer_id: sale.offer_id,
            buyer: sale.buyer.clone(),
            price: sale.price,
            fee,
            satisfaction: sale.satisfaction,
            datasets: mashup.datasets.clone(),
            shares: shares.clone(),
            round,
        };
        self.finish_transaction(&record, mashup, round, &plan.reward_shares);

        // Deliver the data as a settled delivery record.
        let delivery_id = self.next_delivery.fetch_add(1, Ordering::Relaxed);
        self.deliveries.lock().push(Delivery {
            id: delivery_id,
            offer_id: sale.offer_id,
            buyer: sale.buyer.clone(),
            relation: mashup.relation.clone(),
            satisfaction: sale.satisfaction,
            escrow: u64::MAX,
            datasets: mashup.datasets.clone(),
            settlement: Some(Settlement {
                paid: sale.price,
                penalty: 0.0,
                audited: false,
            }),
        });
        self.set_offer_state(sale.offer_id, OfferState::Fulfilled { tx });
        self.transactions.lock().push(record.clone());
        Ok(record)
    }

    /// Shared bookkeeping after money moved. `reward_shares` are the
    /// platform-minted contribution rewards (bonus points / credits):
    /// sellers are compensated even when the design charges buyers
    /// nothing, split like the revenue shares would be. They arrive
    /// precomputed (from the sale's [`SettlementPlan`] or the ex post
    /// report path) so the planned and unplanned paths share one body.
    fn finish_transaction(
        &self,
        record: &TransactionRecord,
        mashup: &BuiltMashup,
        round: u64,
        reward_shares: &[DatasetShare],
    ) {
        for share in reward_shares {
            if let Some(e) = self.metadata.get(share.dataset) {
                self.ledger.deposit(&e.owner, share.amount);
            }
        }
        self.audit.record(AuditEvent::TransactionSettled {
            tx: record.id,
            buyer: record.buyer.clone(),
            price: record.price,
        });
        for share in &record.shares {
            self.lineage.record(
                share.dataset,
                dmp_discovery::LineageEvent::SoldInMashup {
                    mashup: format!("offer{}", record.offer_id),
                    revenue: share.amount,
                },
            );
        }
        for &d in &mashup.datasets {
            self.lineage.record(
                d,
                dmp_discovery::LineageEvent::UsedInMashup {
                    mashup: format!("offer{}", record.offer_id),
                    rows_contributed: mashup.relation.len(),
                },
            );
        }
        self.purchases.lock().push(Purchase {
            buyer: record.buyer.clone(),
            datasets: mashup.datasets.clone(),
        });
        // Start exclusivity holds.
        let licenses = self.licenses.lock();
        let mut holds = self.exclusive_holds.lock();
        for &d in &mashup.datasets {
            if let Some(l) = licenses.get(&d) {
                if l.is_exclusive() {
                    holds.insert(d, (record.buyer.clone(), round + l.hold_rounds() as u64));
                }
            }
        }
    }

    /// Ex post delivery: escrow the buyer's declared cap, hand over data.
    pub(crate) fn deliver_ex_post(&self, sale: &Sale, mashup: &BuiltMashup) -> MarketResult<u64> {
        let offer = self
            .offer(sale.offer_id)
            .ok_or(MarketError::UnknownId(sale.offer_id))?;
        let deposit = offer.wtp.max_price().max(sale.price);
        let escrow = self.ledger.hold(&sale.buyer, deposit)?;
        let delivery_id = self.next_delivery.fetch_add(1, Ordering::Relaxed);
        self.deliveries.lock().push(Delivery {
            id: delivery_id,
            offer_id: sale.offer_id,
            buyer: sale.buyer.clone(),
            relation: mashup.relation.clone(),
            satisfaction: sale.satisfaction,
            escrow,
            datasets: mashup.datasets.clone(),
            settlement: None,
        });
        self.set_offer_state(
            sale.offer_id,
            OfferState::AwaitingReport {
                delivery: delivery_id,
            },
        );
        Ok(delivery_id)
    }

    /// Buyer reports the value realized from an ex post delivery; the
    /// market settles, possibly audits, penalizes detected
    /// under-reporting, and distributes revenue.
    pub fn report_value(&self, delivery_id: u64, reported: f64) -> MarketResult<Settlement> {
        let mech = match &self.config.design.elicitation {
            ElicitationProtocol::ExPost(m) => m.clone(),
            ElicitationProtocol::ExAnte => {
                return Err(MarketError::Invalid(
                    "market uses ex ante elicitation; nothing to report".into(),
                ))
            }
        };
        let (offer_id, buyer, satisfaction, escrow, mashup_rel, datasets) = {
            let deliveries = self.deliveries.lock();
            let d = deliveries
                .iter()
                .find(|d| d.id == delivery_id)
                .ok_or(MarketError::UnknownId(delivery_id))?;
            if d.settlement.is_some() {
                return Err(MarketError::Invalid("delivery already settled".into()));
            }
            (
                d.offer_id,
                d.buyer.clone(),
                d.satisfaction,
                d.escrow,
                d.relation.clone(),
                d.datasets.clone(),
            )
        };
        let offer = self
            .offer(offer_id)
            .ok_or(MarketError::UnknownId(offer_id))?;
        let deposit = self
            .ledger
            .escrow_remaining(escrow)
            .ok_or(MarketError::UnknownId(escrow))?;
        // Reports are capped by the escrowed deposit (the declared cap).
        let reported = reported.max(0.0).min(deposit);

        // Audit: the arbiter re-runs the packaged task (it already knows
        // the measured satisfaction) and compares the implied value.
        let audited = self.rng.lock().gen::<f64>() < mech.audit_prob;
        let true_value = offer.wtp.curve.price(satisfaction);
        let mut penalty = 0.0;
        // Differences below the ledger's micro-credit granularity are
        // not payable, so they cannot count as under-reporting (the
        // escrowed cap itself is rounded to micro-credits).
        if audited && reported + 1e-6 < true_value {
            penalty = mech.penalty_mult * (true_value - reported);
            let round = self.round();
            if let Some(p) = self.participants.lock().get_mut(&buyer) {
                p.reputation = (p.reputation * 0.5).max(0.0);
                p.excluded_until = round + mech.exclusion_rounds as u64;
            }
        }
        self.audit.record(AuditEvent::ExPostAudit {
            delivery: delivery_id,
            underreported: penalty > 0.0,
        });

        // Pay from escrow: sellers first, then fee + penalty (capped by
        // what the deposit can still cover).
        let fee_rate = self.config.design.arbiter_fee.clamp(0.0, 1.0);
        let base = reported;
        let to_sellers = base * (1.0 - fee_rate);
        let fee = (base * fee_rate + penalty).min(deposit - to_sellers);
        let shares = dataset_shares(&self.config.design, &mashup_rel, to_sellers);
        for share in &shares {
            let owner = match self.metadata.get(share.dataset) {
                Some(e) => e.owner,
                None => ARBITER_ACCOUNT.to_string(),
            };
            self.ledger.release_up_to(escrow, &owner, share.amount)?;
        }
        if fee > 0.0 {
            self.ledger.release_up_to(escrow, ARBITER_ACCOUNT, fee)?;
        }
        self.ledger.close(escrow)?;

        let settlement = Settlement {
            paid: base,
            penalty,
            audited,
        };
        let tx = self.next_tx.fetch_add(1, Ordering::Relaxed);
        let record = TransactionRecord {
            id: tx,
            offer_id,
            buyer: buyer.clone(),
            price: base,
            fee,
            satisfaction,
            datasets: datasets.clone(),
            shares,
            round: self.round(),
        };
        let built = BuiltMashup {
            relation: mashup_rel,
            datasets,
            coverage: 1.0,
            confidence: 1.0,
            missing: Vec::new(),
        };
        let reward_shares = if self.config.contribution_reward > 0.0 {
            dataset_shares(
                &self.config.design,
                &built.relation,
                self.config.contribution_reward,
            )
        } else {
            Vec::new()
        };
        self.finish_transaction(&record, &built, self.round(), &reward_shares);
        self.transactions.lock().push(record);
        self.set_offer_state(offer_id, OfferState::Fulfilled { tx });
        if let Some(d) = self
            .deliveries
            .lock()
            .iter_mut()
            .find(|d| d.id == delivery_id)
        {
            d.settlement = Some(settlement);
        }
        Ok(settlement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::pipeline::{CandidateStage, ClearingStage, ExpiryStage};
    use crate::market::MarketConfig;
    use dmp_mechanism::design::MarketDesign;
    use dmp_mechanism::elicitation::ExPostMechanism;
    use dmp_mechanism::wtp::{PriceCurve, WtpFunction};
    use dmp_relation::builder::keyed_rel;

    fn staged_ctx(market: &DataMarket) -> RoundContext {
        let mut ctx = RoundContext::open(market);
        ExpiryStage.run(market, &mut ctx);
        CandidateStage::default().run(market, &mut ctx);
        ClearingStage.run(market, &mut ctx);
        ctx
    }

    #[test]
    fn ex_ante_settlement_moves_money_and_fulfills_the_offer() {
        let market = DataMarket::new(
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0)),
        );
        market
            .seller("s")
            .share(keyed_rel("t", &[(1, "x")]))
            .unwrap();
        let b = market.buyer("b");
        b.deposit(100.0);
        let offer = market
            .submit_wtp(WtpFunction::simple(
                "b",
                ["k", "v"],
                PriceCurve::Constant(30.0),
            ))
            .unwrap();

        let mut ctx = staged_ctx(&market);
        SettlementStage.run(&market, &mut ctx);

        assert_eq!(ctx.completed_sales.len(), 1);
        assert!((ctx.revenue - 10.0).abs() < 1e-9);
        assert!(market.balance("s") > 0.0);
        assert!((market.balance("b") - 90.0).abs() < 1e-9);
        assert!(matches!(
            market.offer(offer).unwrap().state,
            OfferState::Fulfilled { .. }
        ));
    }

    #[test]
    fn ex_post_settlement_escrows_and_awaits_the_report() {
        let mut design = MarketDesign::posted_price_baseline(10.0);
        design.elicitation = ElicitationProtocol::ExPost(ExPostMechanism {
            audit_prob: 1.0,
            penalty_mult: 2.0,
            exclusion_rounds: 1,
            round_value: 0.0,
        });
        let market = DataMarket::new(MarketConfig::external(3).with_design(design));
        market
            .seller("s")
            .share(keyed_rel("t", &[(1, "x")]))
            .unwrap();
        let b = market.buyer("b");
        b.deposit(100.0);
        let offer = market
            .submit_wtp(WtpFunction::simple(
                "b",
                ["k", "v"],
                PriceCurve::Constant(30.0),
            ))
            .unwrap();

        let mut ctx = staged_ctx(&market);
        SettlementStage.run(&market, &mut ctx);

        assert_eq!(ctx.deliveries.len(), 1);
        assert_eq!(ctx.revenue, 0.0, "no money moves before the report");
        assert!(matches!(
            market.offer(offer).unwrap().state,
            OfferState::AwaitingReport { .. }
        ));
        // The declared cap (30) is escrowed out of the buyer's balance.
        assert!((market.balance("b") - 70.0).abs() < 1e-9);

        // Reporting settles the delivery through the escrow.
        let settlement = market.report_value(ctx.deliveries[0], 30.0).unwrap();
        assert!((settlement.paid - 30.0).abs() < 1e-9);
        assert_eq!(settlement.penalty, 0.0);
        assert!(market.balance("s") > 0.0);
    }

    #[test]
    fn unfunded_ex_ante_sale_leaves_no_partial_state() {
        let market = DataMarket::new(
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0)),
        );
        market
            .seller("s")
            .share(keyed_rel("t", &[(1, "x")]))
            .unwrap();
        let _ = market.buyer("broke"); // no deposit
        let offer = market
            .submit_wtp(WtpFunction::simple(
                "broke",
                ["k", "v"],
                PriceCurve::Constant(30.0),
            ))
            .unwrap();

        let mut ctx = staged_ctx(&market);
        assert_eq!(ctx.sales.len(), 1, "the bid clears");
        SettlementStage.run(&market, &mut ctx);

        assert!(ctx.completed_sales.is_empty());
        assert_eq!(ctx.revenue, 0.0);
        assert_eq!(market.offer(offer).unwrap().state, OfferState::Pending);
        assert!(market.transactions().is_empty());
    }
}
