//! The arbiter's **round pipeline** (paper Fig. 1 (4), §3): a market
//! round is an explicit sequence of separately-testable stages instead
//! of one monolithic function, mirroring the paper's arbiter data flow
//!
//! > pending WTP offers → mashup builder → WTP-evaluator →
//! > pricing/clearing → transaction support → revenue allocation
//!
//! The stages, in default order:
//!
//! 1. [`ExpiryStage`] — snapshot pending offers, expire stale ones
//!    (intrinsic-constraint `is_live` checks, §3.2.2.1);
//! 2. [`CandidateStage`] — per offer: build candidate mashups (DoD
//!    engine, §5.3), run the WTP-evaluator on each, apply licensing /
//!    contextual-integrity / exclusivity admissibility, keep *viable*
//!    candidates (reserve-floor coverage), and pick the best bid with
//!    seeded random tie-breaking. Per-offer work is independent, so
//!    this stage evaluates offers **in parallel via rayon** by default;
//!    results are merged back in offer order, and every offer draws
//!    from its own [`RoundContext::offer_rng`] stream, so parallel and
//!    sequential execution produce byte-identical outcomes;
//! 3. [`ClearingStage`] — the pricing engine: group bids by product and
//!    clear them under the plugged-in market design (§3.2);
//! 4. [`SettlementStage`] — transaction support + revenue allocation:
//!    ex ante sales settle immediately through the escrow ledger;
//!    ex post (use-then-pay, §3.2.2.2) sales escrow the declared cap
//!    and deliver, awaiting the buyer's value report.
//!
//! A [`RoundContext`] threads shared round state (logical time, the
//! round seed, accumulated bids/sales/negotiations) through the stages;
//! ledger, audit chain, metadata, and lineage are reached through the
//! [`DataMarket`] itself. [`DataMarket::run_round`] is a thin driver
//! over [`default_pipeline`]; custom stage lists (e.g. a sequential
//! [`CandidateStage`] for differential testing, or an instrumented
//! stage sandwich) run through [`DataMarket::run_round_with`].

mod candidates;
mod clearing;
mod conflict;
mod context;
mod expiry;
mod settlement;

pub use candidates::CandidateStage;
pub use clearing::ClearingStage;
pub use conflict::connected_components;
pub use context::RoundContext;
pub use expiry::ExpiryStage;
pub use settlement::{SettlementPlan, SettlementStage};

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use dmp_telemetry::{global, Histogram};

use crate::arbiter::pricing::{RoundBid, Sale};
use crate::arbiter::services::DemandReport;
use crate::market::DataMarket;

/// One stage of the arbiter's round pipeline.
///
/// Stages are stateless (configuration only); all per-round state lives
/// in the [`RoundContext`], all persistent state in the [`DataMarket`].
pub trait RoundStage: Send + Sync {
    /// Stable stage name (diagnostics, tracing).
    fn name(&self) -> &'static str;

    /// Execute the stage against the market for this round.
    fn run(&self, market: &DataMarket, ctx: &mut RoundContext);
}

/// The paper-ordered default stage list: expiry → candidates (parallel)
/// → clearing → settlement.
pub fn default_pipeline() -> Vec<Box<dyn RoundStage>> {
    vec![
        Box::new(ExpiryStage),
        Box::new(CandidateStage::default()),
        Box::new(ClearingStage),
        Box::new(SettlementStage),
    ]
}

/// The wall-time histogram for one pipeline stage.
fn stage_histogram(stage: &str) -> Arc<Histogram> {
    global().histogram(
        &format!("dmp_round_stage_us{{stage=\"{stage}\"}}"),
        "Wall time of one arbiter round-pipeline stage, microseconds.",
    )
}

/// Handles for the default stages, resolved once so the per-round path
/// never touches the registry mutex after the first round.
fn default_stage_histograms() -> &'static [(&'static str, Arc<Histogram>)] {
    static CACHE: OnceLock<Vec<(&'static str, Arc<Histogram>)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        ["expiry", "candidates", "clearing", "settlement"]
            .into_iter()
            .map(|s| (s, stage_histogram(s)))
            .collect()
    })
}

fn candidates_histogram() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        global().histogram(
            "dmp_round_candidates",
            "Candidate bids produced by the candidate stage, per round.",
        )
    })
}

/// Run one stage, recording its wall time into
/// `dmp_round_stage_us{stage="<name>"}`. The candidates stage also
/// records how many bids it produced into `dmp_round_candidates`.
/// Custom stage names register their series on first use.
pub(crate) fn run_stage_timed(stage: &dyn RoundStage, market: &DataMarket, ctx: &mut RoundContext) {
    let name = stage.name();
    let hist = default_stage_histograms()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, h)| Arc::clone(h))
        .unwrap_or_else(|| stage_histogram(name));
    let started = Instant::now(); // dmp-lint: allow(det-wall-clock) -- stage latency telemetry; never read by the stage
    stage.run(market, ctx);
    hist.record_duration_us(started.elapsed());
    if name == "candidates" {
        candidates_histogram().record(ctx.bids.len() as u64);
    }
}

/// One shard's exportable candidate-phase output: everything a global
/// clearing pass needs from this market for the round. The bids carry
/// globally-meaningful state only (global offer ids, dataset ids from
/// the shared catalog, reserve floors, license multipliers) — winning
/// mashup *relations* stay on the shard that built them and are joined
/// back at settlement, so a candidate set is cheap to move (and, at the
/// service layer, to serialize onto a wire).
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSet {
    /// The round these candidates belong to (uniform across shards of
    /// one deployment — rounds run in lockstep).
    pub round: u64,
    /// One bid per offer that found a sellable mashup.
    pub bids: Vec<RoundBid>,
}

/// The complete candidate-phase outcome of one market (shard) for one
/// seeded round — everything a *remote* settlement authority needs to
/// finish the round on this shard's behalf, and everything a replica
/// needs to adopt the phase without recomputing it.
///
/// Where [`CandidateSet`] carries only the bids (enough for global
/// clearing), the phase export also carries the winning mashups — their
/// materialized relations included, because revenue allocation splits
/// by provenance over the relation — plus the negotiation / demand side
/// channel and the audit events the candidate stage recorded. Expiry is
/// *not* exported: it is a pure function of the local offer book and
/// logical clock, so an importing replica re-runs it locally.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePhaseExport {
    /// The round this phase belongs to.
    pub round: u64,
    /// One bid per offer that found a sellable mashup.
    pub bids: Vec<RoundBid>,
    /// Winning mashup per offer id (ascending offer id).
    pub best_mashups: Vec<(u64, crate::arbiter::mashup_builder::BuiltMashup)>,
    /// Missing-attribute lists (feeds the demand report).
    pub missing: Vec<Vec<String>>,
    /// Negotiation requests for under-served offers (§4.1).
    pub negotiations: Vec<NegotiationRequest>,
    /// Audit events the candidate stage recorded, in chain order.
    pub audit_events: Vec<crate::trust::AuditEvent>,
}

/// What one `run_round` did.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round number.
    pub round: u64,
    /// Offers considered.
    pub considered: usize,
    /// Sales cleared (ex ante settled; ex post delivered).
    pub sales: Vec<Sale>,
    /// Revenue collected this round (ex ante only).
    pub revenue: f64,
    /// Arbiter fees collected.
    pub fees: f64,
    /// Offers expired this round.
    pub expired: usize,
    /// Deliveries created (ex post).
    pub deliveries: Vec<u64>,
    /// Unmet attribute demand (for opportunistic sellers).
    pub unmet: DemandReport,
}

/// A negotiation round request (§4.1): "if the AMS cannot find mashups
/// that fulfill the buyer's needs, it can describe the information it
/// lacks and ask the sellers to complete it."
#[derive(Debug, Clone, PartialEq)]
pub struct NegotiationRequest {
    /// The under-served offer.
    pub offer_id: u64,
    /// Its buyer.
    pub buyer: String,
    /// Attributes the mashup builder could not source.
    pub missing: Vec<String>,
    /// Sellers whose datasets already participate in the best partial
    /// mashup — the ones best placed to annotate or publish mappings.
    pub candidate_sellers: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::{MarketConfig, OfferState};
    use dmp_mechanism::design::MarketDesign;
    use dmp_mechanism::wtp::{PriceCurve, WtpFunction};
    use dmp_relation::builder::keyed_rel;

    fn simple_market() -> DataMarket {
        let config =
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0));
        DataMarket::new(config)
    }

    #[test]
    fn default_pipeline_has_the_paper_stages_in_order() {
        let names: Vec<&str> = default_pipeline().iter().map(|s| s.name()).collect();
        assert_eq!(names, ["expiry", "candidates", "clearing", "settlement"]);
    }

    #[test]
    fn end_to_end_posted_price_sale() {
        let market = simple_market();
        let seller = market.seller("s1");
        let id = seller
            .share(keyed_rel("inventory", &[(1, "widget"), (2, "gadget")]))
            .unwrap();
        let buyer = market.buyer("b1");
        buyer.deposit(100.0);
        let wtp = WtpFunction::simple("b1", ["k", "v"], PriceCurve::Constant(25.0));
        market.submit_wtp(wtp).unwrap();

        let report = market.run_round();
        assert_eq!(report.sales.len(), 1);
        assert_eq!(report.revenue, 10.0); // posted price
        assert!(market.balance("b1") < 100.0);
        assert!(market.balance("s1") > 0.0);
        // conservation: all money accounted for
        assert!((market.ledger.total_supply() - 100.0).abs() < 1e-9);
        // lineage recorded
        assert!(market.lineage.total_revenue(id) > 0.0);
        // audit chain intact
        assert!(market.audit_log().verify_chain());
    }

    #[test]
    fn internal_market_trades_for_free() {
        let market = DataMarket::new(MarketConfig::internal());
        market
            .seller("teamA")
            .share(keyed_rel("t", &[(1, "x")]))
            .unwrap();
        let _buyer = market.buyer("teamB"); // bonus-point grant
        let wtp = WtpFunction::simple("teamB", ["k", "v"], PriceCurve::Constant(5.0));
        market.submit_wtp(wtp).unwrap();
        let report = market.run_round();
        assert_eq!(report.sales.len(), 1);
        assert_eq!(
            report.revenue, 0.0,
            "internal welfare design charges nothing"
        );
    }

    #[test]
    fn unfunded_buyer_cannot_settle() {
        let market = simple_market();
        market
            .seller("s1")
            .share(keyed_rel("t", &[(1, "x")]))
            .unwrap();
        let _buyer = market.buyer("broke");
        let wtp = WtpFunction::simple("broke", ["k"], PriceCurve::Constant(50.0));
        market.submit_wtp(wtp).unwrap();
        let report = market.run_round();
        assert!(report.sales.is_empty());
        // offer remains pending for when funds arrive
        assert_eq!(market.offer(0).unwrap().state, OfferState::Pending);
    }

    #[test]
    fn demand_report_lists_unmet_attributes() {
        let market = simple_market();
        market
            .seller("s")
            .share(keyed_rel("t", &[(1, "x")]))
            .unwrap();
        let b = market.buyer("b");
        b.deposit(50.0);
        let wtp = WtpFunction::simple("b", ["nonexistent_attr"], PriceCurve::Constant(20.0));
        market.submit_wtp(wtp).unwrap();
        let report = market.run_round();
        assert!(report
            .unmet
            .missing_attributes
            .iter()
            .any(|(a, _)| a == "nonexistent_attr"));
    }

    #[test]
    fn reserve_price_blocks_underpriced_sale() {
        let market = simple_market(); // posted price 10
        let seller = market.seller("s1");
        let id = seller.share(keyed_rel("t", &[(1, "x")])).unwrap();
        seller.set_reserve(id, 15.0).unwrap();
        let b = market.buyer("b");
        b.deposit(100.0);
        market
            .submit_wtp(WtpFunction::simple(
                "b",
                ["k", "v"],
                PriceCurve::Constant(30.0),
            ))
            .unwrap();
        let report = market.run_round();
        assert!(report.sales.is_empty(), "posted 10 < reserve 15");
    }

    #[test]
    fn rounds_advance() {
        let market = simple_market();
        assert_eq!(market.round(), 0);
        market.run_round();
        market.run_round();
        assert_eq!(market.round(), 2);
    }
}
