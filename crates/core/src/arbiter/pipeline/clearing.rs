//! Stage 3: the pricing engine clears the round's bids.

use crate::arbiter::pricing::clear;
use crate::market::DataMarket;

use super::{RoundContext, RoundStage};

/// Groups the round's bids by product (dataset combination) and clears
/// each group under the plugged-in market design's allocation + payment
/// rules (§3.2); license multipliers and reserve floors apply inside
/// [`clear`]. This is the pipeline's only cross-offer barrier: every
/// bid must be in before prices are set.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClearingStage;

impl RoundStage for ClearingStage {
    fn name(&self) -> &'static str {
        "clearing"
    }

    fn run(&self, market: &DataMarket, ctx: &mut RoundContext) {
        ctx.sales = clear(&market.config.design, &ctx.bids);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::pipeline::{CandidateStage, ExpiryStage};
    use crate::market::MarketConfig;
    use dmp_mechanism::design::MarketDesign;
    use dmp_mechanism::wtp::{PriceCurve, WtpFunction};
    use dmp_relation::builder::keyed_rel;

    #[test]
    fn clearing_prices_at_the_posted_price() {
        let market = DataMarket::new(
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0)),
        );
        market
            .seller("s")
            .share(keyed_rel("t", &[(1, "x")]))
            .unwrap();
        let b = market.buyer("b");
        b.deposit(100.0);
        market
            .submit_wtp(WtpFunction::simple(
                "b",
                ["k", "v"],
                PriceCurve::Constant(30.0),
            ))
            .unwrap();

        let mut ctx = RoundContext::open(&market);
        ExpiryStage.run(&market, &mut ctx);
        CandidateStage::default().run(&market, &mut ctx);
        ClearingStage.run(&market, &mut ctx);

        assert_eq!(ctx.sales.len(), 1);
        assert_eq!(
            ctx.sales[0].price, 10.0,
            "posted-price design sets the price"
        );
        assert!(ctx.completed_sales.is_empty(), "settlement has not run yet");
    }

    #[test]
    fn clearing_drops_bids_below_the_reserve_floor() {
        let market = DataMarket::new(
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0)),
        );
        let s = market.seller("s");
        let id = s.share(keyed_rel("t", &[(1, "x")])).unwrap();
        s.set_reserve(id, 15.0).unwrap(); // floor above the posted price
        let b = market.buyer("b");
        b.deposit(100.0);
        market
            .submit_wtp(WtpFunction::simple(
                "b",
                ["k", "v"],
                PriceCurve::Constant(30.0),
            ))
            .unwrap();

        let mut ctx = RoundContext::open(&market);
        ExpiryStage.run(&market, &mut ctx);
        CandidateStage::default().run(&market, &mut ctx);
        ClearingStage.run(&market, &mut ctx);

        assert!(!ctx.bids.is_empty(), "a bid was made");
        assert!(ctx.sales.is_empty(), "posted 10 cannot cover reserve 15");
    }
}
