//! Stage 1: snapshot pending offers and expire stale ones.

use crate::market::{DataMarket, OfferState};

use super::{RoundContext, RoundStage};

/// Collects the round's pending offers (in offer-id order) and marks
/// offers whose intrinsic constraints are no longer live (§3.2.2.1,
/// `expires_at`) as [`OfferState::Expired`]. Live offers flow on to the
/// [`super::CandidateStage`] via [`RoundContext::pending`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpiryStage;

impl RoundStage for ExpiryStage {
    fn name(&self) -> &'static str {
        "expiry"
    }

    fn run(&self, market: &DataMarket, ctx: &mut RoundContext) {
        let pending: Vec<_> = market
            .offers
            .lock()
            .values()
            .filter(|o| o.state == OfferState::Pending)
            .cloned()
            .collect();
        ctx.considered = pending.len();
        for offer in pending {
            if offer.wtp.constraints.is_live(ctx.now) {
                ctx.pending.push(offer);
            } else {
                market.set_offer_state(offer.id, OfferState::Expired);
                ctx.expired += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketConfig;
    use dmp_mechanism::design::MarketDesign;
    use dmp_mechanism::wtp::{PriceCurve, WtpFunction};
    use dmp_relation::builder::keyed_rel;

    #[test]
    fn expired_offers_are_marked_and_not_forwarded() {
        let market = DataMarket::new(
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0)),
        );
        market
            .seller("s")
            .share(keyed_rel("t", &[(1, "x")]))
            .unwrap();
        let b = market.buyer("b");
        b.deposit(50.0);
        let mut dead = WtpFunction::simple("b", ["k"], PriceCurve::Constant(20.0));
        dead.constraints.expires_at = Some(0); // expires immediately
        let dead_id = market.submit_wtp(dead).unwrap();
        let live_id = market
            .submit_wtp(WtpFunction::simple("b", ["k"], PriceCurve::Constant(20.0)))
            .unwrap();

        let mut ctx = RoundContext::open(&market);
        ExpiryStage.run(&market, &mut ctx);

        assert_eq!(ctx.considered, 2);
        assert_eq!(ctx.expired, 1);
        assert_eq!(ctx.pending.len(), 1);
        assert_eq!(ctx.pending[0].id, live_id);
        assert_eq!(market.offer(dead_id).unwrap().state, OfferState::Expired);
    }

    #[test]
    fn full_round_reports_expiry() {
        let market = DataMarket::new(
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0)),
        );
        market
            .seller("s")
            .share(keyed_rel("t", &[(1, "x")]))
            .unwrap();
        let b = market.buyer("b");
        b.deposit(50.0);
        let mut wtp = WtpFunction::simple("b", ["k"], PriceCurve::Constant(20.0));
        wtp.constraints.expires_at = Some(0);
        let id = market.submit_wtp(wtp).unwrap();
        let report = market.run_round();
        assert_eq!(report.expired, 1);
        assert_eq!(market.offer(id).unwrap().state, OfferState::Expired);
    }
}
