//! Conflict-graph partitioning for parallel settlement.
//!
//! Two cleared sales *conflict* when their settlements touch a shared
//! resource: a ledger account (the buyer's balance, a dataset owner's
//! payout account) or a dataset's exclusivity hold. Sales with disjoint
//! key sets commute; connecting sales that share a key partitions the
//! round's cleared-sale list into connected components.
//!
//! The partition feeds [`super::SettlementStage`]'s two-phase commit:
//! the commit-*independent* arithmetic of each component (fee splits,
//! provenance-based revenue shares — see
//! [`crate::market::DataMarket::plan_settlement`]) is computed
//! concurrently across components, while the commit itself (escrow
//! holds, id allocation, the audit chain) replays sequentially in
//! global offer-id order so the result is bit-identical to fully
//! sequential settlement. Component identity is deterministic: sales
//! arrive sorted by global offer id, components are keyed by their
//! smallest member index, and the union-find walks keys through a
//! `BTreeMap`, so the grouping never depends on hash order.

use std::collections::BTreeMap;

/// Union-find `find` with path halving.
fn find(parent: &mut [usize], mut i: usize) -> usize {
    while parent[i] != i {
        parent[i] = parent[parent[i]];
        i = parent[i];
    }
    i
}

/// Union by root index: the smaller root wins, so every set's
/// representative is its smallest member (stable under input order).
fn union(parent: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra == rb {
        return;
    }
    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
    parent[hi] = lo;
}

/// Partition items into connected components by shared conflict keys.
///
/// `keys[i]` lists the conflict keys of item `i`; two items sharing any
/// key land in one component. Returns the components as index lists:
/// indices ascend within each component, and components are ordered by
/// their smallest member index — when the items are cleared sales
/// sorted by global offer id, the component id is the component's
/// minimum global offer id, as the distributed exchange requires.
pub fn connected_components(keys: &[Vec<String>]) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..keys.len()).collect();
    let mut first_owner: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, item_keys) in keys.iter().enumerate() {
        for key in item_keys {
            match first_owner.get(key.as_str()) {
                Some(&j) => union(&mut parent, i, j),
                None => {
                    first_owner.insert(key, i);
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..keys.len() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    // Members were pushed in ascending index order, so each group's
    // first element is its minimum; BTreeMap iteration yields groups
    // keyed by root, and every root is its set's minimum member.
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(lists: &[&[&str]]) -> Vec<Vec<String>> {
        lists
            .iter()
            .map(|l| l.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn disjoint_items_form_singleton_components() {
        let comps = connected_components(&keys(&[&["a:x"], &["a:y"], &["a:z"]]));
        assert_eq!(comps, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn shared_keys_merge_transitively() {
        // 0—1 share a buyer, 1—2 share a dataset: one component.
        let comps = connected_components(&keys(&[
            &["a:b1", "d:1"],
            &["a:b1", "d:2"],
            &["a:b2", "d:2"],
            &["a:b3", "d:9"],
        ]));
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn components_are_ordered_by_minimum_member() {
        // 0 and 3 connect late; the component still sorts under 0.
        let comps = connected_components(&keys(&[
            &["a:p"],
            &["a:q"],
            &["a:q", "a:r"],
            &["a:p", "a:s"],
        ]));
        assert_eq!(comps, vec![vec![0, 3], vec![1, 2]]);
    }

    #[test]
    fn empty_input_yields_no_components() {
        assert!(connected_components(&[]).is_empty());
    }

    #[test]
    fn keyless_items_are_isolated() {
        let comps = connected_components(&keys(&[&[], &["a:x"], &[]]));
        assert_eq!(comps, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn ordering_is_independent_of_key_list_order_within_items() {
        let a = connected_components(&keys(&[&["k1", "k2"], &["k2", "k3"]]));
        let b = connected_components(&keys(&[&["k2", "k1"], &["k3", "k2"]]));
        assert_eq!(a, b);
    }
}
