//! # dmp-core
//!
//! The Data Market Management System (DMMS) — paper §4, Fig. 2;
//! DESIGN.md S15–S18 and S21. "Data market management systems must be
//! designed to support different market designs and they must offer
//! software support to sellers, buyers, and the arbiter."
//!
//! * [`arbiter`] — the Arbiter Management Platform: mashup builder
//!   orchestration, WTP-evaluator, pricing engine, transaction support,
//!   revenue allocation engine, and arbiter services (recommendations,
//!   demand reports, negotiation rounds);
//! * [`seller`] — the Seller Management Platform: packaging, privacy-
//!   coordinated release, accountability, reserve prices, licensing;
//! * [`buyer`] — the Buyer Management Platform: fluent WTP construction,
//!   owned-data packaging, ex post reporting;
//! * [`market`] — the [`market::DataMarket`] facade that wires everything
//!   to a plug'n'play [`dmp_mechanism::MarketDesign`];
//! * [`currency`] — incentive currencies for internal / external / barter
//!   markets (§3.3);
//! * [`license`] — data licenses and contextual-integrity checks (§4.4);
//! * [`trust`] — hash-chained audit log, transparency reports, disputes.

pub mod arbiter;
pub mod buyer;
pub mod config;
pub mod currency;
pub mod error;
pub mod license;
pub mod market;
pub mod seller;
pub mod trust;

pub use currency::{Currency, Incentive};
pub use error::{MarketError, MarketResult};
pub use license::{ContextualIntegrityPolicy, License};
pub use market::{DataMarket, MarketConfig, MarketKind};
