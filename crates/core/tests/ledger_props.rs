//! Property tests for the arbiter ledger: currency conservation under
//! random interleaved deposit / transfer / escrow / release / close
//! sequences. With integer micro-credit storage the invariant is exact:
//! the total supply equals the sum of minted deposits bit-for-bit, and
//! no account ever goes negative. Near the `i64` micro-credit ceiling,
//! every transfer/escrow credit is **checked**: an operation either
//! succeeds conserving supply exactly, or fails (`BalanceOverflow` /
//! `InsufficientFunds`) leaving the total untouched — never a silent
//! clamp.

use dmp_core::arbiter::ledger::{Ledger, MAX_AMOUNT};
use dmp_core::error::MarketError;
use proptest::prelude::*;

const ACCOUNTS: [&str; 4] = ["alice", "bob", "carol", "dave"];

/// One randomly generated ledger operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Deposit { who: usize, amount: f64 },
    Transfer { from: usize, to: usize, amount: f64 },
    Hold { who: usize, amount: f64 },
    Release { slot: usize, to: usize, amount: f64 },
    Close { slot: usize },
}

fn decode(kind: u8, a: usize, b: usize, amount: f64) -> Op {
    match kind % 5 {
        0 => Op::Deposit {
            who: a % ACCOUNTS.len(),
            amount,
        },
        1 => Op::Transfer {
            from: a % ACCOUNTS.len(),
            to: b % ACCOUNTS.len(),
            amount,
        },
        2 => Op::Hold {
            who: a % ACCOUNTS.len(),
            amount,
        },
        3 => Op::Release {
            slot: a,
            to: b % ACCOUNTS.len(),
            amount,
        },
        _ => Op::Close { slot: a },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conservation_under_interleaved_ops(
        raw in proptest::collection::vec(
            (0u8..5, 0usize..8, 0usize..8, 0.0f64..50.0),
            1..120,
        )
    ) {
        let ledger = Ledger::new();
        let mut minted_micros: i64 = 0;
        let mut escrows: Vec<u64> = Vec::new();

        for (kind, a, b, amount) in raw {
            match decode(kind, a, b, amount) {
                Op::Deposit { who, amount } => {
                    ledger.deposit(ACCOUNTS[who], amount);
                    // Mirror the boundary rounding: what the ledger mints
                    // is the micro-credit rounding of the request.
                    let m = (amount * 1e6).round() as i64;
                    if m > 0 {
                        minted_micros += m;
                    }
                }
                Op::Transfer { from, to, amount } => {
                    let _ = ledger.transfer(ACCOUNTS[from], ACCOUNTS[to], amount);
                }
                Op::Hold { who, amount } => {
                    if let Ok(id) = ledger.hold(ACCOUNTS[who], amount) {
                        escrows.push(id);
                    }
                }
                Op::Release { slot, to, amount } => {
                    if !escrows.is_empty() {
                        let id = escrows[slot % escrows.len()];
                        let _ = ledger.release(id, ACCOUNTS[to], amount);
                    }
                }
                Op::Close { slot } => {
                    if !escrows.is_empty() {
                        let id = escrows[slot % escrows.len()];
                        let _ = ledger.close(id);
                    }
                }
            }

            // Exact conservation at every step: deposits are the only
            // mint, and every balance/escrow stays non-negative.
            let expected = minted_micros as f64 / 1e6;
            prop_assert_eq!(ledger.total_supply(), expected);
            for acct in ACCOUNTS {
                prop_assert!(ledger.balance(acct) >= 0.0);
            }
            for (_, _, remaining) in ledger.escrow_holds() {
                prop_assert!(remaining >= 0.0);
            }
        }
    }

    #[test]
    fn balances_and_holds_reconstruct_total_supply(
        raw in proptest::collection::vec(
            (0u8..5, 0usize..8, 0usize..8, 0.0f64..20.0),
            1..60,
        )
    ) {
        let ledger = Ledger::new();
        let mut escrows: Vec<u64> = Vec::new();
        for (kind, a, b, amount) in raw {
            match decode(kind, a, b, amount) {
                Op::Deposit { who, amount } => ledger.deposit(ACCOUNTS[who], amount),
                Op::Transfer { from, to, amount } => {
                    let _ = ledger.transfer(ACCOUNTS[from], ACCOUNTS[to], amount);
                }
                Op::Hold { who, amount } => {
                    if let Ok(id) = ledger.hold(ACCOUNTS[who], amount) {
                        escrows.push(id);
                    }
                }
                Op::Release { slot, to, amount } => {
                    if !escrows.is_empty() {
                        let id = escrows[slot % escrows.len()];
                        let _ = ledger.release(id, ACCOUNTS[to], amount);
                    }
                }
                Op::Close { slot } => {
                    if !escrows.is_empty() {
                        let id = escrows[slot % escrows.len()];
                        let _ = ledger.close(id);
                    }
                }
            }
        }
        // The snapshot enumerators see everything total_supply sees.
        // Summation order in f64 can differ below micro-credit
        // granularity, so compare in whole micro-credits.
        let from_accounts: f64 = ledger.balances().iter().map(|(_, v)| v).sum();
        let from_escrows: f64 = ledger.escrow_holds().iter().map(|(_, _, v)| v).sum();
        let micros = |x: f64| (x * 1e6).round() as i64;
        prop_assert_eq!(
            micros(ledger.total_supply()),
            micros(from_accounts + from_escrows)
        );
    }

    /// Near the `i64` ceiling, every transfer/escrow op either succeeds
    /// conserving the total exactly, or fails leaving it untouched —
    /// the checked-arithmetic contract. (The old `saturating_add` paths
    /// would "succeed" here while quietly destroying the credited
    /// amount.)
    #[test]
    fn near_cap_ops_conserve_or_fail_cleanly(
        raw in proptest::collection::vec(
            // Amounts up to MAX_AMOUNT so single ops can cross the
            // remaining headroom of a nearly-full account.
            (1u8..5, 0usize..8, 0usize..8, 0.0f64..MAX_AMOUNT),
            1..60,
        )
    ) {
        let ledger = Ledger::new();
        // "whale" sits at the saturation ceiling; the others have room.
        for _ in 0..12 {
            ledger.deposit(ACCOUNTS[0], MAX_AMOUNT);
        }
        ledger.deposit(ACCOUNTS[1], 1000.0);
        let mut escrows: Vec<u64> = Vec::new();

        for (kind, a, b, amount) in raw {
            let before = ledger.total_supply();
            // kind starts at 1: deposits (the only mint) are excluded,
            // so the total must be *invariant* across every op.
            let result = match decode(kind, a, b, amount) {
                Op::Deposit { .. } => unreachable!("kind range starts at 1"),
                Op::Transfer { from, to, amount } => {
                    ledger.transfer(ACCOUNTS[from], ACCOUNTS[to], amount)
                }
                Op::Hold { who, amount } => match ledger.hold(ACCOUNTS[who], amount) {
                    Ok(id) => {
                        escrows.push(id);
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
                Op::Release { slot, to, amount } => {
                    if escrows.is_empty() {
                        Ok(())
                    } else {
                        let id = escrows[slot % escrows.len()];
                        ledger.release(id, ACCOUNTS[to], amount)
                    }
                }
                Op::Close { slot } => {
                    if escrows.is_empty() {
                        Ok(())
                    } else {
                        let id = escrows[slot % escrows.len()];
                        ledger.close(id).map(|_| ())
                    }
                }
            };
            if let Err(e) = &result {
                prop_assert!(
                    matches!(
                        e,
                        MarketError::BalanceOverflow { .. }
                            | MarketError::InsufficientFunds { .. }
                            | MarketError::Invalid(_)
                            | MarketError::UnknownId(_)
                    ),
                    "unexpected near-cap error: {e}"
                );
            }
            prop_assert_eq!(
                ledger.total_supply(),
                before,
                "op changed the total without minting (result: {:?})",
                result.is_ok()
            );
            for acct in ACCOUNTS {
                prop_assert!(ledger.balance(acct) >= 0.0);
            }
        }
    }
}
