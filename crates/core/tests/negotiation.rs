//! Integration: negotiation rounds (§4.1) at the market level — the
//! arbiter describes what it lacks; a seller completes it; the blocked
//! offer then clears.

use dmp_core::market::{DataMarket, MarketConfig, OfferState};
use dmp_integration::mapping::Mapping;
use dmp_mechanism::design::MarketDesign;
use dmp_mechanism::wtp::{PriceCurve, WtpFunction};
use dmp_relation::{DataType, RelationBuilder, Value};

fn market() -> DataMarket {
    DataMarket::new(
        MarketConfig::external(77).with_design(MarketDesign::posted_price_baseline(10.0)),
    )
}

/// Seller 2's dataset with the obfuscated attribute fd = f(d).
fn s2_dataset() -> dmp_relation::Relation {
    let mut b = RelationBuilder::new("s2")
        .column("a", DataType::Int)
        .column("fd", DataType::Float);
    for i in 0..100 {
        b = b.row(vec![Value::Int(i), Value::Float(1.8 * i as f64 + 32.0)]);
    }
    b.build().unwrap()
}

#[test]
fn negotiation_round_unblocks_offer() {
    let m = market();
    let seller2 = m.seller("seller2");
    seller2.share(s2_dataset()).unwrap();

    let buyer = m.buyer("b1");
    buyer.deposit(100.0);
    let offer = m
        .submit_wtp(WtpFunction::simple(
            "b1",
            ["a", "d"],
            PriceCurve::Constant(30.0),
        ))
        .unwrap();

    // Round 1: the mashup builder cannot source `d`.
    let r1 = m.run_round();
    // (A partial sale may clear at reduced satisfaction, or none at all;
    // either way the arbiter knows what is missing.)
    let requests = m.negotiation_requests();
    if m.offer(offer).unwrap().state == OfferState::Pending {
        assert!(!requests.is_empty(), "arbiter must describe what it lacks");
        let req = &requests[0];
        assert_eq!(req.offer_id, offer);
        assert_eq!(req.buyer, "b1");
        assert!(req.missing.contains(&"d".to_string()));
        assert_eq!(req.candidate_sellers, vec!["seller2".to_string()]);
    } else {
        // Sold as a partial mashup: the request still recorded `d`.
        assert!(requests
            .iter()
            .any(|r| r.missing.contains(&"d".to_string())));
        assert!(r1.sales.iter().all(|s| s.satisfaction < 1.0));
        return; // partial path exercised; the mapping path below needs Pending
    }

    // Seller 2 responds: publishes the fd -> d mapping table.
    let mapping = Mapping::Dictionary(
        (0..100)
            .map(|i| {
                let d = i as f64;
                (Value::Float(1.8 * d + 32.0), Value::Float(d))
            })
            .collect(),
    );
    seller2
        .publish_mapping_table("fd_to_d", "fd", "d", &mapping)
        .unwrap();

    // Round 2: the offer clears with full coverage.
    let r2 = m.run_round();
    assert_eq!(r2.sales.len(), 1, "mapping table should unblock the offer");
    assert!(matches!(
        m.offer(offer).unwrap().state,
        OfferState::Fulfilled { .. }
    ));
}

#[test]
fn negotiation_requests_empty_when_all_served() {
    let m = market();
    m.seller("s")
        .share(
            RelationBuilder::new("t")
                .column("x", DataType::Int)
                .row(vec![Value::Int(1)])
                .build()
                .unwrap(),
        )
        .unwrap();
    let buyer = m.buyer("b");
    buyer.deposit(100.0);
    m.submit_wtp(WtpFunction::simple("b", ["x"], PriceCurve::Constant(20.0)))
        .unwrap();
    let r = m.run_round();
    assert_eq!(r.sales.len(), 1);
    assert!(m.negotiation_requests().is_empty());
}

#[test]
fn annotation_response_improves_discovery() {
    let m = market();
    let seller = m.seller("s");
    let mut b = RelationBuilder::new("cryptic_xyz").column("q1", DataType::Int);
    for i in 0..20 {
        b = b.row(vec![Value::Int(i)]);
    }
    let id = seller.share(b.build().unwrap()).unwrap();

    let buyer = m.buyer("b");
    buyer.deposit(100.0);
    // Keyword-restricted demand that the cryptic name cannot match.
    let mut wtp = WtpFunction::simple("b", ["q1"], PriceCurve::Constant(15.0));
    wtp.keywords = vec!["weather".into()];
    let offer = m.submit_wtp(wtp).unwrap();
    let r1 = m.run_round();
    assert!(r1.sales.is_empty());

    // Negotiation response: the seller annotates with the topic tag.
    seller.annotate(id, "weather").unwrap();
    let r2 = m.run_round();
    assert_eq!(
        r2.sales.len(),
        1,
        "semantic annotation should unblock discovery"
    );
    assert!(matches!(
        m.offer(offer).unwrap().state,
        OfferState::Fulfilled { .. }
    ));
}
