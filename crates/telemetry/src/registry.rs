//! The process-global metrics registry and its Prometheus text
//! exposition.
//!
//! Metric names follow the Prometheus data model: a bare base name
//! (`dmp_rounds_total`) or a base name plus a fixed label set
//! (`dmp_apply_us{kind="deposit"}`). The full string is the registry
//! key; the renderer splits it back apart to emit `TYPE`/`HELP` lines
//! once per base name and to splice `le` labels into histogram bucket
//! lines.
//!
//! Handles are `Arc`s: resolve them once at startup, cache them in the
//! instrumented layer, and the record path never touches the registry
//! lock again. Rendering locks the registry map only long enough to
//! clone the handle list — it can never contend with any lock the
//! instrumented layers hold.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::Histogram;

/// A monotonically-increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge (a value that goes up and down).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    metric: Metric,
    help: &'static str,
}

/// A named collection of metrics, renderable as Prometheus text.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

/// The process-global registry every layer registers into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses
    /// [`global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or register the counter `name`. The help text is stored on
    /// first registration. Panics if `name` is already registered as a
    /// different metric kind — that is a programming error, not a
    /// runtime condition.
    pub fn counter(&self, name: &str, help: &'static str) -> Arc<Counter> {
        // dmp-lint: allow(lock-reactor-inline) -- registration path: handles are OnceLock-cached at startup, the reactor only ever hits the cached Arc
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            metric: Metric::Counter(Arc::new(Counter::default())),
            help,
        });
        match &entry.metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str, help: &'static str) -> Arc<Gauge> {
        // dmp-lint: allow(lock-reactor-inline) -- registration path: handles are OnceLock-cached at startup, the reactor only ever hits the cached Arc
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            metric: Metric::Gauge(Arc::new(Gauge::default())),
            help,
        });
        match &entry.metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str, help: &'static str) -> Arc<Histogram> {
        // dmp-lint: allow(lock-reactor-inline) -- registration path: handles are OnceLock-cached at startup, the reactor only ever hits the cached Arc
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            metric: Metric::Histogram(Arc::new(Histogram::new())),
            help,
        });
        match &entry.metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format (v0.0.4). Histograms emit cumulative `_bucket` lines at
    /// power-of-two `le` boundaries (relative error already bounded by
    /// the sub-bucketing), `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        // Snapshot the handle list under the map lock, render outside
        // it: rendering cost never extends the critical section.
        let snapshot: Vec<(String, &'static str, MetricSnapshot)> = {
            // dmp-lint: allow(lock-reactor-inline) -- held only to clone the handle list; rendering happens after release, and writers are startup-time registrations
            let entries = self.entries.lock().unwrap();
            entries
                .iter()
                .map(|(name, e)| {
                    let snap = match &e.metric {
                        Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                        Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                        Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                    };
                    (name.clone(), e.help, snap)
                })
                .collect()
        };

        let mut out = String::with_capacity(4096);
        let mut last_base = String::new();
        for (name, help, snap) in snapshot {
            let (base, labels) = split_name(&name);
            if base != last_base {
                if !help.is_empty() {
                    out.push_str(&format!("# HELP {base} {help}\n"));
                }
                out.push_str(&format!("# TYPE {base} {}\n", snap.type_name()));
                last_base = base.to_string();
            }
            match snap {
                MetricSnapshot::Counter(v) => out.push_str(&format!("{name} {v}\n")),
                MetricSnapshot::Gauge(v) => out.push_str(&format!("{name} {v}\n")),
                MetricSnapshot::Histogram(h) => {
                    let mut cumulative = 0u64;
                    let mut next_boundary = 1u64;
                    for (i, &c) in h.counts.iter().enumerate() {
                        cumulative += c;
                        let bound = crate::hist::bucket_bound(i);
                        // Emit one cumulative line per power-of-two
                        // boundary crossed, while counts remain.
                        if bound >= next_boundary && bound != u64::MAX {
                            out.push_str(&bucket_line(
                                base,
                                labels,
                                &bound.to_string(),
                                cumulative,
                            ));
                            while next_boundary <= bound {
                                next_boundary = next_boundary.saturating_mul(2);
                            }
                            if bound >= h.max {
                                break; // every later bucket is empty
                            }
                        }
                    }
                    let total = h.count();
                    out.push_str(&bucket_line(base, labels, "+Inf", total));
                    out.push_str(&value_line(base, "_sum", labels, &h.sum.to_string()));
                    out.push_str(&value_line(base, "_count", labels, &total.to_string()));
                }
            }
        }
        out
    }
}

enum MetricSnapshot {
    Counter(u64),
    Gauge(i64),
    Histogram(crate::hist::HistogramSnapshot),
}

impl MetricSnapshot {
    fn type_name(&self) -> &'static str {
        match self {
            MetricSnapshot::Counter(_) => "counter",
            MetricSnapshot::Gauge(_) => "gauge",
            MetricSnapshot::Histogram(_) => "histogram",
        }
    }
}

/// Split `base{labels}` into `(base, labels)` (`labels` without
/// braces, empty for a bare name).
fn split_name(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.trim_end_matches('}')),
        None => (name, ""),
    }
}

fn bucket_line(base: &str, labels: &str, le: &str, cumulative: u64) -> String {
    if labels.is_empty() {
        format!("{base}_bucket{{le=\"{le}\"}} {cumulative}\n")
    } else {
        format!("{base}_bucket{{{labels},le=\"{le}\"}} {cumulative}\n")
    }
}

fn value_line(base: &str, suffix: &str, labels: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{base}{suffix} {value}\n")
    } else {
        format!("{base}{suffix}{{{labels}}} {value}\n")
    }
}

/// A tiny Prometheus text-format linter: every line must be a valid
/// `# HELP`/`# TYPE` comment or a `name[{label="value",...}] <number>`
/// sample. Returns the first offending line. The CI scrape test runs
/// this over a live `/metrics` body.
pub fn lint_exposition(text: &str) -> Result<(), String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    fn valid_labels(s: &str) -> bool {
        // label="value" pairs, comma-separated; values may not contain
        // unescaped quotes (our renderer never emits escapes).
        s.split(',').all(|pair| match pair.split_once('=') {
            Some((k, v)) => valid_name(k) && v.len() >= 2 && v.starts_with('"') && v.ends_with('"'),
            None => false,
        })
    }
    for (lineno, line) in text.lines().enumerate() {
        let err = |why: &str| Err(format!("line {}: {why}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match keyword {
                "HELP" if valid_name(name) => continue,
                "TYPE" => {
                    let kind = parts.next().unwrap_or("");
                    if valid_name(name)
                        && matches!(
                            kind,
                            "counter" | "gauge" | "histogram" | "summary" | "untyped"
                        )
                    {
                        continue;
                    }
                    return err("bad TYPE comment");
                }
                _ => return err("bad comment"),
            }
        }
        // Sample line: name or name{labels}, one space, a number.
        let Some((series, value)) = line.rsplit_once(' ') else {
            return err("no value");
        };
        if value.parse::<f64>().is_err() {
            return err("value is not a number");
        }
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => match rest.strip_suffix('}') {
                Some(l) => (n, l),
                None => return err("unterminated label set"),
            },
            None => (series, ""),
        };
        if !valid_name(name) {
            return err("bad metric name");
        }
        if !labels.is_empty() && !valid_labels(labels) {
            return err("bad label set");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x_total", "a counter");
        let b = r.counter("x_total", "a counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", "");
        r.gauge("x", "");
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let r = Registry::new();
        r.counter("req_total", "requests").add(7);
        r.gauge("conns", "open connections").set(-2);
        let h = r.histogram("lat_us{endpoint=\"/health\"}", "latency");
        h.record(3);
        h.record(300);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE req_total counter"), "{text}");
        assert!(text.contains("req_total 7"), "{text}");
        assert!(text.contains("conns -2"), "{text}");
        assert!(
            text.contains("lat_us_bucket{endpoint=\"/health\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_sum{endpoint=\"/health\"} 303"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_count{endpoint=\"/health\"} 2"),
            "{text}"
        );
        lint_exposition(&text).expect("rendered exposition must lint clean");
    }

    #[test]
    fn histogram_bucket_lines_are_cumulative_and_monotone() {
        let r = Registry::new();
        let h = r.histogram("h_us", "");
        for v in [1u64, 2, 4, 100, 10_000, 1_000_000] {
            h.record(v);
        }
        let text = r.render_prometheus();
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if line.starts_with("h_us_bucket") {
                let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(count >= last, "cumulative counts must not decrease: {text}");
                last = count;
                bucket_lines += 1;
            }
        }
        assert!(bucket_lines > 3, "expected several le boundaries: {text}");
        assert_eq!(last, 6, "+Inf bucket holds everything");
    }

    #[test]
    fn linter_rejects_malformed_lines() {
        assert!(lint_exposition("ok_metric 1\n").is_ok());
        assert!(lint_exposition("bad metric name 1\n").is_err());
        assert!(lint_exposition("no_value\n").is_err());
        assert!(lint_exposition("x{unterminated=\"v\" 1\n").is_err());
        assert!(lint_exposition("x{k=noquotes} 1\n").is_err());
        assert!(lint_exposition("x NaNope\n").is_err());
        assert!(lint_exposition("# BOGUS comment\n").is_err());
        assert!(lint_exposition("# TYPE x flavor\n").is_err());
    }
}
