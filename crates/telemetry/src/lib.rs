//! # dmp-telemetry
//!
//! Zero-dependency (std-only — the build environment has no crates.io
//! access) observability for the data market platform:
//!
//! * [`hist`] — log-bucketed (HDR-style: power-of-two major buckets,
//!   linear sub-buckets) latency histograms with a lock-free
//!   [`hist::Histogram::record`] hot path and mergeable
//!   [`hist::HistogramSnapshot`]s;
//! * [`registry`] — a process-global [`registry::Registry`] of atomic
//!   counters, gauges and histograms, rendered on demand in the
//!   Prometheus text exposition format (plus a tiny format linter the
//!   CI scrape test runs);
//! * [`trace`] — a bounded, lossy-by-design (drop-counted) ring buffer
//!   of structured spans, exported as JSON;
//! * [`log`] — a structured, level-filtered logger behind the
//!   [`log!`] macro, gated by the `DMP_LOG` env var and **off by
//!   default** so benches stay clean.
//!
//! Design rules:
//!
//! * Recording is wait-free or lossy: counters/gauges/histograms are
//!   plain atomic RMWs; the tracer `try_lock`s its ring and counts a
//!   drop instead of ever blocking a hot thread.
//! * Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s
//!   resolved once at startup and cached by the instrumented layer —
//!   the registry's map lock is touched at registration and at
//!   render time only, never on the record path.
//! * Rendering takes no lock other than the registry's own map mutex
//!   (briefly, to clone the handle list): scraping `/metrics` can
//!   never contend with an apply-pool or WAL mutex.

pub mod hist;
pub mod log;
pub mod registry;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use log::Level;
pub use registry::{global, lint_exposition, Counter, Gauge, Registry};
pub use trace::{tracer, TraceEvent, Tracer};
