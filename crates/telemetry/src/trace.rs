//! A bounded, lossy-by-design ring buffer of structured spans.
//!
//! Hot threads call [`Tracer::record`] (or hold a [`SpanGuard`]); the
//! write path `try_lock`s the ring and, when another thread holds it,
//! **drops the event and counts the drop** instead of ever blocking —
//! a tracer must never turn into a lock the reactor or an apply worker
//! can stall on. The ring keeps the most recent `capacity` events;
//! older ones fall off the front. `GET /trace` serializes a snapshot
//! as JSON.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the tracer was created (process start for
    /// the global tracer).
    pub ts_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Static span name (layer/operation, e.g. `"apply:/deposits"`).
    pub name: &'static str,
    /// Free-form numeric payload (sequence number, count, bytes — the
    /// span name decides).
    pub detail: u64,
}

/// The default global ring capacity.
pub const DEFAULT_CAPACITY: usize = 1024;

/// A bounded span ring.
pub struct Tracer {
    start: Instant,
    ring: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
    capacity: usize,
}

/// The process-global tracer (capacity [`DEFAULT_CAPACITY`]).
pub fn tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::with_capacity(DEFAULT_CAPACITY))
}

impl Tracer {
    /// A tracer keeping the most recent `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            start: Instant::now(),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Microseconds since the tracer started.
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Record a completed span. Never blocks: a contended ring drops
    /// the event and bumps the drop counter.
    pub fn record(&self, name: &'static str, dur_us: u64, detail: u64) {
        let event = TraceEvent {
            ts_us: self.now_us(),
            dur_us,
            name,
            detail,
        };
        match self.ring.try_lock() {
            Ok(mut ring) => {
                if ring.len() == self.capacity {
                    ring.pop_front();
                }
                ring.push_back(event);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Open a span that records itself (with the elapsed time) when the
    /// guard drops.
    pub fn span(&self, name: &'static str, detail: u64) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            name,
            detail,
            started: Instant::now(),
        }
    }

    /// Events dropped because the ring was contended.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the current ring, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.ring
            // dmp-lint: allow(lock-reactor-inline) -- bounded hold: writers only try_lock (lossy), so this copy-out never waits behind a long writer
            .lock()
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The ring plus drop counter as a JSON document (the `/trace`
    /// response body). Span names are static identifiers without
    /// quotes or control characters, so no escaping is needed.
    pub fn to_json(&self) -> String {
        let events = self.snapshot();
        let mut out = String::with_capacity(events.len() * 64 + 64);
        out.push_str(&format!("{{\"dropped\":{},\"spans\":[", self.dropped()));
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ts_us\":{},\"dur_us\":{},\"detail\":{}}}",
                e.name, e.ts_us, e.dur_us, e.detail
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Records a span on drop (see [`Tracer::span`]).
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    detail: u64,
    started: Instant,
}

impl SpanGuard<'_> {
    /// Update the detail payload before the span closes.
    pub fn set_detail(&mut self, detail: u64) {
        self.detail = detail;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let dur_us = self.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.tracer.record(self.name, dur_us, self.detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            t.record("e", i, i);
        }
        let events = t.snapshot();
        assert_eq!(events.len(), 4);
        let details: Vec<u64> = events.iter().map(|e| e.detail).collect();
        assert_eq!(details, [6, 7, 8, 9], "oldest events fall off the front");
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let t = Tracer::with_capacity(8);
        {
            let mut span = t.span("work", 0);
            span.set_detail(42);
        }
        let events = t.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "work");
        assert_eq!(events[0].detail, 42);
    }

    #[test]
    fn json_form_is_parseable_shape() {
        let t = Tracer::with_capacity(2);
        t.record("a", 5, 1);
        let json = t.to_json();
        assert!(json.starts_with("{\"dropped\":0,\"spans\":["), "{json}");
        assert!(json.contains("\"name\":\"a\""), "{json}");
        assert!(json.ends_with("]}"), "{json}");
    }

    #[test]
    fn contended_ring_drops_not_blocks() {
        let t = Tracer::with_capacity(8);
        let guard = t.ring.lock().unwrap();
        t.record("dropped", 1, 1);
        drop(guard);
        assert_eq!(t.dropped(), 1);
        assert!(t.snapshot().is_empty());
    }
}
