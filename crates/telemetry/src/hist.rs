//! Log-bucketed latency histograms (HDR-style).
//!
//! Values (typically microseconds) land in one of [`BUCKET_COUNT`]
//! buckets: the first two groups are exact (one bucket per value for
//! `0..32`), and every later power-of-two range is split into
//! [`SUB_COUNT`] linear sub-buckets, so the relative quantile error is
//! bounded by `1/SUB_COUNT` (6.25%) across the entire `u64` range.
//!
//! [`Histogram::record`] is lock-free — one `fetch_add` on the bucket,
//! plus `fetch_add`/`fetch_min`/`fetch_max` for the sum/min/max — and
//! safe to call from any number of threads. [`Histogram::snapshot`]
//! copies the counters without stopping writers (a snapshot taken mid
//! record may be off by the records in flight; monitoring, not
//! accounting). Snapshots merge, subtract, and answer quantiles.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket precision: each power-of-two range splits into
/// `2^SUB_BITS` linear buckets.
pub const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two group.
pub const SUB_COUNT: usize = 1 << SUB_BITS;
/// Power-of-two groups past the exact range (`msb` in `SUB_BITS..64`).
const GROUPS: usize = 64 - SUB_BITS as usize;
/// Total buckets.
pub const BUCKET_COUNT: usize = SUB_COUNT + GROUPS * SUB_COUNT;

/// The bucket a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let group = (msb - SUB_BITS + 1) as usize;
    let offset = ((v >> (msb - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
    group * SUB_COUNT + offset
}

/// Inclusive upper bound of bucket `i` (strictly monotone in `i`; the
/// last bucket absorbs everything up to `u64::MAX`).
pub fn bucket_bound(i: usize) -> u64 {
    assert!(i < BUCKET_COUNT, "bucket index out of range");
    if i < 2 * SUB_COUNT {
        return i as u64; // exact range: one value per bucket
    }
    if i == BUCKET_COUNT - 1 {
        return u64::MAX;
    }
    let group = i / SUB_COUNT;
    let offset = (i % SUB_COUNT) as u64;
    let shift = group as u32 - 1; // msb - SUB_BITS for this group
    ((SUB_COUNT as u64 + offset + 1) << shift) - 1
}

/// A concurrent log-bucketed histogram.
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Lock-free: four relaxed atomic RMWs.
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in whole microseconds (the convention every
    /// `*_us` histogram in the platform uses).
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Copy the current counters into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Total records so far (sums the buckets).
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// An immutable copy of a [`Histogram`]'s counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts ([`BUCKET_COUNT`] entries).
    pub counts: Vec<u64>,
    /// Sum of every recorded value.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; BUCKET_COUNT],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Total records.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merge another snapshot into this one (bucket-wise addition —
    /// the merged quantiles are the quantiles of the combined stream,
    /// up to bucket resolution).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        // The live histogram's atomic sum wraps mod 2^64 (fetch_add);
        // snapshot arithmetic must match or merging panics in debug.
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise difference `self - earlier` (for interval views over
    /// cumulative histograms). Saturates at zero per bucket.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.wrapping_sub(earlier.sum),
            // min/max are lifetime extrema; an interval delta keeps the
            // conservative envelope rather than inventing tighter ones.
            min: self.min,
            max: self.max,
        }
    }

    /// The value at quantile `q` (0.0..=1.0): the upper bound of the
    /// bucket holding the rank-`ceil(q*count)` record, clamped into
    /// `[min, max]`. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let total = self.count();
        if total == 0 {
            0.0
        } else {
            self.sum as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
    }

    #[test]
    fn bounds_are_strictly_monotone() {
        for i in 1..BUCKET_COUNT {
            assert!(
                bucket_bound(i) > bucket_bound(i - 1),
                "bound({i}) = {} !> bound({}) = {}",
                bucket_bound(i),
                i - 1,
                bucket_bound(i - 1)
            );
        }
    }

    #[test]
    fn every_value_lands_at_or_below_its_bound() {
        for v in [
            0u64,
            1,
            15,
            16,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            65_535,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(v <= bucket_bound(i), "v={v} above bound of its bucket {i}");
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "v={v} also fits bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // The bucket bound overestimates a value by at most 1/SUB_COUNT.
        for v in [100u64, 999, 12_345, 1 << 25, (1 << 50) + 7] {
            let bound = bucket_bound(bucket_index(v));
            assert!((bound - v) as f64 / v as f64 <= 1.0 / SUB_COUNT as f64 + 1e-12);
        }
    }

    #[test]
    fn record_and_quantile() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        assert!((470..=530).contains(&p50), "p50={p50}");
        let p99 = s.quantile(0.99);
        assert!((980..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn merge_conserves_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100 {
            a.record(v);
            b.record(v * 1000);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 200);
        assert_eq!(m.min, 0);
        assert_eq!(m.max, 99_000);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 80_000);
    }
}
