//! Structured, level-filtered logging behind the [`log!`](crate::log!)
//! macro.
//!
//! The level comes from the `DMP_LOG` environment variable
//! (`error`/`warn`/`info`/`debug`/`trace`), resolved once on first
//! use; unset or unrecognized means **off** — benches and tests pay
//! one atomic load per call site and produce no output. Lines are
//! `key=value` structured text on stderr:
//!
//! ```text
//! ts_ms=1754650000123 level=warn target=dmp_service::node snapshot failed seq=42 err=...
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or state-threatening conditions.
    Error = 1,
    /// Degraded-but-running conditions (failed snapshot, poisoned WAL).
    Warn = 2,
    /// Lifecycle events (recovery completed, gateway bound).
    Info = 3,
    /// Per-operation detail.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// 0 = off, 1..=5 = max enabled level, 255 = not yet resolved.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(255);

fn resolve_level() -> u8 {
    let level = match std::env::var("DMP_LOG").as_deref() {
        Ok("error") | Ok("ERROR") => 1,
        Ok("warn") | Ok("WARN") => 2,
        Ok("info") | Ok("INFO") => 3,
        Ok("debug") | Ok("DEBUG") => 4,
        Ok("trace") | Ok("TRACE") => 5,
        // Unset, empty, "off", or anything unrecognized: silent.
        _ => 0,
    };
    MAX_LEVEL.store(level, Ordering::Relaxed);
    level
}

/// Whether `level` is currently enabled (one relaxed load after the
/// first call).
pub fn enabled(level: Level) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    let max = if max == 255 { resolve_level() } else { max };
    level as u8 <= max
}

/// Test/diagnostic hook: override the level set from `DMP_LOG`.
pub fn set_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
}

/// Emit one structured line to stderr (called by the macro after the
/// level check; not meant to be called directly).
#[doc(hidden)]
pub fn write(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    eprintln!(
        "ts_ms={ts_ms} level={} target={target} {args}",
        level.as_str()
    );
}

/// Structured, level-filtered logging:
///
/// ```
/// dmp_telemetry::log!(Warn, "snapshot failed seq={} err={}", 42, "disk full");
/// ```
///
/// The first argument is a [`Level`](crate::Level) variant name; the
/// rest is a `format!` body — by convention `key=value` pairs after a
/// short message. Disabled levels cost one atomic load and never
/// evaluate the format arguments.
#[macro_export]
macro_rules! log {
    ($level:ident, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::$level) {
            $crate::log::write(
                $crate::log::Level::$level,
                module_path!(),
                format_args!($($arg)*),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Trace);
    }

    #[test]
    fn set_level_gates_enabled() {
        set_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(None);
        assert!(!enabled(Level::Error), "off silences everything");
        // Macro compiles and is silent when off.
        crate::log!(Error, "should not print x={}", 1);
    }
}
