//! Property tests for the log-bucketed histogram: bucket geometry,
//! count conservation under merge, and quantile bounds.

use dmp_telemetry::hist::{bucket_bound, bucket_index, BUCKET_COUNT, SUB_COUNT};
use dmp_telemetry::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Mixed-magnitude values: uniform small ints, wide log-scale ints,
/// and the extremes.
fn arb_value() -> impl Strategy<Value = u64> {
    (0u32..4, 0u64..u64::MAX).prop_map(|(kind, raw)| match kind {
        0 => raw % 32,          // exact range
        1 => raw % 100_000,     // typical latency range
        2 => raw >> (raw % 60), // log-scale spread
        _ => [0, 1, u64::MAX - 1, u64::MAX][(raw % 4) as usize],
    })
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn bounds_are_monotone_and_values_fit(v in arb_value()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKET_COUNT);
        prop_assert!(v <= bucket_bound(i), "value above its bucket bound");
        if i > 0 {
            prop_assert!(v > bucket_bound(i - 1), "value also fits the previous bucket");
            prop_assert!(bucket_bound(i) > bucket_bound(i - 1), "bounds must be strictly monotone");
        }
        // Relative overestimate bounded by the sub-bucket resolution.
        if v > 0 && v < u64::MAX / 2 {
            let bound = bucket_bound(i);
            prop_assert!(
                (bound - v) as f64 <= v as f64 / SUB_COUNT as f64 + 1.0,
                "bucket bound {bound} too far above value {v}"
            );
        }
    }

    #[test]
    fn merge_conserves_counts_and_extrema(
        a in prop::collection::vec(arb_value(), 0..200),
        b in prop::collection::vec(arb_value(), 0..200),
    ) {
        let sa = snapshot_of(&a);
        let sb = snapshot_of(&b);
        let mut merged = sa.clone();
        merged.merge(&sb);
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        for i in 0..BUCKET_COUNT {
            prop_assert_eq!(merged.counts[i], sa.counts[i] + sb.counts[i]);
        }
        prop_assert_eq!(merged.min, sa.min.min(sb.min));
        prop_assert_eq!(merged.max, sa.max.max(sb.max));
        // Merging the other way round is identical.
        let mut flipped = sb.clone();
        flipped.merge(&sa);
        prop_assert_eq!(flipped, merged);
        // A merged snapshot equals one histogram fed both streams.
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(snapshot_of(&both), merged);
    }

    #[test]
    fn quantiles_stay_within_min_max(
        values in prop::collection::vec(arb_value(), 1..300),
        q in 0.0f64..1.0,
    ) {
        let s = snapshot_of(&values);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(s.min, min);
        prop_assert_eq!(s.max, max);
        for q in [0.0, q, 0.5, 0.99, 1.0] {
            let est = s.quantile(q);
            prop_assert!(
                (min..=max).contains(&est),
                "quantile({q}) = {est} outside [{min}, {max}]"
            );
        }
    }

    #[test]
    fn quantile_is_monotone_in_q(values in prop::collection::vec(arb_value(), 1..200)) {
        let s = snapshot_of(&values);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for pair in qs.windows(2) {
            prop_assert!(
                s.quantile(pair[0]) <= s.quantile(pair[1]),
                "quantile must be monotone in q"
            );
        }
    }

    #[test]
    fn delta_since_inverts_merge(
        base in prop::collection::vec(arb_value(), 0..100),
        extra in prop::collection::vec(arb_value(), 0..100),
    ) {
        let before = snapshot_of(&base);
        let mut after = before.clone();
        after.merge(&snapshot_of(&extra));
        let delta = after.delta_since(&before);
        prop_assert_eq!(delta.count(), extra.len() as u64);
        for (d, e) in delta.counts.iter().zip(&snapshot_of(&extra).counts) {
            prop_assert_eq!(d, e);
        }
    }
}
