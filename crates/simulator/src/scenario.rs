//! Named simulation scenarios: the configurations the experiment suite
//! (DESIGN.md §2) runs. Each scenario pins a workload, a strategy mix,
//! and a market design, so experiments are one-liners.

use dmp_core::market::MarketConfig;
use dmp_mechanism::design::MarketDesign;

use crate::agents::{BuyerStrategy, SellerStrategy};
use crate::engine::{SimConfig, SimResult, Simulation};
use crate::workload::{generate, Workload, WorkloadConfig};

/// A named, reproducible scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name.
    pub name: String,
    /// Workload parameters.
    pub workload: WorkloadConfig,
    /// Buyer strategy mix (cycled over buyers).
    pub buyers: Vec<BuyerStrategy>,
    /// Seller strategy mix (cycled over sellers).
    pub sellers: Vec<SellerStrategy>,
    /// Market configuration.
    pub market: MarketConfig,
    /// Rounds to run.
    pub rounds: u64,
}

impl Scenario {
    /// All-honest baseline on a posted-price external market.
    pub fn baseline(seed: u64) -> Self {
        Scenario {
            name: "baseline".into(),
            workload: WorkloadConfig {
                seed,
                ..Default::default()
            },
            buyers: vec![BuyerStrategy::Truthful],
            sellers: vec![SellerStrategy::Honest],
            market: MarketConfig::external(seed)
                .with_design(MarketDesign::posted_price_baseline(20.0)),
            rounds: 8,
        }
    }

    /// Adversarial mix (E6): `frac` of buyers shade/collude and `frac`
    /// of sellers spam/overprice/fault.
    pub fn adversarial(seed: u64, frac: f64, design: MarketDesign) -> Self {
        // Build strategy mixes whose adversarial share ≈ frac.
        let slots = 10usize;
        let adv = ((slots as f64) * frac).round() as usize;
        let mut buyers = Vec::with_capacity(slots);
        let mut sellers = Vec::with_capacity(slots);
        for i in 0..slots {
            if i < adv {
                buyers.push(match i % 3 {
                    0 => BuyerStrategy::Shade(0.4),
                    1 => BuyerStrategy::Colluder {
                        coalition: 1,
                        shade: 0.3,
                    },
                    _ => BuyerStrategy::Ignorant(0.6),
                });
                sellers.push(match i % 3 {
                    0 => SellerStrategy::Spammer { copies: 2 },
                    1 => SellerStrategy::Overpricer { reserve: 500.0 },
                    _ => SellerStrategy::Faulty { fail_prob: 0.5 },
                });
            } else {
                buyers.push(BuyerStrategy::Truthful);
                sellers.push(SellerStrategy::Honest);
            }
        }
        Scenario {
            name: format!("adversarial-{:.0}%", frac * 100.0),
            workload: WorkloadConfig {
                n_sellers: 10,
                n_buyers: 30,
                seed,
                ..Default::default()
            },
            buyers,
            sellers,
            market: MarketConfig::external(seed).with_design(design),
            rounds: 8,
        }
    }

    /// Market-kind comparison (E12): the same workload on internal /
    /// external / barter configs.
    pub fn market_kind(seed: u64, market: MarketConfig, name: &str) -> Self {
        Scenario {
            name: name.into(),
            workload: WorkloadConfig {
                seed,
                ..Default::default()
            },
            buyers: vec![BuyerStrategy::Truthful],
            sellers: vec![SellerStrategy::Honest],
            market,
            rounds: 8,
        }
    }

    /// Economic-opportunity scenario (E11): demand nobody supplies at
    /// start + opportunists who fabricate it.
    pub fn opportunist(seed: u64, with_opportunist: bool) -> Self {
        Scenario {
            name: if with_opportunist {
                "with-opportunist".into()
            } else {
                "without-opportunist".into()
            },
            workload: WorkloadConfig {
                n_sellers: 6,
                n_buyers: 12,
                seed,
                ..Default::default()
            },
            buyers: vec![BuyerStrategy::Truthful],
            sellers: if with_opportunist {
                vec![SellerStrategy::Opportunist, SellerStrategy::Honest]
            } else {
                vec![SellerStrategy::Honest]
            },
            market: MarketConfig::external(seed)
                .with_design(MarketDesign::posted_price_baseline(10.0)),
            rounds: 6,
        }
    }

    /// Materialize the workload.
    pub fn workload(&self) -> Workload {
        generate(&self.workload)
    }

    /// Build the simulation.
    pub fn build(&self) -> Simulation {
        let cfg = SimConfig::new(self.market.clone(), self.rounds);
        Simulation::new(
            cfg,
            self.workload(),
            self.buyers.clone(),
            self.sellers.clone(),
        )
    }

    /// Build and run to completion.
    pub fn run(&self) -> SimResult {
        self.build().run(self.rounds)
    }
}

/// Run several scenarios concurrently on scoped threads — the
/// multi-seed / multi-design sweeps of §6.1 are embarrassingly
/// parallel (every scenario owns its own `DataMarket`). Results come
/// back in input order.
pub fn run_parallel(scenarios: &[Scenario]) -> Vec<SimResult> {
    let mut results: Vec<Option<SimResult>> = Vec::new();
    results.resize_with(scenarios.len(), || None);
    std::thread::scope(|scope| {
        for (slot, scenario) in results.iter_mut().zip(scenarios) {
            scope.spawn(move || {
                *slot = Some(scenario.run());
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_trades() {
        let result = Scenario::baseline(3).run();
        assert!(result.metrics.transactions > 0);
        assert!(result.metrics.fill_rate > 0.3);
    }

    #[test]
    fn adversarial_mix_reduces_welfare() {
        let design = MarketDesign::posted_price_baseline(20.0);
        let clean = Scenario::adversarial(3, 0.0, design.clone()).run();
        let dirty = Scenario::adversarial(3, 0.5, design).run();
        assert!(
            dirty.metrics.welfare <= clean.metrics.welfare,
            "adversaries should not raise welfare: {} vs {}",
            dirty.metrics.welfare,
            clean.metrics.welfare
        );
    }

    #[test]
    fn opportunist_scenario_builds() {
        let with = Scenario::opportunist(5, true);
        let without = Scenario::opportunist(5, false);
        assert_ne!(with.name, without.name);
        assert!(with
            .sellers
            .iter()
            .any(|s| matches!(s, SellerStrategy::Opportunist)));
    }

    #[test]
    fn parallel_sweep_matches_serial_runs() {
        let scenarios = vec![
            Scenario::baseline(1),
            Scenario::baseline(2),
            Scenario::opportunist(3, true),
        ];
        let parallel = run_parallel(&scenarios);
        assert_eq!(parallel.len(), 3);
        for (scenario, result) in scenarios.iter().zip(&parallel) {
            let serial = scenario.run();
            assert_eq!(serial.metrics.transactions, result.metrics.transactions);
            assert!((serial.metrics.revenue - result.metrics.revenue).abs() < 1e-9);
        }
    }

    #[test]
    fn scenarios_are_reproducible() {
        let a = Scenario::baseline(9).run();
        let b = Scenario::baseline(9).run();
        assert_eq!(a.metrics.transactions, b.metrics.transactions);
        assert!((a.metrics.revenue - b.metrics.revenue).abs() < 1e-9);
    }
}
