//! The round-based simulation engine (Fig. 1 (3)): drives a *real*
//! [`DataMarket`] with strategic agents, so a market design is tested on
//! exactly the software that will deploy it (the explicit interplay
//! between market design and DMMS the paper calls for).

use std::collections::HashMap;

use rand::Rng;
use rand::SeedableRng;

use dmp_core::market::{DataMarket, MarketConfig};
use dmp_mechanism::elicitation::ElicitationProtocol;
use dmp_mechanism::wtp::{PriceCurve, WtpFunction};
use dmp_relation::{DataType, RelationBuilder, Value};

use crate::agents::{BuyerStrategy, SellerStrategy};
use crate::metrics::MarketMetrics;
use crate::workload::{Demand, Workload};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Market configuration (kind, design, currency).
    pub market: MarketConfig,
    /// Rounds to run.
    pub rounds: u64,
    /// Funds deposited per buyer at enrollment (money markets).
    pub buyer_funds: f64,
    /// Engine RNG seed (strategy noise).
    pub seed: u64,
    /// Attach `OwnershipTransfer` licenses to every seller dataset so
    /// arbitrageurs may legally resell (§7.1 scenarios).
    pub resale_allowed: bool,
}

impl SimConfig {
    /// Default simulation over a market config.
    pub fn new(market: MarketConfig, rounds: u64) -> Self {
        SimConfig {
            market,
            rounds,
            buyer_funds: 10_000.0,
            seed: 99,
            resale_allowed: false,
        }
    }

    /// Allow resale (arbitrageur scenarios).
    pub fn with_resale(mut self) -> Self {
        self.resale_allowed = true;
        self
    }
}

/// Per-round summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundSummary {
    /// Round number.
    pub round: u64,
    /// Revenue settled this round.
    pub revenue: f64,
    /// Transactions settled this round.
    pub transactions: usize,
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Aggregated metrics.
    pub metrics: MarketMetrics,
    /// Per-round series (for trajectory plots).
    pub per_round: Vec<RoundSummary>,
}

/// The simulation itself.
pub struct Simulation {
    market: DataMarket,
    demands: Vec<Demand>,
    buyer_strategies: Vec<BuyerStrategy>,
    sellers: Vec<(String, SellerStrategy)>,
    rng: rand::rngs::StdRng,
    submitted: Vec<bool>,
    filled: Vec<bool>,
    offer_to_demand: HashMap<u64, usize>,
    utilities: HashMap<String, f64>,
    satisfaction_sum: f64,
    welfare: f64,
    opportunist_counter: usize,
    /// Arbitrageur deliveries already transformed + relisted.
    arbitraged: std::collections::HashSet<u64>,
    /// Offers submitted by arbitrageurs (excluded from demand metrics).
    arbitrageur_offers: std::collections::HashSet<u64>,
}

impl Simulation {
    /// Set up: deploy the market, register seller inventories per
    /// strategy, fund buyers. `buyer_strategies` aligns with
    /// `workload.demands`, `seller_strategies` with
    /// `workload.inventories` (both cycle if shorter).
    pub fn new(
        cfg: SimConfig,
        workload: Workload,
        buyer_strategies: Vec<BuyerStrategy>,
        seller_strategies: Vec<SellerStrategy>,
    ) -> Self {
        let resale_allowed = cfg.resale_allowed;
        let market = DataMarket::new(cfg.market);
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);

        let set_license = |handle: &dmp_core::seller::SellerHandle<'_>, id| {
            if resale_allowed {
                let _ = handle.set_license(id, dmp_core::license::License::OwnershipTransfer);
            }
        };
        let mut sellers = Vec::new();
        for (i, (name, tables)) in workload.inventories.iter().enumerate() {
            let strategy = seller_strategies
                .get(i % seller_strategies.len().max(1))
                .cloned()
                .unwrap_or(SellerStrategy::Honest);
            let handle = market.seller(name);
            match &strategy {
                SellerStrategy::Honest => {
                    for t in tables {
                        if let Ok(id) = handle.share(t.clone()) {
                            set_license(&handle, id);
                        }
                    }
                }
                SellerStrategy::Spammer { copies } => {
                    for t in tables {
                        if let Ok(id) = handle.share(t.clone()) {
                            set_license(&handle, id);
                        }
                        for c in 0..*copies {
                            let dup = t.clone().named(format!("{}_dup{c}", t.name()));
                            if let Ok(id) = handle.share(dup) {
                                set_license(&handle, id);
                            }
                        }
                    }
                }
                SellerStrategy::Overpricer { reserve } => {
                    for t in tables {
                        if let Ok(id) = handle.share(t.clone()) {
                            let _ = handle.set_reserve(id, *reserve);
                            set_license(&handle, id);
                        }
                    }
                }
                SellerStrategy::Faulty { fail_prob } => {
                    for t in tables {
                        if rng.gen::<f64>() >= *fail_prob {
                            if let Ok(id) = handle.share(t.clone()) {
                                set_license(&handle, id);
                            }
                        }
                    }
                }
                SellerStrategy::Opportunist | SellerStrategy::Arbitrageur { .. } => {
                    // Starts with nothing.
                }
            }
            sellers.push((name.clone(), strategy));
        }

        let n = workload.demands.len();
        let buyer_strategies: Vec<BuyerStrategy> = (0..n)
            .map(|i| {
                buyer_strategies
                    .get(i % buyer_strategies.len().max(1))
                    .cloned()
                    .unwrap_or(BuyerStrategy::Truthful)
            })
            .collect();
        for d in &workload.demands {
            let b = market.buyer(&d.buyer);
            if cfg.buyer_funds > 0.0 {
                b.deposit(cfg.buyer_funds);
            }
        }

        Simulation {
            market,
            demands: workload.demands,
            buyer_strategies,
            sellers,
            rng,
            submitted: vec![false; n],
            filled: vec![false; n],
            offer_to_demand: HashMap::new(),
            utilities: HashMap::new(),
            satisfaction_sum: 0.0,
            welfare: 0.0,
            opportunist_counter: 0,
            arbitraged: std::collections::HashSet::new(),
            arbitrageur_offers: std::collections::HashSet::new(),
        }
    }

    /// Access the underlying market (inspection in tests/benches).
    pub fn market(&self) -> &DataMarket {
        &self.market
    }

    /// Run the configured number of rounds.
    pub fn run(&mut self, rounds: u64) -> SimResult {
        let mut per_round = Vec::with_capacity(rounds as usize);
        for r in 0..rounds {
            self.seller_phase();
            self.buyer_phase(r);
            let report = self.market.run_round();
            let mut revenue = report.revenue;
            let mut transactions = report.sales.len();
            self.account_sales(&report.sales);
            // Ex post deliveries need reports before money moves.
            let (rev2, tx2) = self.ex_post_phase();
            revenue += rev2;
            transactions += tx2;
            self.arbitrage_phase();
            per_round.push(RoundSummary {
                round: r + 1,
                revenue,
                transactions,
            });
        }
        self.finalize(per_round)
    }

    /// Opportunists inspect the demand report and fabricate supply;
    /// arbitrageurs place standing buy offers (§7.1: "buy certain
    /// datasets, transform them, [...] and sell them again").
    fn seller_phase(&mut self) {
        let names_all: Vec<(String, SellerStrategy)> = self.sellers.clone();
        for (name, strategy) in &names_all {
            if let SellerStrategy::Arbitrageur { budget } = strategy {
                // One standing acquisition offer per arbitrageur: buy the
                // most popular topic's attributes cheaply.
                let already = self.market.offers().iter().any(|o| {
                    o.wtp.buyer == *name && o.state == dmp_core::market::OfferState::Pending
                });
                if !already {
                    let buyer = self.market.buyer(name);
                    buyer.deposit(*budget);
                    let attrs = crate::workload::topic_attributes(0);
                    let wtp = WtpFunction::simple(
                        name.clone(),
                        attrs,
                        PriceCurve::Linear {
                            min_satisfaction: 0.2,
                            max_price: *budget,
                        },
                    );
                    if let Ok(offer) = self.market.submit_wtp(wtp) {
                        self.arbitrageur_offers.insert(offer);
                    }
                }
            }
        }
        let report = self.market.demand_report();
        if report.missing_attributes.is_empty() {
            return;
        }
        let names: Vec<(String, SellerStrategy)> = self.sellers.clone();
        for (name, strategy) in names {
            if matches!(strategy, SellerStrategy::Opportunist) {
                // Build one table carrying every missing attribute.
                let mut b = RelationBuilder::new(format!(
                    "opportunist_{}_{}",
                    name, self.opportunist_counter
                ));
                self.opportunist_counter += 1;
                for (attr, _) in &report.missing_attributes {
                    b = b.column(attr.clone(), DataType::Int);
                }
                let width = report.missing_attributes.len();
                let mut rows = Vec::new();
                for r in 0..50i64 {
                    rows.push(vec![Value::Int(r); width]);
                }
                if let Ok(rel) = b.rows(rows).build() {
                    let _ = self.market.seller(&name).share(rel);
                }
            }
        }
    }

    /// Buyers submit offers per strategy.
    fn buyer_phase(&mut self, round: u64) {
        for i in 0..self.demands.len() {
            if self.submitted[i] {
                continue;
            }
            let d = &self.demands[i];
            let strategy = &self.buyer_strategies[i];
            let bid = match strategy.bid(d.valuation, round, &mut self.rng) {
                Some(b) => b,
                None => continue, // snipers wait
            };
            // Under use-then-pay (ex post) elicitation the declared WTP is
            // only the escrowed cap; the strategic action happens at report
            // time (`ex_post_phase`). Declaring a shaded cap as well would
            // make under-reporting self-consistent and undetectable by the
            // arbiter's audit, so strategies declare their true cap here.
            let bid = if matches!(
                self.market.config().design.elicitation,
                ElicitationProtocol::ExPost(_)
            ) {
                d.valuation.max(bid)
            } else {
                bid
            };
            let wtp = WtpFunction::simple(
                d.buyer.clone(),
                d.attributes.iter().cloned(),
                PriceCurve::Linear {
                    min_satisfaction: 0.2,
                    max_price: bid,
                },
            );
            if let Ok(offer) = self.market.submit_wtp(wtp) {
                self.offer_to_demand.insert(offer, i);
                self.submitted[i] = true;
            }
        }
    }

    /// Book utilities/welfare for settled ex ante sales.
    fn account_sales(&mut self, sales: &[dmp_core::arbiter::Sale]) {
        for sale in sales {
            if self.arbitrageur_offers.contains(&sale.offer_id) {
                continue; // acquisitions, not consumer surplus
            }
            if let Some(&idx) = self.offer_to_demand.get(&sale.offer_id) {
                let d = &self.demands[idx];
                let realized = d.valuation * sale.satisfaction;
                *self.utilities.entry(d.buyer.clone()).or_insert(0.0) += realized - sale.price;
                self.welfare += realized;
                self.satisfaction_sum += sale.satisfaction;
                self.filled[idx] = true;
            }
        }
    }

    /// Report values for ex post deliveries per buyer strategy; returns
    /// (revenue, transactions) settled.
    fn ex_post_phase(&mut self) -> (f64, usize) {
        if !matches!(
            self.market.config().design.elicitation,
            ElicitationProtocol::ExPost(_)
        ) {
            return (0.0, 0);
        }
        let mut revenue = 0.0;
        let mut transactions = 0;
        let awaiting = self.market.awaiting_reports();
        for (offer_id, delivery_id, buyer) in awaiting {
            let Some(&idx) = self.offer_to_demand.get(&offer_id) else {
                continue;
            };
            let d = &self.demands[idx];
            let strategy = &self.buyer_strategies[idx];
            // The buyer learns its realized value after using the data.
            let satisfaction = self
                .market
                .deliveries()
                .iter()
                .find(|dl| dl.id == delivery_id)
                .map(|dl| dl.satisfaction)
                .unwrap_or(0.0);
            let true_value = d.valuation * satisfaction;
            let report = match strategy {
                BuyerStrategy::Shade(f) | BuyerStrategy::Colluder { shade: f, .. } => {
                    true_value * f
                }
                _ => true_value,
            };
            if let Ok(settlement) = self.market.report_value(delivery_id, report) {
                *self.utilities.entry(buyer.clone()).or_insert(0.0) +=
                    true_value - settlement.paid - settlement.penalty;
                self.welfare += true_value;
                self.satisfaction_sum += satisfaction;
                self.filled[idx] = true;
                revenue += settlement.paid + settlement.penalty;
                transactions += 1;
            }
        }
        (revenue, transactions)
    }

    /// Arbitrageurs transform delivered mashups and relist them when the
    /// sources' licenses allow resale.
    fn arbitrage_phase(&mut self) {
        let arbitrageurs: Vec<String> = self
            .sellers
            .iter()
            .filter(|(_, s)| matches!(s, SellerStrategy::Arbitrageur { .. }))
            .map(|(n, _)| n.clone())
            .collect();
        if arbitrageurs.is_empty() {
            return;
        }
        for delivery in self.market.deliveries() {
            if self.arbitraged.contains(&delivery.id) || !arbitrageurs.contains(&delivery.buyer) {
                continue;
            }
            self.arbitraged.insert(delivery.id);
            let resale_ok = delivery
                .datasets
                .iter()
                .all(|&d| self.market.license_of(d).allows_resale());
            if !resale_ok {
                continue; // NonTransferable/Standard sources: no resale
            }
            // "Transform" the acquisition (here: curate/rename) and
            // relist it under the arbitrageur's name.
            let relisted = delivery
                .relation
                .clone()
                .named(format!("{}_curated_{}", delivery.buyer, delivery.id));
            let _ = self.market.seller(&delivery.buyer).share(relisted);
        }
    }

    fn finalize(&mut self, per_round: Vec<RoundSummary>) -> SimResult {
        let mut metrics = MarketMetrics {
            revenue: per_round.iter().map(|r| r.revenue).sum(),
            welfare: self.welfare,
            transactions: per_round.iter().map(|r| r.transactions).sum(),
            fill_rate: if self.demands.is_empty() {
                0.0
            } else {
                self.filled.iter().filter(|f| **f).count() as f64 / self.demands.len() as f64
            },
            avg_satisfaction: 0.0,
            honest_seller_revenue: 0.0,
            adversarial_seller_revenue: 0.0,
            seller_gini: 0.0,
            buyer_utility: self.utilities.clone(),
        };
        let tx_count = metrics.transactions.max(1);
        metrics.avg_satisfaction = self.satisfaction_sum / tx_count as f64;

        // Seller revenue from transaction shares via dataset ownership.
        let mut revenue_by_seller: HashMap<String, f64> = HashMap::new();
        for tx in self.market.transactions() {
            for share in &tx.shares {
                if let Some(e) = self.market.metadata().get(share.dataset) {
                    *revenue_by_seller.entry(e.owner).or_insert(0.0) += share.amount;
                }
            }
        }
        for (name, strategy) in &self.sellers {
            let rev = revenue_by_seller.get(name).copied().unwrap_or(0.0);
            if strategy.is_adversarial() {
                metrics.adversarial_seller_revenue += rev;
            } else {
                metrics.honest_seller_revenue += rev;
            }
        }
        metrics.set_seller_gini(&revenue_by_seller);
        SimResult { metrics, per_round }
    }

    /// Buyers whose strategy matches a predicate (metric slicing).
    pub fn buyers_where(&self, pred: impl Fn(&BuyerStrategy) -> bool) -> Vec<String> {
        self.demands
            .iter()
            .zip(&self.buyer_strategies)
            .filter(|(_, s)| pred(s))
            .map(|(d, _)| d.buyer.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};
    use dmp_mechanism::design::MarketDesign;

    fn small_workload() -> Workload {
        generate(&WorkloadConfig {
            n_sellers: 4,
            n_buyers: 8,
            n_topics: 2,
            rows: 40,
            valuation_mean: 50.0,
            zipf_s: 0.8,
            seed: 11,
        })
    }

    #[test]
    fn truthful_posted_price_market_trades() {
        let cfg = SimConfig::new(
            MarketConfig::external(1).with_design(MarketDesign::posted_price_baseline(10.0)),
            5,
        );
        let mut sim = Simulation::new(
            cfg,
            small_workload(),
            vec![BuyerStrategy::Truthful],
            vec![SellerStrategy::Honest],
        );
        let result = sim.run(5);
        assert!(result.metrics.transactions > 0, "{:?}", result.metrics);
        assert!(result.metrics.revenue > 0.0);
        assert!(
            result.metrics.fill_rate > 0.5,
            "fill {}",
            result.metrics.fill_rate
        );
        assert!(result.metrics.welfare > result.metrics.revenue);
    }

    #[test]
    fn internal_market_fills_without_revenue() {
        let cfg = SimConfig::new(MarketConfig::internal(), 4);
        let mut sim = Simulation::new(
            cfg,
            small_workload(),
            vec![BuyerStrategy::Truthful],
            vec![SellerStrategy::Honest],
        );
        let result = sim.run(4);
        assert!(result.metrics.transactions > 0);
        assert_eq!(result.metrics.revenue, 0.0);
    }

    #[test]
    fn overpricers_suppress_trade() {
        let base = SimConfig::new(
            MarketConfig::external(1).with_design(MarketDesign::posted_price_baseline(10.0)),
            4,
        );
        let honest = Simulation::new(
            base.clone(),
            small_workload(),
            vec![BuyerStrategy::Truthful],
            vec![SellerStrategy::Honest],
        )
        .run(4);
        let greedy = Simulation::new(
            base,
            small_workload(),
            vec![BuyerStrategy::Truthful],
            vec![SellerStrategy::Overpricer { reserve: 1_000.0 }],
        )
        .run(4);
        assert!(
            greedy.metrics.transactions < honest.metrics.transactions,
            "greedy {} vs honest {}",
            greedy.metrics.transactions,
            honest.metrics.transactions
        );
    }

    #[test]
    fn opportunists_fill_unmet_demand() {
        // Buyers want attributes nobody sells; opportunists fabricate them.
        let mut w = small_workload();
        for d in &mut w.demands {
            d.attributes = vec!["exotic_signal".to_string()];
        }
        let cfg = SimConfig::new(
            MarketConfig::external(1).with_design(MarketDesign::posted_price_baseline(5.0)),
            5,
        );
        let mut sim = Simulation::new(
            cfg,
            w,
            vec![BuyerStrategy::Truthful],
            vec![SellerStrategy::Opportunist, SellerStrategy::Honest],
        );
        let result = sim.run(5);
        assert!(
            result.metrics.fill_rate > 0.0,
            "opportunist should have filled some demand"
        );
    }

    #[test]
    fn snipers_trade_later() {
        let cfg = SimConfig::new(
            MarketConfig::external(1).with_design(MarketDesign::posted_price_baseline(5.0)),
            4,
        );
        let mut sim = Simulation::new(
            cfg,
            small_workload(),
            vec![BuyerStrategy::Sniper { period: 3 }],
            vec![SellerStrategy::Honest],
        );
        let result = sim.run(4);
        // nothing in round 2 (they bid in rounds 0 and 3)
        assert!(result.per_round[1].transactions <= result.per_round[0].transactions);
    }

    #[test]
    fn ex_post_market_settles_through_reports() {
        use dmp_mechanism::elicitation::{ElicitationProtocol, ExPostMechanism};
        let mut design = MarketDesign::posted_price_baseline(10.0);
        design.elicitation = ElicitationProtocol::ExPost(ExPostMechanism {
            audit_prob: 1.0,
            penalty_mult: 2.5,
            exclusion_rounds: 2,
            round_value: 0.0,
        });
        let cfg = SimConfig::new(MarketConfig::external(1).with_design(design), 4);
        let mut sim = Simulation::new(
            cfg,
            small_workload(),
            vec![BuyerStrategy::Truthful],
            vec![SellerStrategy::Honest],
        );
        let result = sim.run(4);
        assert!(result.metrics.transactions > 0, "reports must settle sales");
        assert!(result.metrics.revenue > 0.0);
        // Truthful reporters are never penalized or excluded.
        for d in sim.market().deliveries() {
            if let Some(s) = d.settlement {
                assert_eq!(s.penalty, 0.0, "truthful buyers unpenalized");
            }
        }
    }

    #[test]
    fn ex_post_shaders_get_caught_when_always_audited() {
        use dmp_mechanism::elicitation::{ElicitationProtocol, ExPostMechanism};
        let mut design = MarketDesign::posted_price_baseline(10.0);
        design.elicitation = ElicitationProtocol::ExPost(ExPostMechanism {
            audit_prob: 1.0,
            penalty_mult: 2.5,
            exclusion_rounds: 2,
            round_value: 0.0,
        });
        let cfg = SimConfig::new(MarketConfig::external(1).with_design(design), 3);
        let mut sim = Simulation::new(
            cfg,
            small_workload(),
            vec![BuyerStrategy::Shade(0.3)],
            vec![SellerStrategy::Honest],
        );
        sim.run(3);
        let penalized = sim
            .market()
            .deliveries()
            .iter()
            .filter(|d| d.settlement.map(|s| s.penalty > 0.0).unwrap_or(false))
            .count();
        assert!(penalized > 0, "under-reporting shaders must be penalized");
    }

    #[test]
    fn arbitrageur_buys_transforms_and_relists() {
        let cfg = SimConfig::new(
            MarketConfig::external(1).with_design(MarketDesign::posted_price_baseline(5.0)),
            4,
        )
        .with_resale();
        let mut sim = Simulation::new(
            cfg,
            small_workload(),
            vec![BuyerStrategy::Truthful],
            vec![
                SellerStrategy::Honest,
                SellerStrategy::Arbitrageur { budget: 200.0 },
            ],
        );
        sim.run(4);
        // The arbitrageur ends up owning relisted datasets.
        let arb_name = sim
            .sellers
            .iter()
            .find(|(_, s)| matches!(s, SellerStrategy::Arbitrageur { .. }))
            .map(|(n, _)| n.clone())
            .unwrap();
        let owned = sim
            .market()
            .metadata()
            .entries()
            .iter()
            .filter(|e| e.owner == arb_name && e.name.contains("curated"))
            .count();
        assert!(owned >= 1, "arbitrageur should relist acquisitions");
    }

    #[test]
    fn arbitrageur_respects_non_transferable_licenses() {
        // Without resale licenses, acquisitions must NOT be relisted.
        let cfg = SimConfig::new(
            MarketConfig::external(1).with_design(MarketDesign::posted_price_baseline(5.0)),
            4,
        ); // resale_allowed = false
        let mut sim = Simulation::new(
            cfg,
            small_workload(),
            vec![BuyerStrategy::Truthful],
            vec![
                SellerStrategy::Honest,
                SellerStrategy::Arbitrageur { budget: 200.0 },
            ],
        );
        sim.run(4);
        let curated = sim
            .market()
            .metadata()
            .entries()
            .iter()
            .filter(|e| e.name.contains("curated"))
            .count();
        assert_eq!(curated, 0, "standard licenses forbid resale");
    }

    #[test]
    fn metrics_slice_by_strategy() {
        let cfg = SimConfig::new(
            MarketConfig::external(1).with_design(MarketDesign::posted_price_baseline(5.0)),
            3,
        );
        let sim = Simulation::new(
            cfg,
            small_workload(),
            vec![BuyerStrategy::Truthful, BuyerStrategy::Shade(0.5)],
            vec![SellerStrategy::Honest],
        );
        let truthful = sim.buyers_where(|s| matches!(s, BuyerStrategy::Truthful));
        let shaded = sim.buyers_where(|s| s.is_adversarial());
        assert_eq!(truthful.len() + shaded.len(), 8);
    }
}
