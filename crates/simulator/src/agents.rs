//! Strategic, adversarial, and faulty market participants (§6.1): "the
//! mathematics used to make sound market designs do not account for evil,
//! ignorant, and adversarial behavior [...] some players may be
//! adversarial in practice, forming coalitions with other players to game
//! the market. Or less dramatic, a faulty piece of software may cause
//! erratic behavior." §7.1 adds the economic opportunists: arbitrageurs
//! and opportunistic data sellers.

use rand::Rng;

/// How a buyer translates its true valuation into a bid.
#[derive(Debug, Clone, PartialEq)]
pub enum BuyerStrategy {
    /// Bid the true valuation.
    Truthful,
    /// Bid `factor × v` with `factor < 1` (strategic under-bidding — the
    /// §3.2.1 worry for freely-replicable goods).
    Shade(f64),
    /// Over-bid by `factor > 1` (risk-lover: pays more than value when
    /// it wins against a price-setting rule).
    RiskLover(f64),
    /// Bid `v × exp(σ·N(0,1))` (ignorant: doesn't know its own value).
    Ignorant(f64),
    /// Participate only every `period`-th round, bidding truthfully
    /// (sniper: waits out the market).
    Sniper {
        /// Rounds between bids.
        period: u64,
    },
    /// Member of a coalition that coordinates deep shading to crash
    /// sampled prices (RSOP's adversary).
    Colluder {
        /// Coalition identifier (members shade identically).
        coalition: u32,
        /// Coordinated shade factor.
        shade: f64,
    },
}

impl BuyerStrategy {
    /// The bid this strategy produces for true value `v` at `round`.
    /// Returns `None` when the strategy sits the round out.
    pub fn bid(&self, v: f64, round: u64, rng: &mut impl Rng) -> Option<f64> {
        match self {
            BuyerStrategy::Truthful => Some(v),
            BuyerStrategy::Shade(f) => Some(v * f.clamp(0.0, 1.0)),
            BuyerStrategy::RiskLover(f) => Some(v * f.max(1.0)),
            BuyerStrategy::Ignorant(sigma) => {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                Some(v * (sigma * z).exp())
            }
            BuyerStrategy::Sniper { period } => {
                if round.is_multiple_of((*period).max(1)) {
                    Some(v)
                } else {
                    None
                }
            }
            BuyerStrategy::Colluder { shade, .. } => Some(v * shade.clamp(0.0, 1.0)),
        }
    }

    /// Is this strategy adversarial (for mix accounting)?
    pub fn is_adversarial(&self) -> bool {
        matches!(
            self,
            BuyerStrategy::Shade(_) | BuyerStrategy::Colluder { .. }
        )
    }
}

/// How a seller behaves.
#[derive(Debug, Clone, PartialEq)]
pub enum SellerStrategy {
    /// Registers its data once, sets no reserve.
    Honest,
    /// Registers `copies` near-duplicates of each dataset hoping to farm
    /// extra revenue shares (the duplication attack from FAQ §3.4).
    Spammer {
        /// Duplicate count per dataset.
        copies: usize,
    },
    /// Sets an excessive reserve price.
    Overpricer {
        /// Reserve demanded per dataset.
        reserve: f64,
    },
    /// Randomly fails to register / withdraws data (faulty software).
    Faulty {
        /// Per-dataset failure probability.
        fail_prob: f64,
    },
    /// Owns nothing at start; watches the arbiter's demand report and
    /// fabricates datasets for missing attributes (§7.1 Seller 3).
    Opportunist,
    /// Buys data, transforms it, and resells at a margin (§7.1).
    Arbitrageur {
        /// Budget for acquisitions per round.
        budget: f64,
    },
}

impl SellerStrategy {
    /// Is this strategy adversarial?
    pub fn is_adversarial(&self) -> bool {
        matches!(
            self,
            SellerStrategy::Spammer { .. }
                | SellerStrategy::Overpricer { .. }
                | SellerStrategy::Faulty { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn truthful_bids_value() {
        assert_eq!(BuyerStrategy::Truthful.bid(42.0, 0, &mut rng()), Some(42.0));
    }

    #[test]
    fn shading_reduces_bids() {
        let b = BuyerStrategy::Shade(0.6).bid(100.0, 0, &mut rng()).unwrap();
        assert!((b - 60.0).abs() < 1e-12);
        // clamped into [0, 1]
        let b = BuyerStrategy::Shade(1.7).bid(100.0, 0, &mut rng()).unwrap();
        assert_eq!(b, 100.0);
    }

    #[test]
    fn risk_lover_overbids() {
        let b = BuyerStrategy::RiskLover(1.5)
            .bid(10.0, 0, &mut rng())
            .unwrap();
        assert_eq!(b, 15.0);
        // never below truthful
        let b = BuyerStrategy::RiskLover(0.5)
            .bid(10.0, 0, &mut rng())
            .unwrap();
        assert_eq!(b, 10.0);
    }

    #[test]
    fn ignorant_bids_are_noisy_but_positive() {
        let mut r = rng();
        let bids: Vec<f64> = (0..50)
            .filter_map(|_| BuyerStrategy::Ignorant(0.5).bid(10.0, 0, &mut r))
            .collect();
        assert!(bids.iter().all(|b| *b > 0.0));
        let spread = bids.iter().cloned().fold(0.0, f64::max)
            - bids.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 1.0, "noise should spread bids, got {spread}");
    }

    #[test]
    fn sniper_sits_out_most_rounds() {
        let s = BuyerStrategy::Sniper { period: 3 };
        assert!(s.bid(5.0, 0, &mut rng()).is_some());
        assert!(s.bid(5.0, 1, &mut rng()).is_none());
        assert!(s.bid(5.0, 3, &mut rng()).is_some());
    }

    #[test]
    fn colluders_shade_coordinated() {
        let a = BuyerStrategy::Colluder {
            coalition: 1,
            shade: 0.3,
        };
        let b = BuyerStrategy::Colluder {
            coalition: 1,
            shade: 0.3,
        };
        assert_eq!(a.bid(100.0, 0, &mut rng()), b.bid(100.0, 0, &mut rng()));
    }

    #[test]
    fn adversarial_classification() {
        assert!(BuyerStrategy::Shade(0.5).is_adversarial());
        assert!(!BuyerStrategy::Truthful.is_adversarial());
        assert!(SellerStrategy::Spammer { copies: 3 }.is_adversarial());
        assert!(!SellerStrategy::Honest.is_adversarial());
        assert!(!SellerStrategy::Opportunist.is_adversarial());
    }
}
