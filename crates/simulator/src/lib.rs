//! # dmp-simulator
//!
//! The market simulator (paper §6.1, Fig. 1 (3); DESIGN.md S19). "The
//! mathematics used to make sound market designs do not account for evil,
//! ignorant, and adversarial behavior [...] it is necessary to simulate
//! market designs under adversarial scenarios before their deployment."
//!
//! * [`agents`] — buyer strategies (truthful, shading, sniper, ignorant,
//!   risk-lover, colluder) and seller strategies (honest, spammer,
//!   overpricer, faulty, opportunist, arbitrageur — §7.1);
//! * [`workload`] — synthetic market workloads: topic catalogs, Zipf
//!   demand, valuation distributions, data-lake generation;
//! * [`engine`] — the round-based simulation engine driving a real
//!   [`dmp_core::DataMarket`];
//! * [`metrics`] — social welfare, revenue, satisfaction, Gini, regret;
//! * [`scenario`] — named scenario configurations for the experiments;
//! * [`report`] — aligned text tables for the experiment harness.

pub mod agents;
pub mod engine;
pub mod metrics;
pub mod report;
pub mod scenario;
pub mod workload;

pub use agents::{BuyerStrategy, SellerStrategy};
pub use engine::{SimConfig, SimResult, Simulation};
pub use metrics::MarketMetrics;
pub use scenario::Scenario;
