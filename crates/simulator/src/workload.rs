//! Market workload generation (§6.1: "modeling workloads to simulate
//! different strategy distributions of players"). Produces a synthetic
//! data lake partitioned into topics, seller inventories over it, and a
//! buyer demand stream with Zipf-distributed topic popularity and
//! configurable valuation distributions.

use rand::Rng;
use rand::SeedableRng;

use dmp_relation::{DataType, Relation, RelationBuilder, Value};

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of sellers (each owns one table per topic it serves).
    pub n_sellers: usize,
    /// Number of buyers.
    pub n_buyers: usize,
    /// Topic clusters in the lake.
    pub n_topics: usize,
    /// Rows per seller table.
    pub rows: usize,
    /// Mean buyer valuation.
    pub valuation_mean: f64,
    /// Zipf skew for topic demand (0 = uniform, 1+ = head-heavy).
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_sellers: 10,
            n_buyers: 20,
            n_topics: 4,
            rows: 100,
            valuation_mean: 50.0,
            zipf_s: 1.0,
            seed: 42,
        }
    }
}

/// One buyer's demand: wanted attributes + true valuation.
#[derive(Debug, Clone)]
pub struct Demand {
    /// Buyer name.
    pub buyer: String,
    /// Attributes requested (query-by-example).
    pub attributes: Vec<String>,
    /// The buyer's private true valuation for a satisfying mashup.
    pub valuation: f64,
    /// Topic index the demand belongs to.
    pub topic: usize,
}

/// A generated workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Per-seller inventories: `(seller name, tables)`.
    pub inventories: Vec<(String, Vec<Relation>)>,
    /// Buyer demand stream.
    pub demands: Vec<Demand>,
    /// Topic count (for reports).
    pub n_topics: usize,
}

/// Zipf sampler over `n` ranks with skew `s` (rank 0 most popular).
pub fn zipf(n: usize, s: f64, rng: &mut impl Rng) -> usize {
    if n <= 1 {
        return 0;
    }
    let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut draw = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        draw -= w;
        if draw <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// The attribute names a topic's tables expose.
pub fn topic_attributes(topic: usize) -> Vec<String> {
    vec![
        format!("topic{topic}_id"),
        format!("metric_{topic}"),
        format!("tag_{topic}"),
    ]
}

/// Build a seller table for a topic: shared join-key domain plus topic
/// metric/tag columns (ground-truth joinable within the topic).
pub fn topic_table(seller: usize, topic: usize, rows: usize, rng: &mut impl Rng) -> Relation {
    let mut b = RelationBuilder::new(format!("s{seller}_topic{topic}"))
        .column(format!("topic{topic}_id"), DataType::Int)
        .column(format!("metric_{topic}"), DataType::Float)
        .column(format!("tag_{topic}"), DataType::Str);
    for r in 0..rows {
        b = b.row(vec![
            Value::Int(r as i64),
            Value::Float(rng.gen_range(0.0..100.0)),
            Value::str(format!("t{topic}v{}", r % 10)),
        ]);
    }
    b.build().expect("well-formed")
}

/// Generate a full workload.
pub fn generate(cfg: &WorkloadConfig) -> Workload {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let n_topics = cfg.n_topics.max(1);

    let mut inventories = Vec::with_capacity(cfg.n_sellers);
    for s in 0..cfg.n_sellers {
        // Each seller serves 1–2 topics.
        let first = s % n_topics;
        let mut tables = vec![topic_table(s, first, cfg.rows, &mut rng)];
        if rng.gen_bool(0.5) {
            let second = (first + 1 + rng.gen_range(0..n_topics.max(2) - 1)) % n_topics;
            if second != first {
                tables.push(topic_table(s, second, cfg.rows, &mut rng));
            }
        }
        inventories.push((format!("seller{s}"), tables));
    }

    let mut demands = Vec::with_capacity(cfg.n_buyers);
    for b in 0..cfg.n_buyers {
        let topic = zipf(n_topics, cfg.zipf_s, &mut rng);
        // Valuation: lognormal-ish around the mean.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let valuation = (cfg.valuation_mean * (0.4 * z).exp()).max(1.0);
        demands.push(Demand {
            buyer: format!("buyer{b}"),
            attributes: topic_attributes(topic),
            valuation,
            topic,
        });
    }

    Workload {
        inventories,
        demands,
        n_topics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_shapes() {
        let w = generate(&WorkloadConfig::default());
        assert_eq!(w.inventories.len(), 10);
        assert_eq!(w.demands.len(), 20);
        assert!(w.inventories.iter().all(|(_, t)| !t.is_empty()));
        assert!(w.demands.iter().all(|d| d.valuation >= 1.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&WorkloadConfig::default());
        let b = generate(&WorkloadConfig::default());
        assert_eq!(a.demands.len(), b.demands.len());
        for (x, y) in a.demands.iter().zip(&b.demands) {
            assert_eq!(x.topic, y.topic);
            assert!((x.valuation - y.valuation).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 5];
        for _ in 0..5_000 {
            counts[zipf(5, 1.2, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[1] > counts[3], "{counts:?}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 4];
        for _ in 0..8_000 {
            counts[zipf(4, 0.0, &mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 2_000.0).abs() < 300.0, "{c}");
        }
    }

    #[test]
    fn zipf_degenerate_n() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert_eq!(zipf(0, 1.0, &mut rng), 0);
        assert_eq!(zipf(1, 1.0, &mut rng), 0);
    }

    #[test]
    fn topic_tables_are_joinable_within_topic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = topic_table(0, 2, 50, &mut rng);
        let b = topic_table(1, 2, 50, &mut rng);
        let j = a
            .join(
                &b,
                &[("topic2_id", "topic2_id")],
                dmp_relation::ops::JoinKind::Inner,
            )
            .unwrap();
        assert_eq!(j.len(), 50);
    }

    #[test]
    fn demands_reference_existing_attribute_names() {
        let w = generate(&WorkloadConfig::default());
        for d in &w.demands {
            assert!(d.attributes.iter().any(|a| a.contains("_id")));
        }
    }
}
