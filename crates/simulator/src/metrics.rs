//! Simulation metrics: the outcome measurements §6.1's effectiveness
//! evaluation compares across designs and adversarial mixes.

use std::collections::HashMap;

use dmp_mechanism::goals::gini;

/// Aggregated metrics over a simulation run.
#[derive(Debug, Clone, Default)]
pub struct MarketMetrics {
    /// Total money extracted from buyers.
    pub revenue: f64,
    /// Total true-valuation surplus delivered (Σ valuations of satisfied
    /// demands).
    pub welfare: f64,
    /// Completed transactions.
    pub transactions: usize,
    /// Demands that were eventually satisfied / total demands.
    pub fill_rate: f64,
    /// Mean satisfaction across sales.
    pub avg_satisfaction: f64,
    /// Revenue accrued by honest sellers.
    pub honest_seller_revenue: f64,
    /// Revenue accrued by adversarial sellers.
    pub adversarial_seller_revenue: f64,
    /// Gini coefficient of seller revenue (concentration check, FAQ).
    pub seller_gini: f64,
    /// Net utility per buyer (Σ valuation − price over its wins).
    pub buyer_utility: HashMap<String, f64>,
}

impl MarketMetrics {
    /// Mean utility across a set of buyers (e.g. all truthful buyers).
    pub fn mean_utility<'a>(&self, buyers: impl IntoIterator<Item = &'a str>) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for b in buyers {
            total += self.buyer_utility.get(b).copied().unwrap_or(0.0);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Recompute the seller Gini from a revenue-per-seller map.
    pub fn set_seller_gini(&mut self, revenues: &HashMap<String, f64>) {
        let vals: Vec<f64> = revenues.values().copied().collect();
        self.seller_gini = gini(&vals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_utility_over_subset() {
        let mut m = MarketMetrics::default();
        m.buyer_utility.insert("a".into(), 10.0);
        m.buyer_utility.insert("b".into(), 20.0);
        m.buyer_utility.insert("c".into(), 90.0);
        assert!((m.mean_utility(["a", "b"]) - 15.0).abs() < 1e-12);
        assert_eq!(m.mean_utility(std::iter::empty::<&str>()), 0.0);
        // unknown buyers count as zero utility
        assert!((m.mean_utility(["a", "zz"]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gini_setter() {
        let mut m = MarketMetrics::default();
        let mut rev = HashMap::new();
        rev.insert("s1".to_string(), 100.0);
        rev.insert("s2".to_string(), 0.0);
        m.set_seller_gini(&rev);
        assert!(m.seller_gini > 0.4);
    }
}
