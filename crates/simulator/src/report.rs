//! Aligned text tables for experiment output — the format the
//! `experiments` binary prints and EXPERIMENTS.md records.

/// Render an aligned text table with a header row.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let mut header_line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        header_line.push_str(&format!("{h:>w$}  "));
    }
    out.push_str(header_line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:>w$}  "));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Format a float with 2 decimals (table cells).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            "demo",
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "22.50".into()],
            ],
        );
        assert!(t.contains("== demo =="));
        let lines: Vec<&str> = t.lines().collect();
        // title + header + separator + 2 rows
        assert_eq!(lines.len(), 5);
        assert!(lines[3].ends_with("1.00"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00"); // note: rounds-to-even via format!
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.5), "50.0%");
    }
}
