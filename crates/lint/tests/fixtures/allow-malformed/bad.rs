// dmp-lint: allow(det-wall-clock)
pub fn a() {}
// dmp-lint: allow(no-such-rule) -- the rule id is misspelled
pub fn b() {}
// dmp-lint: deny(det-rng) -- only allow(...) exists
pub fn c() {}
