pub fn observe() {
    // dmp-lint: allow(det-wall-clock) -- latency telemetry only, never applied state
    let started = Instant::now();
    let _ = started;
}
