/// Integer micro-credits everywhere; the boundary conversion carries
/// its exactness argument.
// dmp-lint: allow(det-float) -- boundary constant, exact in f64
pub const MICROS: f64 = 1_000_000.0;

pub fn payout_micros(remaining: i64, share_micros: i64) -> i64 {
    remaining.min(share_micros)
}

pub fn report(micros: i64) -> f64 {
    // dmp-lint: allow(det-float) -- read-side boundary: state stays i64, only the report is f64
    micros as f64 / MICROS
}
