pub fn payout(balance: i64, share: i64) -> f64 {
    let fraction = share as f64 / balance as f64;
    fraction * 0.95
}
