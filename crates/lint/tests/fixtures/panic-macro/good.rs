pub fn settle(state: State) -> Result<Payout, MarketError> {
    match state {
        State::Held(p) => Ok(p),
        State::Closed => Err(MarketError::EscrowClosed),
        State::Poisoned => Err(MarketError::Poisoned),
    }
}
