pub fn settle(state: State) -> Payout {
    match state {
        State::Held(p) => p,
        State::Closed => panic!("escrow already closed"),
        State::Poisoned => unreachable!(),
    }
}
