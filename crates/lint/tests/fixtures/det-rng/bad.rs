pub fn jitter() -> u64 {
    let ambient = rand::thread_rng().gen::<u64>();
    let implicit: u64 = rand::random();
    let seeded = rand::rngs::StdRng::from_entropy().gen::<u64>();
    ambient ^ implicit ^ seeded
}
