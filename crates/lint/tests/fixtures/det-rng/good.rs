use rand::{Rng, SeedableRng, StdRng};

/// Per-offer stream keyed by replayed state: parallel == sequential,
/// replay == original, shard-count independent.
pub fn tie_break(round_seed: u64, offer_id: u64) -> u64 {
    StdRng::seed_from_u64(round_seed ^ offer_id).gen()
}
