pub fn apply(&self, cmd: Command) -> std::io::Result<()> {
    let mut inner = self.inner.lock();
    inner.journal.append(&cmd)?;
    inner.file.sync_all()?;
    Ok(())
}
