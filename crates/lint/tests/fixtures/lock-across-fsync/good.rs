pub fn apply(&self, cmd: Command) -> std::io::Result<()> {
    let payload = {
        let mut inner = self.inner.lock();
        inner.stage(&cmd)
    };
    // Guard released: the fsync happens outside the critical section.
    self.file.sync_all()?;
    self.publish(payload);
    Ok(())
}

pub fn apply_durable(&self, cmd: Command) -> std::io::Result<()> {
    let mut inner = self.inner.lock();
    // dmp-lint: allow(lock-across-fsync) -- WAL ordering invariant: append (durable) and apply (visible) must be one critical section
    inner.journal.append(&cmd)?;
    Ok(())
}
