use std::collections::BTreeMap;
// dmp-lint: allow(det-unordered-collection) -- keyed lookups only, never iterated
use std::collections::HashMap;

pub fn tally(xs: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut m: BTreeMap<u64, u64> = BTreeMap::new();
    for &(k, v) in xs {
        *m.entry(k).or_insert(0) += v;
    }
    m.into_iter().collect()
}

pub fn lookup(m: &HashMap<u64, u64>, k: u64) -> u64 { // dmp-lint: allow(det-unordered-collection) -- keyed lookup only, never iterated
    m.get(&k).copied().unwrap_or(0)
}
