use std::collections::HashMap;

/// Tally per-key totals. Iteration order of the map is per-process:
/// replay sees a different order than the run that wrote the WAL.
pub fn tally(xs: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut m: HashMap<u64, u64> = HashMap::new();
    for &(k, v) in xs {
        *m.entry(k).or_insert(0) += v;
    }
    m.into_iter().collect()
}
