pub fn metrics_body(&self) -> String {
    let entries = self.entries.lock();
    entries.render()
}
