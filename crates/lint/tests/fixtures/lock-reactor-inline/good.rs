pub fn metrics_body(&self) -> Option<String> {
    // Non-blocking: a contended scrape is dropped, not waited for.
    let entries = self.entries.try_lock().ok()?;
    Some(entries.render())
}

pub fn trace_body(&self) -> String {
    // dmp-lint: allow(lock-reactor-inline) -- held for a snapshot copy only; writers never block holding it
    let ring = self.ring.lock();
    ring.snapshot()
}
