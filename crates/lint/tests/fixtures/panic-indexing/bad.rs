pub fn frame_parts(bytes: &[u8], shards: &[Shard], home: usize) -> u8 {
    let first = bytes[0];
    let window = &bytes[4..8];
    let shard = &shards[home];
    first ^ window[0] ^ shard.id
}
