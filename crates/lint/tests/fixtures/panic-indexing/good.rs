pub fn frame_parts(bytes: &[u8], shards: &[Shard], home: usize) -> Option<u8> {
    let first = bytes.first()?;
    let window = bytes.get(4..8)?;
    // dmp-lint: allow(panic-indexing) -- home is reduced mod shards.len() by the caller's shard_of
    let shard = &shards[home];
    Some(first ^ window.first()? ^ shard.id)
}
