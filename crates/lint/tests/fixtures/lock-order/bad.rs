pub fn grant(&self) {
    let lic = self.licenses.lock();
    let holds = self.exclusive_holds.lock();
    lic.check(&holds);
}

pub fn revoke(&self) {
    let holds = self.exclusive_holds.lock();
    let lic = self.licenses.lock();
    holds.check(&lic);
}
