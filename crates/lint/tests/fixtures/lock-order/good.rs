pub fn grant(&self) {
    let lic = self.licenses.lock();
    let holds = self.exclusive_holds.lock();
    lic.check(&holds);
}

pub fn revoke(&self) {
    // Same global order as grant(): licenses before exclusive_holds.
    let lic = self.licenses.lock();
    let holds = self.exclusive_holds.lock();
    holds.check(&lic);
}
