// dmp-lint: allow(det-wall-clock) -- stale: the Instant::now this covered was removed
pub fn logical_time(round: u64) -> u64 {
    round
}
