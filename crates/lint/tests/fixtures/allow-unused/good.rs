pub fn logical_time(round: u64) -> u64 {
    round
}
