pub fn stamp(round: u64, seq: u64) -> u64 {
    // Logical time threaded from replayed state, not the wall clock.
    round.wrapping_mul(1_000_003).wrapping_add(seq)
}

pub fn observe_latency() {
    // dmp-lint: allow(det-wall-clock) -- latency telemetry only, never applied state
    let started = std::time::Instant::now();
    let _ = started.elapsed();
}
