pub fn read_header(bytes: &[u8]) -> u32 {
    let arr: [u8; 4] = bytes.get(..4).map(|s| s.try_into().unwrap()).expect("short buffer");
    u32::from_le_bytes(arr)
}
