use std::io;

pub fn read_header(bytes: &[u8]) -> io::Result<u32> {
    bytes
        .get(..4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "torn frame header"))
}
