//! The self-check that pins the workspace lint-clean: `cargo test -q`
//! runs the full dmp-lint pass over the repository and fails on any
//! finding, so a violation merged anywhere fails both this test and
//! the CI lint step. A second test seeds a violation into a synthetic
//! tree to prove the walker + classifier actually catch one — guarding
//! against the pass silently going blind (wrong root, over-eager skip
//! list, classification drift).

use std::fs;
use std::path::{Path, PathBuf};

use dmp_lint::{lint_workspace, summarize};

/// The repository root, two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

#[test]
fn workspace_is_lint_clean() {
    let findings = lint_workspace(&repo_root()).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "dmp-lint found {} violation(s):\n{}\n\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n"),
        summarize(&findings),
    );
}

#[test]
fn seeded_violation_is_caught() {
    // A synthetic tree shaped like the workspace: the classifier keys
    // on the relative path, so `crates/core/src/market.rs` lands in
    // the replay-critical class and the HashMap must be flagged.
    let root = std::env::temp_dir().join(format!("dmp-lint-seeded-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let src_dir = root.join("crates/core/src");
    fs::create_dir_all(&src_dir).expect("temp tree");
    fs::write(
        src_dir.join("market.rs"),
        "use std::collections::HashMap;\npub fn f() -> HashMap<u64, u64> { HashMap::new() }\n",
    )
    .expect("seed file");

    let findings = lint_workspace(&root).expect("seeded walk succeeds");
    let _ = fs::remove_dir_all(&root);

    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        vec![
            "det-unordered-collection",
            "det-unordered-collection",
            "det-unordered-collection"
        ],
        "seeded HashMap must be flagged at every occurrence"
    );
    let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![1, 2, 2]);
    assert!(
        findings.iter().all(|f| f.path.ends_with("market.rs")),
        "findings carry the offending path"
    );
}
