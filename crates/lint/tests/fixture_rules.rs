//! Fixture corpus: one known-bad and one known-good (or
//! allow-annotated) file per rule, pinned to exact finding counts, rule
//! ids, and line numbers. The fixtures live under `tests/fixtures/` —
//! a directory the workspace walker skips by name — and are linted
//! under *virtual* paths chosen to exercise the module classes each
//! rule is gated on. They are lint subjects, not compile targets.

use dmp_lint::{lint_source, Finding};

/// Lint `fixtures/<rule>/<which>.rs` as if it lived at `virtual_path`.
fn run(rule_dir: &str, which: &str, virtual_path: &str, src: &str) -> Vec<Finding> {
    let _ = (rule_dir, which); // names kept in the call sites for readability
    lint_source(virtual_path, src)
}

/// Assert the findings are exactly `(rule, line)` in order.
fn assert_findings(findings: &[Finding], expected: &[(&str, u32)]) {
    let got: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        got,
        expected.to_vec(),
        "findings:\n{}",
        findings
            .iter()
            .map(Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// Virtual paths per module class (see dmp_lint::classify::MODULE_MAP):
// replay-critical, float-strict, panic-free + no-index, reactor-inline,
// and an unclassified path for the globally-enforced lock rules.
const REPLAY: &str = "crates/core/src/market.rs";
const FLOAT_STRICT: &str = "crates/core/src/arbiter/ledger.rs";
const PANIC_FREE: &str = "crates/core/src/arbiter/pipeline/settlement.rs";
const REACTOR: &str = "crates/service/src/reactor.rs";
const UNCLASSIFIED: &str = "crates/anywhere/src/helper.rs";

#[test]
fn det_unordered_collection_fires() {
    let f = run(
        "det-unordered-collection",
        "bad",
        REPLAY,
        include_str!("fixtures/det-unordered-collection/bad.rs"),
    );
    assert_findings(
        &f,
        &[
            ("det-unordered-collection", 1), // use std::collections::HashMap
            ("det-unordered-collection", 6), // type annotation
            ("det-unordered-collection", 6), // HashMap::new()
        ],
    );
}

#[test]
fn det_unordered_collection_clean_with_allows() {
    let f = run(
        "det-unordered-collection",
        "good",
        REPLAY,
        include_str!("fixtures/det-unordered-collection/good.rs"),
    );
    assert_findings(&f, &[]);
}

#[test]
fn det_wall_clock_fires() {
    let f = run(
        "det-wall-clock",
        "bad",
        REPLAY,
        include_str!("fixtures/det-wall-clock/bad.rs"),
    );
    assert_findings(&f, &[("det-wall-clock", 4), ("det-wall-clock", 5)]);
}

#[test]
fn det_wall_clock_clean_with_allow() {
    let f = run(
        "det-wall-clock",
        "good",
        REPLAY,
        include_str!("fixtures/det-wall-clock/good.rs"),
    );
    assert_findings(&f, &[]);
}

#[test]
fn det_rng_fires() {
    let f = run(
        "det-rng",
        "bad",
        REPLAY,
        include_str!("fixtures/det-rng/bad.rs"),
    );
    assert_findings(&f, &[("det-rng", 2), ("det-rng", 3), ("det-rng", 4)]);
}

#[test]
fn det_rng_seeded_stream_is_clean() {
    let f = run(
        "det-rng",
        "good",
        REPLAY,
        include_str!("fixtures/det-rng/good.rs"),
    );
    assert_findings(&f, &[]);
}

#[test]
fn det_float_fires() {
    let f = run(
        "det-float",
        "bad",
        FLOAT_STRICT,
        include_str!("fixtures/det-float/bad.rs"),
    );
    assert_findings(
        &f,
        &[
            ("det-float", 2), // as f64
            ("det-float", 2), // as f64 again
            ("det-float", 3), // 0.95 literal
        ],
    );
}

#[test]
fn det_float_integer_micros_is_clean() {
    let f = run(
        "det-float",
        "good",
        FLOAT_STRICT,
        include_str!("fixtures/det-float/good.rs"),
    );
    assert_findings(&f, &[]);
}

#[test]
fn lock_across_fsync_fires() {
    let f = run(
        "lock-across-fsync",
        "bad",
        UNCLASSIFIED,
        include_str!("fixtures/lock-across-fsync/bad.rs"),
    );
    assert_findings(&f, &[("lock-across-fsync", 3), ("lock-across-fsync", 4)]);
}

#[test]
fn lock_across_fsync_scoped_guard_is_clean() {
    let f = run(
        "lock-across-fsync",
        "good",
        UNCLASSIFIED,
        include_str!("fixtures/lock-across-fsync/good.rs"),
    );
    assert_findings(&f, &[]);
}

#[test]
fn lock_order_inversion_fires() {
    let f = run(
        "lock-order",
        "bad",
        UNCLASSIFIED,
        include_str!("fixtures/lock-order/bad.rs"),
    );
    assert_eq!(f.len(), 2, "one finding per direction of the inversion");
    assert!(f.iter().all(|x| x.rule == "lock-order"));
    let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![3, 9], "second acquisition of each direction");
}

#[test]
fn lock_order_consistent_order_is_clean() {
    let f = run(
        "lock-order",
        "good",
        UNCLASSIFIED,
        include_str!("fixtures/lock-order/good.rs"),
    );
    assert_findings(&f, &[]);
}

#[test]
fn lock_reactor_inline_fires() {
    let f = run(
        "lock-reactor-inline",
        "bad",
        REACTOR,
        include_str!("fixtures/lock-reactor-inline/bad.rs"),
    );
    assert_findings(&f, &[("lock-reactor-inline", 2)]);
}

#[test]
fn lock_reactor_inline_try_lock_is_clean() {
    let f = run(
        "lock-reactor-inline",
        "good",
        REACTOR,
        include_str!("fixtures/lock-reactor-inline/good.rs"),
    );
    assert_findings(&f, &[]);
}

#[test]
fn panic_unwrap_fires() {
    let f = run(
        "panic-unwrap",
        "bad",
        PANIC_FREE,
        include_str!("fixtures/panic-unwrap/bad.rs"),
    );
    assert_findings(&f, &[("panic-unwrap", 2), ("panic-unwrap", 2)]);
}

#[test]
fn panic_unwrap_propagation_is_clean() {
    let f = run(
        "panic-unwrap",
        "good",
        PANIC_FREE,
        include_str!("fixtures/panic-unwrap/good.rs"),
    );
    assert_findings(&f, &[]);
}

#[test]
fn panic_macro_fires() {
    let f = run(
        "panic-macro",
        "bad",
        PANIC_FREE,
        include_str!("fixtures/panic-macro/bad.rs"),
    );
    assert_findings(&f, &[("panic-macro", 4), ("panic-macro", 5)]);
}

#[test]
fn panic_macro_error_return_is_clean() {
    let f = run(
        "panic-macro",
        "good",
        PANIC_FREE,
        include_str!("fixtures/panic-macro/good.rs"),
    );
    assert_findings(&f, &[]);
}

#[test]
fn panic_indexing_fires() {
    let f = run(
        "panic-indexing",
        "bad",
        PANIC_FREE,
        include_str!("fixtures/panic-indexing/bad.rs"),
    );
    assert_findings(
        &f,
        &[
            ("panic-indexing", 2),
            ("panic-indexing", 3),
            ("panic-indexing", 4),
            ("panic-indexing", 5),
        ],
    );
}

#[test]
fn panic_indexing_get_and_audited_allow_is_clean() {
    let f = run(
        "panic-indexing",
        "good",
        PANIC_FREE,
        include_str!("fixtures/panic-indexing/good.rs"),
    );
    assert_findings(&f, &[]);
}

#[test]
fn allow_unused_fires_on_stale_annotation() {
    let f = run(
        "allow-unused",
        "bad",
        UNCLASSIFIED,
        include_str!("fixtures/allow-unused/bad.rs"),
    );
    assert_findings(&f, &[("allow-unused", 1)]);
}

#[test]
fn allow_unused_absent_when_no_annotations() {
    let f = run(
        "allow-unused",
        "good",
        UNCLASSIFIED,
        include_str!("fixtures/allow-unused/good.rs"),
    );
    assert_findings(&f, &[]);
}

#[test]
fn allow_malformed_fires() {
    let f = run(
        "allow-malformed",
        "bad",
        UNCLASSIFIED,
        include_str!("fixtures/allow-malformed/bad.rs"),
    );
    assert_findings(
        &f,
        &[
            ("allow-malformed", 1), // missing `-- <reason>`
            ("allow-malformed", 3), // unknown rule id
            ("allow-malformed", 5), // `deny(...)` is not part of the grammar
        ],
    );
}

#[test]
fn allow_well_formed_and_used_is_clean() {
    let f = run(
        "allow-malformed",
        "good",
        REPLAY,
        include_str!("fixtures/allow-malformed/good.rs"),
    );
    assert_findings(&f, &[]);
}
