//! dmp-lint: determinism, lock-discipline, and panic-hygiene static
//! analysis for the workspace. Zero external dependencies, in the
//! house style of `compat/polling` and the telemetry exposition linter:
//! a small hand-rolled lexer ([`lexer`]), a checked-in module
//! classification map ([`classify`]), and a token-pattern rule engine
//! ([`rules`]).
//!
//! The contract: `lint_workspace(root)` returns zero findings, forever.
//! `tests/workspace_lint.rs` pins that under `cargo test`; CI runs the
//! binary with `--deny-all`. Suppressions exist only as in-source
//! annotations the tool itself validates:
//!
//! ```text
//! // dmp-lint: allow(<rule>[, <rule>]) -- <reason>
//! ```
//!
//! A trailing annotation suppresses findings on its own line; a
//! standalone comment line suppresses the next token-bearing line. The
//! reason is mandatory, unknown rule ids are errors
//! (`allow-malformed`), and an annotation that suppresses nothing is an
//! error (`allow-unused`) — so stale allows cannot accumulate.
//!
//! Scope: every `.rs` file under a `src/` directory in the workspace
//! (crates/, compat/, the facade). Test code — `tests/`, `examples/`,
//! `benches/`, and `#[cfg(test)]` modules — is exempt: tests unwrap and
//! index freely by design, and none of it runs during replay.

pub mod classify;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use classify::{classify, Classes, MapEntry, MODULE_MAP};
pub use rules::{rule, Finding, RuleInfo, RULES};

use lexer::{Comment, Tok};
use rules::LockPair;

/// One parsed `// dmp-lint: allow(...)` annotation.
#[derive(Debug)]
struct AllowSite {
    path: String,
    line: u32,
    /// The line whose findings this annotation suppresses.
    target: Option<u32>,
    rules: Vec<String>,
    used: bool,
}

/// Accumulates per-file analyses, then resolves the cross-file checks
/// (lock ordering, allow usage) in [`Linter::finish`].
#[derive(Default)]
pub struct Linter {
    findings: Vec<Finding>,
    pairs: Vec<LockPair>,
    allows: Vec<AllowSite>,
}

impl Linter {
    pub fn new() -> Linter {
        Linter::default()
    }

    /// Lint one file. `path` is used both for reporting and for module
    /// classification, so fixtures can present virtual paths.
    pub fn check_file(&mut self, path: &str, src: &str) {
        let lexed = lexer::lex(src);
        let (toks, removed) = strip_cfg_test(lexed.toks);
        let classes = classify::classify(path);
        let analysis = rules::analyze(path, &toks, &classes);
        self.findings.extend(analysis.findings);
        self.pairs.extend(analysis.pairs);
        self.collect_allows(path, &lexed.comments, &toks, &removed);
    }

    fn collect_allows(
        &mut self,
        path: &str,
        comments: &[Comment],
        toks: &[Tok],
        removed: &[(u32, u32)],
    ) {
        for c in comments {
            if removed.iter().any(|&(a, b)| c.line >= a && c.line <= b) {
                continue; // annotation inside a #[cfg(test)] module
            }
            let Some(parsed) = parse_annotation(&c.text) else {
                continue;
            };
            match parsed {
                Ok(rules) => {
                    let target = if c.trailing {
                        Some(c.line)
                    } else {
                        toks.iter().map(|t| t.line).find(|&l| l > c.line)
                    };
                    self.allows.push(AllowSite {
                        path: path.to_string(),
                        line: c.line,
                        target,
                        rules,
                        used: false,
                    });
                }
                Err(why) => self.findings.push(Finding {
                    path: path.to_string(),
                    line: c.line,
                    rule: "allow-malformed",
                    message: why,
                }),
            }
        }
    }

    /// Resolve workspace-wide checks and apply suppressions. Returns
    /// the surviving findings, sorted by path and line.
    pub fn finish(mut self) -> Vec<Finding> {
        // Lock-order inversions: group held→acquired pairs, look for
        // both directions of the same receiver pair.
        let mut by_pair: BTreeMap<(String, String), Vec<(String, u32)>> = BTreeMap::new();
        for p in &self.pairs {
            by_pair
                .entry((p.first.clone(), p.second.clone()))
                .or_default()
                .push((p.path.clone(), p.line));
        }
        for ((a, b), sites) in &by_pair {
            if a >= b {
                continue; // report each unordered pair once
            }
            let Some(rev) = by_pair.get(&(b.clone(), a.clone())) else {
                continue;
            };
            for (dir_sites, x, y, other) in [(sites, a, b, rev.first()), (rev, b, a, sites.first())]
            {
                if let (Some((path, line)), Some((opath, oline))) = (dir_sites.first(), other) {
                    self.findings.push(Finding {
                        path: path.clone(),
                        line: *line,
                        rule: "lock-order",
                        message: format!(
                            "`{y}` acquired while `{x}` is held, but the opposite \
                             order occurs at {opath}:{oline} — deadlock under \
                             concurrency"
                        ),
                    });
                }
            }
        }

        // Apply suppressions, marking the annotations that fire.
        let allows = &mut self.allows;
        let mut kept = Vec::with_capacity(self.findings.len());
        for f in self.findings {
            if f.rule == "allow-malformed" {
                kept.push(f);
                continue;
            }
            let mut suppressed = false;
            for a in allows.iter_mut() {
                if a.path == f.path
                    && a.target == Some(f.line)
                    && a.rules.iter().any(|r| r == f.rule)
                {
                    a.used = true;
                    suppressed = true;
                }
            }
            if !suppressed {
                kept.push(f);
            }
        }
        for a in allows.iter() {
            if !a.used {
                kept.push(Finding {
                    path: a.path.clone(),
                    line: a.line,
                    rule: "allow-unused",
                    message: format!(
                        "allow({}) suppresses nothing — delete it or move it to \
                         the offending line",
                        a.rules.join(", ")
                    ),
                });
            }
        }
        kept.sort_by(|x, y| {
            (x.path.as_str(), x.line, x.rule).cmp(&(y.path.as_str(), y.line, y.rule))
        });
        kept
    }
}

/// Lint a single source text under a virtual path (fixtures, tests).
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let mut l = Linter::new();
    l.check_file(path, src);
    l.finish()
}

/// Lint every in-scope file under `root` (a workspace checkout).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut linter = Linter::new();
    for path in walk(root)? {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        linter.check_file(&rel, &src);
    }
    Ok(linter.finish())
}

/// Collect the files in scope: `**/src/**/*.rs`, skipping build output,
/// VCS metadata, and the lint fixture corpus (which is known-bad on
/// purpose). Sorted for deterministic output — this tool had better
/// practice what it preaches.
pub fn walk(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue, // unreadable dirs are out of scope
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "target" | ".git" | "fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path.strip_prefix(root).unwrap_or(&path);
                if rel.components().any(|c| c.as_os_str() == "src") {
                    out.push(path);
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Per-rule findings table, printed even when everything is clean.
pub fn summarize(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    let width = RULES.iter().map(|r| r.id.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!("{:width$}  findings\n", "rule"));
    for r in RULES {
        out.push_str(&format!(
            "{:width$}  {}\n",
            r.id,
            counts.get(r.id).copied().unwrap_or(0)
        ));
    }
    out.push_str(&format!("{:width$}  {}\n", "total", findings.len()));
    out
}

/// The `--explain` text for one rule.
pub fn explain(info: &RuleInfo) -> String {
    format!(
        "{id} [{family}]\n\n  {summary}\n\noffending:\n{bad}\n\nfix:\n{fix}\n",
        id = info.id,
        family = info.family,
        summary = info.summary,
        bad = indent(info.bad),
        fix = indent(info.fix),
    )
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Parse a comment body as a dmp-lint annotation.
///
/// Returns `None` if the comment is not addressed to dmp-lint at all,
/// `Some(Ok(rules))` for a well-formed allow, and `Some(Err(why))` for
/// anything that names the tool but fails the grammar — misspelled
/// annotations must not silently do nothing.
fn parse_annotation(text: &str) -> Option<Result<Vec<String>, String>> {
    let body = text.trim();
    let rest = body.strip_prefix("dmp-lint")?;
    let Some(rest) = rest.trim_start().strip_prefix(':') else {
        return Some(Err(
            "expected `dmp-lint: allow(...) -- <reason>`".to_string()
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Some(Err(
            "only `allow(...)` is recognized after `dmp-lint:`".to_string()
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(Err("expected `(` after `allow`".to_string()));
    };
    let Some(close) = rest.find(')') else {
        return Some(Err("unclosed rule list in allow(...)".to_string()));
    };
    let (list, after) = (&rest[..close], &rest[close + 1..]);
    let mut rules_out = Vec::new();
    for raw in list.split(',') {
        let id = raw.trim();
        if id.is_empty() {
            return Some(Err("empty rule id in allow(...)".to_string()));
        }
        if rules::rule(id).is_none() {
            return Some(Err(format!("unknown rule id `{id}` in allow(...)")));
        }
        rules_out.push(id.to_string());
    }
    if rules_out.is_empty() {
        return Some(Err("allow(...) names no rules".to_string()));
    }
    let after = after.trim_start();
    let Some(reason) = after.strip_prefix("--") else {
        return Some(Err(
            "missing mandatory `-- <reason>` after allow(...)".to_string()
        ));
    };
    if reason.trim().is_empty() {
        return Some(Err("the `--` reason must not be empty".to_string()));
    }
    Some(Ok(rules_out))
}

/// Remove `#[cfg(test)]` items (in practice: `mod tests { … }`) from
/// the token stream. Returns the surviving tokens plus the removed line
/// spans, so annotations inside test modules are ignored too.
fn strip_cfg_test(toks: Vec<Tok>) -> (Vec<Tok>, Vec<(u32, u32)>) {
    let mut keep = Vec::with_capacity(toks.len());
    let mut removed = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if let Some(end) = cfg_test_item_end(&toks, i) {
            let first = toks[i].line;
            let last = toks.get(end - 1).map_or(first, |t| t.line);
            removed.push((first, last));
            i = end;
        } else {
            keep.push(toks[i].clone());
            i += 1;
        }
    }
    (keep, removed)
}

/// If `toks[i]` starts a `#[cfg(test)]`-gated item, return the index
/// one past its end.
fn cfg_test_item_end(toks: &[Tok], i: usize) -> Option<usize> {
    let ident = |j: usize, s: &str| toks.get(j).is_some_and(|t| t.is_ident(s));
    let punct = |j: usize, c: char| toks.get(j).is_some_and(|t| t.is_punct(c));
    if !(punct(i, '#') && punct(i + 1, '[') && ident(i + 2, "cfg") && punct(i + 3, '(')) {
        return None;
    }
    // Scan the cfg argument list for a bare `test`.
    let mut j = i + 4;
    let mut depth = 1;
    let mut has_test = false;
    while j < toks.len() && depth > 0 {
        match &toks[j] {
            t if t.is_punct('(') => depth += 1,
            t if t.is_punct(')') => depth -= 1,
            t if t.is_ident("test") => has_test = true,
            _ => {}
        }
        j += 1;
    }
    if !has_test || !punct(j, ']') {
        return None;
    }
    j += 1;
    // Skip any further attributes on the same item.
    while punct(j, '#') && punct(j + 1, '[') {
        let mut bdepth = 0;
        while j < toks.len() {
            if toks[j].is_punct('[') {
                bdepth += 1;
            } else if toks[j].is_punct(']') {
                bdepth -= 1;
                if bdepth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // The item body: through the matching brace of its first `{`, or to
    // a top-level `;` for brace-less items (`#[cfg(test)] use …;`).
    let mut bdepth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            bdepth += 1;
        } else if t.is_punct('}') {
            bdepth -= 1;
            if bdepth == 0 {
                return Some(j + 1);
            }
        } else if t.is_punct(';') && bdepth == 0 {
            return Some(j + 1);
        }
        j += 1;
    }
    Some(j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_grammar() {
        assert!(parse_annotation(" just a comment").is_none());
        assert_eq!(
            parse_annotation(" dmp-lint: allow(det-wall-clock) -- telemetry only"),
            Some(Ok(vec!["det-wall-clock".to_string()]))
        );
        let multi = parse_annotation(" dmp-lint: allow(panic-unwrap, det-float) -- boundary");
        assert_eq!(
            multi,
            Some(Ok(vec![
                "panic-unwrap".to_string(),
                "det-float".to_string()
            ]))
        );
        assert!(matches!(
            parse_annotation(" dmp-lint: allow(det-wall-clock)"),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_annotation(" dmp-lint: allow(no-such-rule) -- x"),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_annotation(" dmp-lint: allow(det-wall-clock) -- "),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_annotation(" dmp-lint: deny(x)"),
            Some(Err(_))
        ));
    }

    #[test]
    fn cfg_test_mod_is_stripped_but_code_before_is_not() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = lint_source("crates/service/src/journal.rs", src);
        let unwraps: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "panic-unwrap")
            .map(|f| f.line)
            .collect();
        assert_eq!(unwraps, [1], "only the non-test unwrap: {f:?}");
    }

    #[test]
    fn trailing_and_standalone_allows_suppress() {
        let src = "fn f() {\n\
                   let t = Instant::now(); // dmp-lint: allow(det-wall-clock) -- telemetry\n\
                   // dmp-lint: allow(det-wall-clock) -- telemetry\n\
                   let u = Instant::now();\n\
                   }\n";
        let f = lint_source("crates/core/src/arbiter/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let src = "// dmp-lint: allow(det-rng) -- nope\nfn f() {}\n";
        let f = lint_source("crates/core/src/arbiter/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "allow-unused");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn summary_lists_every_rule_even_clean() {
        let s = summarize(&[]);
        for r in RULES {
            assert!(s.contains(r.id), "summary missing {}", r.id);
        }
        assert!(s.contains("total"));
    }
}
