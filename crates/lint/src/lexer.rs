//! A token-level Rust lexer: just enough of the language to drive the
//! rule engine in [`crate::rules`].
//!
//! This is deliberately not a parser. The rules only need a faithful
//! token stream with line numbers — identifiers, punctuation, literals
//! — plus the line comments (where `// dmp-lint: allow(...)`
//! annotations live). The tricky parts a naive `split_whitespace` scan
//! would get wrong are handled properly: nested block comments, string
//! escapes, raw strings (`r#"…"#` with any hash count), byte strings,
//! char literals vs. lifetimes (`'a'` vs. `'a`), raw identifiers
//! (`r#fn`), and float literal detection (`1.0`, `1e12`, `1f64` are
//! floats; `0x1e`, `1.max(2)`, `0..10` are not).

/// Token classification. Only as fine-grained as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the rules treat keywords as idents).
    Ident,
    /// Integer literal, including hex/octal/binary.
    Int,
    /// Float literal (`1.0`, `1e12`, `2f64`).
    Float,
    /// String, byte-string, or raw-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`, `'_`).
    Lifetime,
    /// Single punctuation character. Rules match multi-char operators
    /// (`::`) as consecutive punct tokens.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A `//` line comment, with the text after the slashes.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    /// Whether any token precedes the comment on its own line (a
    /// trailing comment annotates that line; a standalone comment
    /// annotates the next token-bearing line).
    pub trailing: bool,
}

/// Lexer output: the token stream and the line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Advance one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    let c = self.bump().unwrap_or_default();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.out.toks.last().is_some_and(|t| t.line == line);
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            line,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Ordinary (escaped) string body, after the opening quote.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// Try to lex a raw string (`r"…"`, `r#"…"#`), byte string
    /// (`b"…"`), byte raw string (`br#"…"#`), or raw identifier
    /// (`r#fn`). Returns false if the current position is a plain
    /// identifier starting with `r`/`b`, leaving the position
    /// untouched.
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let c0 = self.peek(0);
        let mut i = 1;
        if c0 == Some('b') && self.peek(1) == Some('r') {
            i = 2;
        }
        let raw = i == 2 || c0 == Some('r');
        let mut hashes = 0usize;
        if raw {
            while self.peek(i) == Some('#') {
                hashes += 1;
                i += 1;
            }
        }
        match self.peek(i) {
            Some('"') => {}
            Some(c) if raw && hashes == 1 && is_ident_start(c) => {
                // Raw identifier `r#name`: consume prefix, lex as ident.
                self.bump();
                self.bump();
                self.ident(line);
                return true;
            }
            _ => return false,
        }
        // Consume up to and including the opening quote.
        for _ in 0..=i {
            self.bump();
        }
        if raw {
            // Scan for `"` followed by `hashes` hash marks.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for h in 0..hashes {
                        if self.peek(h) != Some('#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        } else {
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '"' => break,
                    _ => {}
                }
            }
        }
        self.push(TokKind::Str, String::new(), line);
        true
    }

    /// `'a'` / `'\n'` are char literals; `'a` / `'_` are lifetimes.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the quote
        let first = self.peek(0);
        let second = self.peek(1);
        let is_lifetime = matches!(first, Some(c) if is_ident_start(c))
            && second != Some('\'')
            && first != Some('\\');
        if is_lifetime {
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        // Char literal: consume through the closing quote.
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Char, String::new(), line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            // Radix literal: digits then an optional type suffix, never
            // a float (so `0x1e` has no exponent).
            text.push(self.bump().unwrap_or_default());
            text.push(self.bump().unwrap_or_default());
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' || is_ident_continue(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Int, text, line);
            return;
        }
        self.digits(&mut text);
        // Fractional part: `.` followed by a digit, or a bare trailing
        // `.` that is neither a range (`..`) nor a method call (`1.max`).
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    text.push(self.bump().unwrap_or_default());
                    self.digits(&mut text);
                }
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    float = true;
                    text.push(self.bump().unwrap_or_default());
                }
            }
        }
        // Exponent: `e`/`E` with optional sign, then digits.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let (a, b) = (self.peek(1), self.peek(2));
            let signed = matches!(a, Some('+' | '-')) && matches!(b, Some(c) if c.is_ascii_digit());
            if signed || matches!(a, Some(c) if c.is_ascii_digit()) {
                float = true;
                text.push(self.bump().unwrap_or_default());
                if signed {
                    text.push(self.bump().unwrap_or_default());
                }
                self.digits(&mut text);
            }
        }
        // Type suffix (`u32`, `f64`, …): `f` suffixes force float.
        if matches!(self.peek(0), Some(c) if is_ident_start(c)) {
            if self.peek(0) == Some('f') {
                float = true;
            }
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
        }
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, text, line);
    }

    fn digits(&mut self, text: &mut String) {
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn floats_vs_ints() {
        let toks = kinds("1.0 1e12 2f64 1_000_000.0 0x1e 1.max(2) 0..10 x.0");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.0", "1e12", "2f64", "1_000_000.0"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("&'a str 'x' '\\n' '_");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "_"]);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn raw_strings_hide_contents() {
        let toks = kinds(r####"let x = r#"HashMap.unwrap()"# ; y"####);
        assert!(!toks.iter().any(|(_, t)| t == "HashMap" || t == "unwrap"));
        assert!(toks.iter().any(|(_, t)| t == "y"));
    }

    #[test]
    fn nested_block_comments_and_line_comments() {
        let lexed = lex("a /* x /* y */ z */ b // trailing\n// standalone\nc");
        let idents: Vec<&str> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, ["a", "b", "c"]);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("r#fn r#type");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "fn".to_string()),
                (TokKind::Ident, "type".to_string())
            ]
        );
    }

    #[test]
    fn line_numbers_cross_strings() {
        let lexed = lex("a\n\"two\nlines\"\nb");
        assert_eq!(lexed.toks[0].line, 1);
        assert_eq!(lexed.toks[1].line, 2);
        assert_eq!(lexed.toks[2].line, 4);
    }
}
