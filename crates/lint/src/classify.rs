//! The replay-critical module map: which rule classes apply to which
//! source files.
//!
//! The map is checked in on purpose. Whether a module is
//! replay-critical is an architectural fact, not something a tool can
//! infer — so it lives here, next to the rules, where a PR that adds a
//! new settlement path has to edit it (and a reviewer gets to ask why
//! if it doesn't).
//!
//! Deliberate exemptions, documented so they read as decisions rather
//! than omissions:
//!
//! - `service::wire` and `service::command` carry amounts as `f64`
//!   because the paper's interface is priced in real-valued credits;
//!   the ledger converts to integer micro-credits at the boundary.
//!   They are in the replay class (decode drives replay) but not the
//!   float-strict class.
//! - `service::node`'s `/health` body formats uptime as a float; that
//!   is presentation, never state, so node.rs is not float-strict.
//! - `service::reactor` and `service::timer` keep `HashMap`s of
//!   connections and use `Instant` for timeouts; connection bookkeeping
//!   is not replayed, so they are not in the replay class. The reactor
//!   is instead in the reactor-inline class: handlers it runs inline
//!   must not block on locks.

/// Rule classes a file can belong to. A file accumulates the classes
/// of every map entry that matches it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Classes {
    /// Replay-critical: state here is reconstructed by WAL replay and
    /// must be bit-identical across runs and shard counts. Enables
    /// `det-unordered-collection`, `det-wall-clock`, `det-rng`.
    pub replay: bool,
    /// Float-strict: integer-exact arithmetic zones (the micro-credit
    /// ledger, WAL framing). Float literals and casts to `f64`/`f32`
    /// must each justify themselves. Enables `det-float`.
    pub float_strict: bool,
    /// Panic-free: WAL append, recovery, and settlement paths must
    /// propagate errors, not abort mid-critical-section. Enables
    /// `panic-unwrap`, `panic-macro`.
    pub panic_free: bool,
    /// No-indexing: same paths, `[]` indexing (a hidden panic) needs a
    /// bounds argument. Enables `panic-indexing`.
    pub no_index: bool,
    /// Reactor-inline: code that runs on the reactor thread while
    /// serving `/health`, `/metrics`, `/trace`. Blocking lock
    /// acquisitions stall every connection. Enables
    /// `lock-reactor-inline`.
    pub reactor_inline: bool,
}

/// One row of the module map.
pub struct MapEntry {
    /// Path pattern, `/`-separated. A trailing `/` means "directory
    /// prefix" (matched anywhere in the path); otherwise the pattern
    /// must match a path suffix.
    pub pattern: &'static str,
    /// Class names this entry grants (see [`Classes`]).
    pub classes: &'static [&'static str],
    /// Why the module is classified this way.
    pub why: &'static str,
}

/// The checked-in map. Order does not matter; classes accumulate.
pub const MODULE_MAP: &[MapEntry] = &[
    MapEntry {
        pattern: "crates/core/src/arbiter/",
        classes: &["replay"],
        why: "every arbiter pipeline stage re-runs during WAL replay and must \
              produce bit-identical rounds",
    },
    MapEntry {
        pattern: "crates/core/src/market.rs",
        classes: &["replay"],
        why: "round driver + shared substrate; iteration order here is trade order",
    },
    MapEntry {
        pattern: "crates/core/src/arbiter/ledger.rs",
        classes: &["float_strict", "panic_free", "no_index"],
        why: "integer micro-credit ledger: exact conservation is the invariant, \
              floats exist only at the wire boundary; runs inside settlement",
    },
    MapEntry {
        pattern: "crates/core/src/arbiter/pipeline/settlement.rs",
        classes: &["panic_free", "no_index"],
        why: "a panic between escrow release and license grant strands funds",
    },
    MapEntry {
        pattern: "crates/service/src/command.rs",
        classes: &["replay"],
        why: "command decode is the first step of replay",
    },
    MapEntry {
        pattern: "crates/service/src/journal.rs",
        classes: &["replay", "float_strict", "panic_free", "no_index"],
        why: "WAL append and frame scan: must report torn tails as errors, \
              never panic while the journal is mid-write",
    },
    MapEntry {
        pattern: "crates/service/src/snapshot.rs",
        classes: &["replay", "float_strict", "panic_free", "no_index"],
        why: "snapshot encode/decode feeds recovery; a corrupt file must fall \
              back to full replay, not abort",
    },
    MapEntry {
        pattern: "crates/service/src/state.rs",
        classes: &["replay", "float_strict", "panic_free", "no_index"],
        why: "materialized-state codec: decode(encode(state)) must be \
              digest-identical, floats travel as bit patterns, and a corrupt \
              image must error (fall back to replay), never panic",
    },
    MapEntry {
        pattern: "crates/service/src/node.rs",
        classes: &["replay", "panic_free", "no_index"],
        why: "command application: the WAL ordering invariant lives here",
    },
    MapEntry {
        pattern: "crates/service/src/shard.rs",
        classes: &["replay", "panic_free", "no_index"],
        why: "settlement routing and two-phase cross-shard clearing; \
              1-shard == M-shard equivalence depends on deterministic order",
    },
    MapEntry {
        pattern: "crates/service/src/codec.rs",
        classes: &["replay", "float_strict", "panic_free", "no_index"],
        why: "distributed round codec: decode(encode(cs)) must be bit-exact, \
              floats travel as bit patterns, and a malformed candidate payload \
              from the wire must error, never panic a round",
    },
    MapEntry {
        pattern: "crates/service/src/worker.rs",
        classes: &["replay", "panic_free"],
        why: "worker replicas re-execute the coordinator's rounds from wire \
              payloads and must land bit-identical; a panic kills the replica",
    },
    MapEntry {
        pattern: "crates/service/src/coordinator.rs",
        classes: &["panic_free"],
        why: "worker-pool RPC fan-out runs inside the apply critical section; \
              a panic there poisons the exchange, a worker fault must degrade \
              to re-dispatch or local compute instead",
    },
    MapEntry {
        pattern: "crates/service/src/reactor.rs",
        classes: &["reactor_inline"],
        why: "one thread owns every connection; a blocking lock here stalls \
              the whole gateway",
    },
    MapEntry {
        pattern: "crates/telemetry/src/registry.rs",
        classes: &["reactor_inline"],
        why: "/metrics renders inline on the reactor thread",
    },
    MapEntry {
        pattern: "crates/telemetry/src/trace.rs",
        classes: &["reactor_inline"],
        why: "/trace renders inline on the reactor thread",
    },
];

/// Classify a path against [`MODULE_MAP`]. Accepts either `/` or `\`
/// separators and both absolute and repo-relative paths.
pub fn classify(path: &str) -> Classes {
    let norm: String = path
        .chars()
        .map(|c| if c == '\\' { '/' } else { c })
        .collect();
    let mut out = Classes::default();
    for entry in MODULE_MAP {
        let hit = if entry.pattern.ends_with('/') {
            norm.contains(entry.pattern)
        } else {
            norm.ends_with(entry.pattern)
        };
        if !hit {
            continue;
        }
        for class in entry.classes {
            match *class {
                "replay" => out.replay = true,
                "float_strict" => out.float_strict = true,
                "panic_free" => out.panic_free = true,
                "no_index" => out.no_index = true,
                "reactor_inline" => out.reactor_inline = true,
                other => unreachable!("unknown class name in MODULE_MAP: {other}"),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbiter_dir_is_replay() {
        let c = classify("/root/repo/crates/core/src/arbiter/pricing.rs");
        assert!(c.replay);
        assert!(!c.float_strict);
    }

    #[test]
    fn ledger_accumulates_dir_and_file_classes() {
        let c = classify("crates/core/src/arbiter/ledger.rs");
        assert!(c.replay, "dir entry");
        assert!(c.float_strict && c.panic_free && c.no_index, "file entry");
    }

    #[test]
    fn reactor_is_inline_only() {
        let c = classify("crates/service/src/reactor.rs");
        assert!(c.reactor_inline);
        assert!(!c.replay && !c.panic_free);
    }

    #[test]
    fn unclassified_file_gets_nothing() {
        assert_eq!(classify("crates/relation/src/lib.rs"), Classes::default());
    }

    #[test]
    fn every_map_class_name_is_known() {
        // classify() would hit unreachable!() on a typo; touch every
        // entry once.
        for e in MODULE_MAP {
            let _ = classify(&format!("x/{}", e.pattern.trim_end_matches('/')));
            let _ = classify(&format!("x/{}/y.rs", e.pattern.trim_end_matches('/')));
        }
    }
}
