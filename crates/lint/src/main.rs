//! The `dmp-lint` binary: walk the workspace, print findings and the
//! per-rule summary, exit nonzero on any finding.
//!
//! ```text
//! dmp-lint [--deny-all] [--explain <rule>] [--list] [--map] [root]
//! ```
//!
//! Deny is the default and only mode; `--deny-all` is accepted so the
//! CI invocation states its semantics explicitly.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => {} // the default; kept for explicit CI invocations
            "--list" => {
                for r in dmp_lint::RULES {
                    println!("{:24}  [{}] {}", r.id, r.family, first_line(r.summary));
                }
                return ExitCode::SUCCESS;
            }
            "--map" => {
                for e in dmp_lint::MODULE_MAP {
                    println!(
                        "{}\n    classes: {}\n    why: {}",
                        e.pattern,
                        e.classes.join(", "),
                        e.why
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(id) = args.next() else {
                    eprintln!("--explain needs a rule id (see --list)");
                    return ExitCode::FAILURE;
                };
                let Some(info) = dmp_lint::rule(&id) else {
                    eprintln!("unknown rule `{id}` (see --list)");
                    return ExitCode::FAILURE;
                };
                print!("{}", dmp_lint::explain(info));
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: dmp-lint [--deny-all] [--explain <rule>] [--list] [--map] [root]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let findings = match dmp_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dmp-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for f in &findings {
        println!("{}", f.render());
    }
    if !findings.is_empty() {
        println!();
    }
    print!("{}", dmp_lint::summarize(&findings));
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn first_line(s: &str) -> String {
    // Summaries are wrapped string literals; collapse the whitespace
    // runs the continuation lines introduce.
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}
