//! The rule engine: walks one file's token stream and emits findings.
//!
//! Three families (see README "Correctness tooling"):
//!
//! - **determinism** — `det-unordered-collection`, `det-wall-clock`,
//!   `det-rng`, `det-float`: replay-critical modules must not depend on
//!   process-seeded iteration order, wall clocks, ambient randomness,
//!   or (in the float-strict zones) unjustified float arithmetic.
//! - **lock discipline** — `lock-across-fsync`, `lock-order`,
//!   `lock-reactor-inline`: every `.lock()` site is recorded; guards
//!   held across fsync-bearing calls are flagged, pairwise acquisition
//!   order is checked for inversions workspace-wide, and reactor-inline
//!   modules may not block on a lock at all.
//! - **panic hygiene** — `panic-unwrap`, `panic-macro`,
//!   `panic-indexing`: WAL append, recovery, and settlement paths
//!   propagate errors; they do not abort mid-critical-section.
//!
//! Two meta rules (`allow-unused`, `allow-malformed`) police the
//! suppression annotations themselves; they are produced by
//! [`crate::Linter`], not here.
//!
//! Known approximations, chosen over false negatives:
//!
//! - `det-unordered-collection` flags any `HashMap`/`HashSet` mention
//!   in a replay module, not just iteration — the type's presence is
//!   the hazard, and keyed-lookup-only uses can say so in an allow.
//! - Lock tracking recognizes `.lock()` only (the parking_lot shim and
//!   std). `.read()`/`.write()` collide with `io::Read`/`io::Write`
//!   too often to match on tokens; the workspace's `RwLock`s live in
//!   discovery caches outside every class.
//! - Guard liveness is brace-scoped from the acquisition site, plus
//!   explicit `drop(guard)`. That is exactly how the codebase scopes
//!   guards, but a guard smuggled out of a block by value would escape
//!   the analysis.

use crate::classify::Classes;
use crate::lexer::{Tok, TokKind};

/// One lint finding at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Guard A (`first`) was held while guard B (`second`) was acquired at
/// `path:line`. Collected per file, checked for inversions
/// workspace-wide by [`crate::Linter::finish`].
#[derive(Debug, Clone)]
pub struct LockPair {
    pub first: String,
    pub second: String,
    pub path: String,
    pub line: u32,
}

/// Per-file analysis output.
#[derive(Debug, Default)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub pairs: Vec<LockPair>,
}

/// Documentation record for one rule: drives `--explain`, `--list`,
/// and annotation validation.
pub struct RuleInfo {
    pub id: &'static str,
    pub family: &'static str,
    pub summary: &'static str,
    /// Minimal offending snippet.
    pub bad: &'static str,
    /// The fix (or the shape of a justified allow).
    pub fix: &'static str,
}

pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "det-unordered-collection",
        family: "determinism",
        summary: "no HashMap/HashSet in replay-critical modules: std's per-process \
                  hasher seed makes iteration order differ between the run that \
                  wrote the WAL and the run that replays it",
        bad: "let mut scores: HashMap<DatasetId, f64> = HashMap::new();\n\
              for (id, s) in &scores { total += s; } // order differs per process",
        fix: "use BTreeMap/BTreeSet (deterministic order), or sort before \
              draining; keyed-lookup-only uses may annotate:\n\
              // dmp-lint: allow(det-unordered-collection) -- never iterated, lookups only",
    },
    RuleInfo {
        id: "det-wall-clock",
        family: "determinism",
        summary: "no Instant::now/SystemTime::now in replay-critical modules: \
                  wall-clock reads differ on replay, so any value derived from \
                  them diverges the rebuilt state",
        bad: "let deadline = Instant::now() + ttl; // replay sees a different now",
        fix: "thread logical time (round number, command seq) through instead; \
              pure latency telemetry may annotate:\n\
              // dmp-lint: allow(det-wall-clock) -- latency telemetry only, never applied state",
    },
    RuleInfo {
        id: "det-rng",
        family: "determinism",
        summary: "no ambient randomness (thread_rng/from_entropy/rand::random) in \
                  replay-critical modules: entropy draws cannot be replayed",
        bad: "let jitter = rand::thread_rng().gen_range(0..10);",
        fix: "derive a seeded stream from replayed state, as the candidate stage \
              does: StdRng::seed_from_u64(round_seed ^ offer_id)",
    },
    RuleInfo {
        id: "det-float",
        family: "determinism",
        summary: "no float literals or `as f64`/`as f32` casts in float-strict \
                  zones (ledger, WAL framing): float accumulation is \
                  order-sensitive and conservation must be exact",
        bad: "balance += amount * 0.95; // drifts; order-dependent",
        fix: "keep integer micro-credits; boundary conversions annotate with the \
              exactness argument:\n\
              // dmp-lint: allow(det-float) -- u32 seq is exact in f64 (< 2^53)",
    },
    RuleInfo {
        id: "lock-across-fsync",
        family: "lock-discipline",
        summary: "a Mutex guard is live across an fsync-bearing call (sync_all, \
                  sync_data, journal.append, write_snapshot): every other path \
                  on that lock stalls for the disk",
        bad: "let mut inner = self.inner.lock();\n\
              inner.journal.append(&cmd)?; // fsync inside; lock held ~ms",
        fix: "move the I/O outside the critical section, or — where the WAL \
              ordering invariant requires append+apply to be atomic — annotate:\n\
              // dmp-lint: allow(lock-across-fsync) -- WAL invariant: durable-before-visible",
    },
    RuleInfo {
        id: "lock-order",
        family: "lock-discipline",
        summary: "two locks are acquired in opposite orders at different sites; \
                  under concurrency that is a deadlock waiting for its interleaving",
        bad: "fn a() { let _l = licenses.lock(); let _h = holds.lock(); }\n\
              fn b() { let _h = holds.lock(); let _l = licenses.lock(); }",
        fix: "pick one global order (the workspace uses: licenses before \
              exclusive_holds before ci_policies; escrows before accounts) and \
              restructure the outlier",
    },
    RuleInfo {
        id: "lock-reactor-inline",
        family: "lock-discipline",
        summary: "a blocking .lock() in a reactor-inline module: one thread owns \
                  every connection, so blocking it stalls the whole gateway",
        bad: "fn handle_metrics(&self) -> String { self.entries.lock().render() }",
        fix: "use try_lock with a lossy fallback (as the trace ring does), or \
              annotate with the bounded-hold argument:\n\
              // dmp-lint: allow(lock-reactor-inline) -- held for a snapshot copy only",
    },
    RuleInfo {
        id: "panic-unwrap",
        family: "panic-hygiene",
        summary: "no .unwrap()/.expect() in WAL append, recovery, or settlement \
                  paths: a panic mid-critical-section poisons state that error \
                  propagation would have left recoverable",
        bad: "let crc = bytes[pos..pos + 4].try_into().unwrap();",
        fix: "propagate: bytes.get(pos..pos + 4).and_then(|s| s.try_into().ok())\n\
              .ok_or_else(|| io::Error::new(InvalidData, \"torn frame\"))?",
    },
    RuleInfo {
        id: "panic-macro",
        family: "panic-hygiene",
        summary: "no panic!/unreachable!/todo!/unimplemented! in panic-free \
                  modules: aborting the apply thread mid-settlement strands escrow",
        bad: "None => panic!(\"escrow {id} missing\"),",
        fix: "return an error the caller can journal and surface: \
              None => return Err(MarketError::UnknownEscrow(id)),",
    },
    RuleInfo {
        id: "panic-indexing",
        family: "panic-hygiene",
        summary: "no [] indexing in panic-free modules: a slice index is an \
                  invisible panic site; recovery code especially sees arbitrary \
                  on-disk garbage",
        bad: "let header = &bytes[pos..pos + 8]; // torn tail => panic",
        fix: "use .get(..) and propagate, or annotate with the bounds argument:\n\
              // dmp-lint: allow(panic-indexing) -- index reduced mod shards.len() above",
    },
    RuleInfo {
        id: "allow-unused",
        family: "meta",
        summary: "a dmp-lint allow annotation suppressed nothing; stale allows \
                  hide future regressions at that site",
        bad: "// dmp-lint: allow(det-wall-clock) -- telemetry\nlet x = 1; // no finding here",
        fix: "delete the annotation (or move it to the line it was meant for)",
    },
    RuleInfo {
        id: "allow-malformed",
        family: "meta",
        summary: "a dmp-lint annotation that does not parse, names an unknown \
                  rule, or omits the mandatory `-- <reason>`",
        bad: "// dmp-lint: allow(det-wall-clock)   (no reason given)",
        fix: "write: // dmp-lint: allow(<rule>[, <rule>]) -- <why this is sound>",
    },
];

/// Look up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Keywords that can directly precede `[` without forming an index
/// expression (array literals, slice patterns, `&mut [T]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "break", "else", "match", "loop", "move", "const",
    "static", "use", "pub", "as", "dyn", "where", "if", "while", "for", "unsafe", "box",
];

/// A live lock guard.
struct Guard {
    /// Binding name when `let`-bound (enables `drop(name)` tracking).
    name: Option<String>,
    /// The field/variable the lock was taken on (`self.inner.lock()` →
    /// `inner`): the identity used for ordering checks.
    receiver: String,
    /// Brace depth at acquisition; the guard dies when depth drops
    /// below it.
    depth: i32,
    /// Not `let`-bound: a temporary dropped at the end of its statement.
    temp: bool,
}

/// Analyze one file's (test-stripped) token stream.
pub fn analyze(path: &str, toks: &[Tok], classes: &Classes) -> Analysis {
    let mut out = Analysis::default();
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    let mut pending_let: Option<String> = None;

    let ident = |i: usize| -> Option<&str> {
        toks.get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    };
    let punct = |i: usize, c: char| toks.get(i).is_some_and(|t| t.is_punct(c));

    let push = |out: &mut Analysis, rule: &'static str, line: u32, msg: String| {
        out.findings.push(Finding {
            path: path.to_string(),
            line,
            rule,
            message: msg,
        });
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        let line = t.line;

        // --- scope bookkeeping ---------------------------------------
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    pending_let = None;
                }
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                    pending_let = None;
                }
                ";" => {
                    guards.retain(|g| !(g.temp && g.depth == depth));
                    pending_let = None;
                }
                _ => {}
            }
        }
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                // A new item: expression guards cannot span it.
                "fn" => guards.clear(),
                "let" => {
                    let mut j = i + 1;
                    if ident(j) == Some("mut") {
                        j += 1;
                    }
                    pending_let = ident(j).map(str::to_string);
                }
                // `drop(guard)` releases by name.
                "drop" if punct(i + 1, '(') && punct(i + 3, ')') => {
                    if let Some(name) = ident(i + 2) {
                        guards.retain(|g| g.name.as_deref() != Some(name));
                    }
                }
                _ => {}
            }
        }

        // --- determinism ---------------------------------------------
        if classes.replay && t.kind == TokKind::Ident {
            match t.text.as_str() {
                "HashMap" | "HashSet" => push(
                    &mut out,
                    "det-unordered-collection",
                    line,
                    format!(
                        "{} in a replay-critical module: iteration order is \
                         per-process, so replay diverges",
                        t.text
                    ),
                ),
                "Instant" | "SystemTime"
                    if punct(i + 1, ':') && punct(i + 2, ':') && ident(i + 3) == Some("now") =>
                {
                    push(
                        &mut out,
                        "det-wall-clock",
                        line,
                        format!("{}::now() in a replay-critical module", t.text),
                    )
                }
                "thread_rng" | "from_entropy" => push(
                    &mut out,
                    "det-rng",
                    line,
                    format!("ambient randomness ({}) cannot be replayed", t.text),
                ),
                "random"
                    if i >= 3
                        && punct(i - 1, ':')
                        && punct(i - 2, ':')
                        && ident(i - 3) == Some("rand") =>
                {
                    push(
                        &mut out,
                        "det-rng",
                        line,
                        "rand::random() draws from the thread RNG".to_string(),
                    )
                }
                _ => {}
            }
        }
        if classes.float_strict {
            if t.kind == TokKind::Float {
                push(
                    &mut out,
                    "det-float",
                    line,
                    format!("float literal `{}` in a float-strict zone", t.text),
                );
            }
            if t.is_ident("as") {
                if let Some(ty @ ("f64" | "f32")) = ident(i + 1) {
                    push(
                        &mut out,
                        "det-float",
                        line,
                        format!("`as {ty}` cast in a float-strict zone"),
                    );
                }
            }
        }

        // --- lock discipline -----------------------------------------
        let is_lock_call = t.is_ident("lock")
            && i > 0
            && punct(i - 1, '.')
            && punct(i + 1, '(')
            && punct(i + 2, ')');
        if is_lock_call {
            let receiver = if i >= 2 && toks[i - 2].kind == TokKind::Ident {
                toks[i - 2].text.clone()
            } else {
                "<expr>".to_string()
            };
            // A `let`-bound acquisition only produces a *live* guard if
            // the binding IS the guard: the statement must end right
            // after `.lock()`, modulo the `.unwrap()`/`.expect(..)` a
            // std mutex needs. `let n = m.lock().values().fold(..);`
            // binds the fold result; its guard is a temporary that dies
            // at the `;`.
            let mut j = i + 3;
            loop {
                if punct(j, '.')
                    && matches!(ident(j + 1), Some("unwrap" | "expect"))
                    && punct(j + 2, '(')
                {
                    let mut k = j + 3;
                    let mut pdepth = 1;
                    while k < toks.len() && pdepth > 0 {
                        if punct(k, '(') {
                            pdepth += 1;
                        } else if punct(k, ')') {
                            pdepth -= 1;
                        }
                        k += 1;
                    }
                    j = k;
                } else {
                    break;
                }
            }
            let binds_guard = pending_let.is_some() && punct(j, ';');
            if classes.reactor_inline {
                push(
                    &mut out,
                    "lock-reactor-inline",
                    line,
                    format!(
                        "blocking `.lock()` on `{receiver}` in a reactor-inline \
                         module (try_lock or annotate)"
                    ),
                );
            }
            for g in &guards {
                if g.receiver != receiver {
                    out.pairs.push(LockPair {
                        first: g.receiver.clone(),
                        second: receiver.clone(),
                        path: path.to_string(),
                        line,
                    });
                }
            }
            guards.push(Guard {
                name: if binds_guard {
                    pending_let.clone()
                } else {
                    None
                },
                receiver,
                depth,
                temp: !binds_guard,
            });
        }
        if !guards.is_empty() {
            let marker = match ident(i) {
                Some(m @ ("sync_all" | "sync_data")) if punct(i.wrapping_sub(1), '.') => Some(m),
                Some(m @ "write_snapshot") if punct(i + 1, '(') => Some(m),
                Some(m @ "append")
                    if punct(i.wrapping_sub(1), '.')
                        && ident(i.wrapping_sub(2)) == Some("journal") =>
                {
                    Some(m)
                }
                _ => None,
            };
            if let Some(m) = marker {
                let held: Vec<&str> = guards.iter().map(|g| g.receiver.as_str()).collect();
                push(
                    &mut out,
                    "lock-across-fsync",
                    line,
                    format!(
                        "`{m}` (fsync-bearing) while holding lock(s) on {}: the \
                         disk write serializes every waiter",
                        held.join(", ")
                    ),
                );
            }
        }

        // --- panic hygiene -------------------------------------------
        if classes.panic_free && t.kind == TokKind::Ident {
            match t.text.as_str() {
                "unwrap" | "expect" if i > 0 && punct(i - 1, '.') => push(
                    &mut out,
                    "panic-unwrap",
                    line,
                    format!(".{}() in a panic-free module: propagate instead", t.text),
                ),
                "panic" | "unreachable" | "todo" | "unimplemented" if punct(i + 1, '!') => push(
                    &mut out,
                    "panic-macro",
                    line,
                    format!(
                        "{}! in a panic-free module: return an error instead",
                        t.text
                    ),
                ),
                _ => {}
            }
        }
        if classes.no_index && t.is_punct('[') && i > 0 {
            let prev = &toks[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.is_punct(']') || prev.is_punct(')'),
                _ => false,
            };
            if indexes {
                push(
                    &mut out,
                    "panic-indexing",
                    line,
                    "[] indexing in a panic-free module: use .get(..) and propagate".to_string(),
                );
            }
        }
    }
    out
}
