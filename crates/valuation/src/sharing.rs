//! Revenue sharing via provenance (§3.2.3, component 5): "the revenue
//! sharing problem determines how the price from each row in `m` is
//! shared among the contributing datasets [...] if `f()` is a relational
//! function, then we can leverage the vast research in provenance."
//!
//! Every mashup row carries why-provenance; a row's allocated revenue is
//! split across the datasets mentioned in its monomial, proportionally to
//! the number of source rows each dataset contributed.

use std::collections::HashMap;

use dmp_relation::{DatasetId, Relation};

use crate::row_alloc::RowAllocation;

/// Revenue attributed to one dataset from one mashup sale.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetShare {
    /// The dataset.
    pub dataset: DatasetId,
    /// Its share of the sale price.
    pub amount: f64,
}

/// How row allocations propagate to datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingRule {
    /// Within each row, split by the dataset's share of provenance atoms
    /// (a dataset that contributed 2 of 3 source rows gets 2/3).
    ProportionalToAtoms,
    /// Within each row, each distinct contributing dataset gets an equal
    /// slice regardless of atom counts.
    EqualPerDataset,
}

/// Share a sold mashup's revenue back to source datasets.
///
/// Rows with empty provenance (synthesized data) contribute their
/// allocation to the arbiter instead; that residual is returned under
/// `DatasetId(u64::MAX)` so the caller can book it explicitly.
pub fn share_revenue(
    mashup: &Relation,
    rows: &RowAllocation,
    rule: SharingRule,
) -> Vec<DatasetShare> {
    /// Sentinel for revenue that has no provenance to flow to.
    const ARBITER: DatasetId = DatasetId(u64::MAX);

    let mut shares: HashMap<DatasetId, f64> = HashMap::new();
    for (row, &amount) in mashup.rows().iter().zip(rows.amounts()) {
        if amount == 0.0 {
            continue;
        }
        let counts = row.provenance().dataset_counts();
        if counts.is_empty() {
            *shares.entry(ARBITER).or_insert(0.0) += amount;
            continue;
        }
        match rule {
            SharingRule::ProportionalToAtoms => {
                let total_atoms: usize = counts.iter().map(|(_, c)| c).sum();
                for (d, c) in counts {
                    *shares.entry(d).or_insert(0.0) += amount * c as f64 / total_atoms as f64;
                }
            }
            SharingRule::EqualPerDataset => {
                let k = counts.len() as f64;
                for (d, _) in counts {
                    *shares.entry(d).or_insert(0.0) += amount / k;
                }
            }
        }
    }
    let mut out: Vec<DatasetShare> = shares
        .into_iter()
        .map(|(dataset, amount)| DatasetShare { dataset, amount })
        .collect();
    out.sort_by_key(|s| s.dataset);
    out
}

/// Sum of all shares (equals the row-allocation total: conservation).
pub fn total_shared(shares: &[DatasetShare]) -> f64 {
    shares.iter().map(|s| s.amount).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::ops::JoinKind;
    use dmp_relation::{DataType, RelationBuilder, Value};

    fn joined_mashup() -> Relation {
        let left = RelationBuilder::new("l")
            .column("k", DataType::Int)
            .column("a", DataType::Str)
            .row(vec![Value::Int(1), Value::str("x")])
            .row(vec![Value::Int(2), Value::str("y")])
            .source(DatasetId(1))
            .build()
            .unwrap();
        let right = RelationBuilder::new("r")
            .column("k", DataType::Int)
            .column("b", DataType::Str)
            .row(vec![Value::Int(1), Value::str("p")])
            .row(vec![Value::Int(2), Value::str("q")])
            .source(DatasetId(2))
            .build()
            .unwrap();
        left.join(&right, &[("k", "k")], JoinKind::Inner).unwrap()
    }

    #[test]
    fn join_splits_evenly_between_two_sources() {
        let m = joined_mashup();
        let rows = RowAllocation::uniform(&m, 100.0);
        let shares = share_revenue(&m, &rows, SharingRule::ProportionalToAtoms);
        assert_eq!(shares.len(), 2);
        assert!((shares[0].amount - 50.0).abs() < 1e-9);
        assert!((shares[1].amount - 50.0).abs() < 1e-9);
        assert!((total_shared(&shares) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn aggregation_weights_by_contributed_rows() {
        // dataset 1 contributes 3 rows, dataset 2 contributes 1; after a
        // union+aggregate the single output row credits them 3:1.
        let a = RelationBuilder::new("a")
            .column("g", DataType::Str)
            .column("x", DataType::Int)
            .row(vec![Value::str("g"), Value::Int(1)])
            .row(vec![Value::str("g"), Value::Int(2)])
            .row(vec![Value::str("g"), Value::Int(3)])
            .source(DatasetId(1))
            .build()
            .unwrap();
        let b = RelationBuilder::new("b")
            .column("g", DataType::Str)
            .column("x", DataType::Int)
            .row(vec![Value::str("g"), Value::Int(4)])
            .source(DatasetId(2))
            .build()
            .unwrap();
        let u = a.union(&b).unwrap();
        let m = u
            .aggregate(
                &["g"],
                &[dmp_relation::ops::AggSpec::new(
                    "x",
                    dmp_relation::ops::AggFun::Sum,
                    "total",
                )],
            )
            .unwrap();
        let rows = RowAllocation::uniform(&m, 40.0);
        let shares = share_revenue(&m, &rows, SharingRule::ProportionalToAtoms);
        let d1 = shares.iter().find(|s| s.dataset == DatasetId(1)).unwrap();
        let d2 = shares.iter().find(|s| s.dataset == DatasetId(2)).unwrap();
        assert!((d1.amount - 30.0).abs() < 1e-9);
        assert!((d2.amount - 10.0).abs() < 1e-9);

        // EqualPerDataset ignores the 3:1 atom ratio.
        let eq = share_revenue(&m, &rows, SharingRule::EqualPerDataset);
        assert!((eq[0].amount - 20.0).abs() < 1e-9);
        assert!((eq[1].amount - 20.0).abs() < 1e-9);
    }

    #[test]
    fn provenance_free_rows_go_to_arbiter() {
        let m = RelationBuilder::new("synth")
            .column("x", DataType::Int)
            .row(vec![Value::Int(1)])
            .build()
            .unwrap();
        let rows = RowAllocation::uniform(&m, 10.0);
        let shares = share_revenue(&m, &rows, SharingRule::ProportionalToAtoms);
        assert_eq!(shares.len(), 1);
        assert_eq!(shares[0].dataset, DatasetId(u64::MAX));
        assert!((shares[0].amount - 10.0).abs() < 1e-9);
    }

    #[test]
    fn conservation_under_weighted_rows() {
        let m = joined_mashup();
        let rows = RowAllocation::weighted(&m, 77.0, &[3.0, 1.0]);
        let shares = share_revenue(&m, &rows, SharingRule::ProportionalToAtoms);
        assert!((total_shared(&shares) - 77.0).abs() < 1e-9);
    }

    #[test]
    fn zero_price_zero_shares() {
        let m = joined_mashup();
        let rows = RowAllocation::uniform(&m, 0.0);
        let shares = share_revenue(&m, &rows, SharingRule::ProportionalToAtoms);
        assert!(total_shared(&shares).abs() < 1e-12);
    }
}
