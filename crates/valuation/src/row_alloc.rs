//! Per-row revenue allocation (§3.1, component 4): "in the case of
//! markets of relational data, a mashup is a relation, and the revenue
//! allocation function determines how much of the money raised is
//! allocated to each row in the mashup."

use dmp_relation::Relation;

/// Revenue allocated to each row of a sold mashup. Invariant: the
/// allocations sum to the allocated price (budget balance).
#[derive(Debug, Clone, PartialEq)]
pub struct RowAllocation {
    amounts: Vec<f64>,
}

impl RowAllocation {
    /// Uniform: every row gets `price / rows`.
    pub fn uniform(mashup: &Relation, price: f64) -> RowAllocation {
        let n = mashup.len();
        if n == 0 {
            return RowAllocation {
                amounts: Vec::new(),
            };
        }
        RowAllocation {
            amounts: vec![price / n as f64; n],
        }
    }

    /// Weighted by explicit per-row weights (e.g. task-influence scores:
    /// rows that moved the model's accuracy more are worth more).
    /// Negative weights are clamped to zero; all-zero weights fall back
    /// to uniform.
    pub fn weighted(mashup: &Relation, price: f64, weights: &[f64]) -> RowAllocation {
        let n = mashup.len();
        if n == 0 {
            return RowAllocation {
                amounts: Vec::new(),
            };
        }
        assert_eq!(weights.len(), n, "one weight per row");
        let clamped: Vec<f64> = weights.iter().map(|w| w.max(0.0)).collect();
        let total: f64 = clamped.iter().sum();
        if total <= 0.0 {
            return Self::uniform(mashup, price);
        }
        RowAllocation {
            amounts: clamped.iter().map(|w| w / total * price).collect(),
        }
    }

    /// Weighted by provenance breadth: rows assembled from more source
    /// rows (joins across more inputs) carry more integration value.
    pub fn by_provenance_size(mashup: &Relation, price: f64) -> RowAllocation {
        let weights: Vec<f64> = mashup
            .rows()
            .iter()
            .map(|r| r.provenance().len().max(1) as f64)
            .collect();
        Self::weighted(mashup, price, &weights)
    }

    /// Per-row amounts.
    pub fn amounts(&self) -> &[f64] {
        &self.amounts
    }

    /// Total allocated (equals the price up to float error).
    pub fn total(&self) -> f64 {
        self.amounts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::{DataType, DatasetId, RelationBuilder, Value};

    fn mashup() -> Relation {
        let mut b = RelationBuilder::new("m").column("x", DataType::Int);
        for i in 0..4 {
            b = b.row(vec![Value::Int(i)]);
        }
        b.source(DatasetId(1)).build().unwrap()
    }

    #[test]
    fn uniform_splits_evenly_and_balances() {
        let a = RowAllocation::uniform(&mashup(), 100.0);
        assert_eq!(a.amounts(), &[25.0; 4]);
        assert!((a.total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_respects_weights() {
        let a = RowAllocation::weighted(&mashup(), 100.0, &[1.0, 1.0, 2.0, 0.0]);
        assert_eq!(a.amounts(), &[25.0, 25.0, 50.0, 0.0]);
        assert!((a.total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn negative_weights_clamped() {
        let a = RowAllocation::weighted(&mashup(), 10.0, &[-1.0, 1.0, 0.0, 0.0]);
        assert_eq!(a.amounts()[0], 0.0);
        assert!((a.total() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let a = RowAllocation::weighted(&mashup(), 8.0, &[0.0; 4]);
        assert_eq!(a.amounts(), &[2.0; 4]);
    }

    #[test]
    fn empty_mashup_empty_allocation() {
        let empty = RelationBuilder::new("e")
            .column("x", DataType::Int)
            .build()
            .unwrap();
        let a = RowAllocation::uniform(&empty, 50.0);
        assert!(a.amounts().is_empty());
        assert_eq!(a.total(), 0.0);
    }

    #[test]
    fn provenance_size_weighting() {
        use dmp_relation::ops::JoinKind;
        // join produces rows with 2-atom provenance; a left-join miss has 1.
        let left = RelationBuilder::new("l")
            .column("k", DataType::Int)
            .row(vec![Value::Int(1)])
            .row(vec![Value::Int(2)])
            .source(DatasetId(1))
            .build()
            .unwrap();
        let right = RelationBuilder::new("r")
            .column("k", DataType::Int)
            .row(vec![Value::Int(1)])
            .source(DatasetId(2))
            .build()
            .unwrap();
        let j = left.join(&right, &[("k", "k")], JoinKind::Left).unwrap();
        let a = RowAllocation::by_provenance_size(&j, 30.0);
        // row for k=1 has 2 atoms, k=2 has 1 atom: weights 2:1
        assert!((a.amounts()[0] - 20.0).abs() < 1e-9);
        assert!((a.amounts()[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one weight per row")]
    fn weight_arity_checked() {
        let _ = RowAllocation::weighted(&mashup(), 1.0, &[1.0]);
    }
}
