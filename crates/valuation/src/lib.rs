//! # dmp-valuation
//!
//! Revenue allocation and revenue sharing (paper §3.2.3; DESIGN.md
//! S12/S13): "the Shapley value has been used to allocate revenue to each
//! row individually [...] We are investigating alternative approaches that
//! are more computationally efficient and maintain the good properties
//! conferred by the Shapley value."
//!
//! * [`shapley`] — exact Shapley (bit-subset dynamic enumeration, n ≤ 22),
//!   permutation-sampling Monte Carlo, and stratified sampling;
//! * [`banzhaf`] — Banzhaf index and leave-one-out values;
//! * [`core_solver`] — core membership checks and least-core computation
//!   for small coalitional games;
//! * [`knn_shapley`] — the closed-form exact Shapley value for K-NN
//!   utility (Jia et al., VLDB'19 [56]) in O(n log n);
//! * [`row_alloc`] — per-row revenue allocation within a sold mashup;
//! * [`sharing`] — provenance-based revenue sharing: propagate row
//!   allocations to source datasets via why-provenance.

pub mod banzhaf;
pub mod core_solver;
pub mod knn_shapley;
pub mod row_alloc;
pub mod shapley;
pub mod sharing;

pub use core_solver::{is_in_core, least_core};
pub use row_alloc::RowAllocation;
pub use shapley::{exact_shapley, monte_carlo_shapley, stratified_shapley, CharacteristicFn};
pub use sharing::{share_revenue, DatasetShare};
