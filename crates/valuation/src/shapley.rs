//! Shapley-value revenue allocation (§3.2.3, [84, 44]).
//!
//! The characteristic function `v(S)` gives the value a coalition of
//! datasets/rows would generate together (e.g. the WTP price achieved by
//! the mashup built from exactly those inputs). The Shapley value
//! distributes `v(N)` according to average marginal contributions over
//! all orderings — the unique allocation satisfying efficiency, symmetry,
//! dummy and additivity.
//!
//! Exact computation enumerates `2^n` coalitions (feasible to n ≈ 22);
//! above that, permutation-sampling Monte Carlo gives an unbiased
//! estimate with error `O(1/√samples)` — the cost/accuracy trade-off the
//! paper calls out and experiment E4 measures.

use rand::seq::SliceRandom;
use rand::Rng;

/// A coalitional game over players `0..n`, with coalitions encoded as
/// bitmasks for cheap enumeration.
pub struct CharacteristicFn {
    n: usize,
    f: Box<dyn Fn(u64) -> f64 + Send + Sync>,
}

impl CharacteristicFn {
    /// Maximum players for exact enumeration.
    pub const EXACT_LIMIT: usize = 22;

    /// Wrap a closure `v(mask)`.
    pub fn new(n: usize, f: impl Fn(u64) -> f64 + Send + Sync + 'static) -> Self {
        assert!(n <= 63, "bitmask games support at most 63 players");
        CharacteristicFn { n, f: Box::new(f) }
    }

    /// Number of players.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Value of a coalition.
    pub fn value(&self, mask: u64) -> f64 {
        (self.f)(mask)
    }

    /// Value of the grand coalition.
    pub fn grand_value(&self) -> f64 {
        self.value(((1u128 << self.n) - 1) as u64)
    }
}

/// Exact Shapley values by full subset enumeration. Memoizes all `2^n`
/// coalition values first, then accumulates weighted marginals.
/// Panics if `n > EXACT_LIMIT` (use the Monte-Carlo estimators instead).
pub fn exact_shapley(game: &CharacteristicFn) -> Vec<f64> {
    let n = game.n();
    assert!(
        n <= CharacteristicFn::EXACT_LIMIT,
        "exact Shapley limited to {} players",
        CharacteristicFn::EXACT_LIMIT
    );
    if n == 0 {
        return Vec::new();
    }
    let size = 1usize << n;
    // Memoize v over all masks (one pass).
    let mut v = vec![0.0f64; size];
    for (mask, slot) in v.iter_mut().enumerate() {
        *slot = game.value(mask as u64);
    }

    // w[s] = s!(n-s-1)!/n! computed in log-space for stability.
    let ln_fact: Vec<f64> = {
        let mut lf = vec![0.0f64; n + 1];
        for i in 1..=n {
            lf[i] = lf[i - 1] + (i as f64).ln();
        }
        lf
    };
    let weight = |s: usize| -> f64 { (ln_fact[s] + ln_fact[n - s - 1] - ln_fact[n]).exp() };
    let weights: Vec<f64> = (0..n).map(weight).collect();

    let mut phi = vec![0.0f64; n];
    for mask in 0..size {
        let s = (mask as u64).count_ones() as usize;
        for (i, p) in phi.iter_mut().enumerate() {
            if mask & (1 << i) == 0 {
                let with = mask | (1 << i);
                *p += weights[s] * (v[with] - v[mask]);
            }
        }
    }
    phi
}

/// Unbiased Monte-Carlo Shapley via random permutations: sample orderings,
/// average each player's marginal contribution.
pub fn monte_carlo_shapley(
    game: &CharacteristicFn,
    permutations: usize,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let n = game.n();
    if n == 0 || permutations == 0 {
        return vec![0.0; n];
    }
    let mut phi = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..permutations {
        order.shuffle(rng);
        let mut mask = 0u64;
        let mut prev = game.value(0);
        for &i in &order {
            mask |= 1 << i;
            let cur = game.value(mask);
            phi[i] += cur - prev;
            prev = cur;
        }
    }
    for p in &mut phi {
        *p /= permutations as f64;
    }
    phi
}

/// Stratified-sampling Shapley: for each player and each coalition size
/// `s`, sample `samples_per_stratum` random coalitions of that size not
/// containing the player and average marginals per stratum, then average
/// strata uniformly (each size is equally weighted in the Shapley
/// formula). Lower variance than plain permutation sampling for games
/// whose marginals vary strongly with coalition size.
pub fn stratified_shapley(
    game: &CharacteristicFn,
    samples_per_stratum: usize,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let n = game.n();
    if n == 0 || samples_per_stratum == 0 {
        return vec![0.0; n];
    }
    let mut phi = vec![0.0f64; n];
    let others: Vec<usize> = (0..n).collect();
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let mut pool: Vec<usize> = others.iter().copied().filter(|&j| j != i).collect();
        let mut total = 0.0;
        for s in 0..n {
            let mut stratum_sum = 0.0;
            for _ in 0..samples_per_stratum {
                pool.shuffle(rng);
                let mut mask = 0u64;
                for &j in pool.iter().take(s) {
                    mask |= 1 << j;
                }
                stratum_sum += game.value(mask | (1 << i)) - game.value(mask);
            }
            total += stratum_sum / samples_per_stratum as f64;
        }
        phi[i] = total / n as f64;
    }
    phi
}

/// Max absolute error between two allocations (for E4's error-vs-samples
/// sweeps).
pub fn max_abs_error(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Additive game: v(S) = Σ_{i∈S} w_i. Shapley = w exactly.
    fn additive(weights: Vec<f64>) -> CharacteristicFn {
        let n = weights.len();
        CharacteristicFn::new(n, move |mask| {
            weights
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, w)| w)
                .sum()
        })
    }

    /// Glove game: players {0} hold left gloves, {1,2} right gloves;
    /// v(S) = #matched pairs. Known Shapley: (2/3, 1/6, 1/6).
    fn glove() -> CharacteristicFn {
        CharacteristicFn::new(3, |mask| {
            let left = (mask & 1 != 0) as u32;
            let right = (mask >> 1).count_ones();
            left.min(right) as f64
        })
    }

    #[test]
    fn exact_on_additive_game_returns_weights() {
        let phi = exact_shapley(&additive(vec![3.0, 1.0, 2.0]));
        assert!((phi[0] - 3.0).abs() < 1e-9);
        assert!((phi[1] - 1.0).abs() < 1e-9);
        assert!((phi[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn exact_on_glove_game_matches_theory() {
        let phi = exact_shapley(&glove());
        assert!((phi[0] - 2.0 / 3.0).abs() < 1e-9, "{phi:?}");
        assert!((phi[1] - 1.0 / 6.0).abs() < 1e-9);
        assert!((phi[2] - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_axiom_holds() {
        let game = CharacteristicFn::new(6, |mask| {
            // superadditive-ish synthetic game
            let s = mask.count_ones() as f64;
            s * s + if mask & 1 != 0 { 3.0 } else { 0.0 }
        });
        let phi = exact_shapley(&game);
        let total: f64 = phi.iter().sum();
        assert!((total - (game.grand_value() - game.value(0))).abs() < 1e-6);
    }

    #[test]
    fn symmetry_axiom_holds() {
        let phi = exact_shapley(&glove());
        assert!((phi[1] - phi[2]).abs() < 1e-12, "symmetric players equal");
    }

    #[test]
    fn dummy_player_gets_zero() {
        // player 2 contributes nothing
        let game = CharacteristicFn::new(3, |mask| ((mask & 0b011).count_ones()) as f64);
        let phi = exact_shapley(&game);
        assert!(phi[2].abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        let game = glove();
        let exact = exact_shapley(&game);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mc = monte_carlo_shapley(&game, 20_000, &mut rng);
        assert!(max_abs_error(&exact, &mc) < 0.02, "mc {mc:?} vs {exact:?}");
    }

    #[test]
    fn monte_carlo_error_shrinks_with_samples() {
        let game = glove();
        let exact = exact_shapley(&game);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let coarse = monte_carlo_shapley(&game, 50, &mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let fine = monte_carlo_shapley(&game, 50_000, &mut rng);
        assert!(max_abs_error(&exact, &fine) <= max_abs_error(&exact, &coarse));
    }

    #[test]
    fn stratified_converges_too() {
        let game = glove();
        let exact = exact_shapley(&game);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let st = stratified_shapley(&game, 2_000, &mut rng);
        assert!(max_abs_error(&exact, &st) < 0.03, "{st:?}");
    }

    #[test]
    fn monte_carlo_preserves_efficiency_exactly() {
        // Permutation sampling telescopes: every sampled permutation
        // contributes exactly v(N) - v(∅), so the sum is exact.
        let game = glove();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mc = monte_carlo_shapley(&game, 13, &mut rng);
        let total: f64 = mc.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_player_game() {
        let game = CharacteristicFn::new(0, |_| 0.0);
        assert!(exact_shapley(&game).is_empty());
    }

    #[test]
    #[should_panic(expected = "exact Shapley limited")]
    fn exact_rejects_large_games() {
        let game = CharacteristicFn::new(30, |_| 0.0);
        let _ = exact_shapley(&game);
    }
}
