//! The core of a coalitional game — the alternative solution concept the
//! paper cites ("other work suggests using a different metric, the core
//! [102] which is also apt for coalitional games", §8.2).
//!
//! An allocation `x` is in the **core** iff it is efficient
//! (`Σx = v(N)`) and no coalition can profitably defect
//! (`x(S) ≥ v(S)` for all `S`). The core can be empty; the **least core**
//! relaxes the constraints to `x(S) ≥ v(S) − ε` with the smallest
//! feasible `ε`.
//!
//! Implementation: coalition constraints are checked by enumeration
//! (small `n`), and least-core feasibility for a candidate `ε` is decided
//! by Agmon–Motzkin alternating projections onto the violated half-spaces
//! (projecting back onto the efficiency hyperplane each step); `ε` itself
//! is found by bisection. Deterministic and dependency-free, accurate to
//! the requested tolerance on the games the experiments use.

use crate::shapley::CharacteristicFn;

/// Check core membership of an allocation (exact, by enumeration).
pub fn is_in_core(game: &CharacteristicFn, alloc: &[f64], tol: f64) -> bool {
    let n = game.n();
    if alloc.len() != n {
        return false;
    }
    let total: f64 = alloc.iter().sum();
    if (total - game.grand_value()).abs() > tol {
        return false;
    }
    max_violation(game, alloc) <= tol
}

/// The largest coalition-rationality violation `max_S v(S) − x(S)`
/// (0 if none). Exact by enumeration.
pub fn max_violation(game: &CharacteristicFn, alloc: &[f64]) -> f64 {
    let n = game.n();
    let size = 1u64 << n;
    let mut worst: f64 = 0.0;
    for mask in 1..size {
        let xs: f64 = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| alloc[i])
            .sum();
        worst = worst.max(game.value(mask) - xs);
    }
    worst
}

/// Try to find an efficient allocation with `x(S) ≥ v(S) − eps` for all
/// coalitions, via Agmon–Motzkin projections. Returns the allocation on
/// success.
fn feasible_allocation(
    game: &CharacteristicFn,
    eps: f64,
    tol: f64,
    max_iters: usize,
) -> Option<Vec<f64>> {
    let n = game.n();
    let vn = game.grand_value();
    // Start from the uniform efficient allocation.
    let mut x = vec![vn / n as f64; n];
    let size = 1u64 << n;

    for _ in 0..max_iters {
        // Most violated coalition constraint.
        let mut worst_mask = 0u64;
        let mut worst_gap = tol;
        for mask in 1..size - 1 {
            let members = mask.count_ones() as f64;
            let xs: f64 = (0..n).filter(|i| mask & (1 << i) != 0).map(|i| x[i]).sum();
            let gap = (game.value(mask) - eps - xs) / members.sqrt();
            if gap > worst_gap {
                worst_gap = gap;
                worst_mask = mask;
            }
        }
        if worst_mask == 0 {
            return Some(x);
        }
        // Project onto the violated half-space: raise members uniformly…
        let members: Vec<usize> = (0..n).filter(|i| worst_mask & (1 << i) != 0).collect();
        let xs: f64 = members.iter().map(|&i| x[i]).sum();
        let need = game.value(worst_mask) - eps - xs;
        let bump = need / members.len() as f64;
        for &i in &members {
            x[i] += bump;
        }
        // …then restore efficiency by lowering everyone uniformly.
        let excess: f64 = x.iter().sum::<f64>() - vn;
        let cut = excess / n as f64;
        for xi in &mut x {
            *xi -= cut;
        }
    }
    None
}

/// Compute the least core: the smallest `ε` (within `tol`) admitting an
/// efficient allocation with `x(S) ≥ v(S) − ε`, plus such an allocation.
pub fn least_core(game: &CharacteristicFn, tol: f64) -> (Vec<f64>, f64) {
    let n = game.n();
    assert!(
        (1..=16).contains(&n),
        "least core solver targets small games"
    );
    // Upper bound: violation of the uniform allocation.
    let vn = game.grand_value();
    let uniform = vec![vn / n as f64; n];
    let mut hi = max_violation(game, &uniform).max(tol);
    let mut lo = -hi.max(1.0); // the least core ε can be negative (strict core)
    let mut best = (uniform, hi);

    for _ in 0..60 {
        if hi - lo <= tol {
            break;
        }
        let mid = 0.5 * (lo + hi);
        match feasible_allocation(game, mid, tol * 0.1, 8_000) {
            Some(x) => {
                best = (x, mid);
                hi = mid;
            }
            None => {
                lo = mid;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Additive game: core contains exactly the weight vector.
    fn additive(weights: &'static [f64]) -> CharacteristicFn {
        CharacteristicFn::new(weights.len(), move |mask| {
            weights
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, w)| w)
                .sum()
        })
    }

    /// 3-player majority game: v(S) = 1 iff |S| ≥ 2. Empty core; least
    /// core ε = 1/3 at the symmetric allocation.
    fn majority() -> CharacteristicFn {
        CharacteristicFn::new(3, |mask| if mask.count_ones() >= 2 { 1.0 } else { 0.0 })
    }

    #[test]
    fn additive_game_core_membership() {
        let game = additive(&[2.0, 3.0, 5.0]);
        assert!(is_in_core(&game, &[2.0, 3.0, 5.0], 1e-9));
        // shifting value away from player 2 violates {2}'s rationality
        assert!(!is_in_core(&game, &[3.0, 3.0, 4.0], 1e-9));
        // inefficient allocations are never in the core
        assert!(!is_in_core(&game, &[1.0, 1.0, 1.0], 1e-9));
    }

    #[test]
    fn majority_game_core_is_empty() {
        let game = majority();
        // The symmetric allocation violates every 2-coalition by 1/3.
        let x = [1.0 / 3.0; 3];
        assert!(!is_in_core(&game, &x, 1e-9));
        assert!((max_violation(&game, &x) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn least_core_of_majority_is_one_third() {
        let (x, eps) = least_core(&majority(), 1e-4);
        assert!((eps - 1.0 / 3.0).abs() < 5e-3, "eps = {eps}");
        for xi in &x {
            assert!((xi - 1.0 / 3.0).abs() < 0.05, "alloc {x:?}");
        }
    }

    #[test]
    fn least_core_of_additive_is_nonpositive() {
        // The core is non-empty, so the least-core ε ≤ 0.
        let (x, eps) = least_core(&additive(&[1.0, 2.0]), 1e-4);
        assert!(eps <= 1e-3, "eps = {eps}");
        let total: f64 = x.iter().sum();
        assert!((total - 3.0).abs() < 1e-6);
    }

    #[test]
    fn least_core_allocation_is_efficient() {
        let (x, _) = least_core(&majority(), 1e-4);
        let total: f64 = x.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn max_violation_zero_for_generous_allocation() {
        let game = majority();
        // Give everyone 1.0 (inefficient but violates nothing).
        assert_eq!(max_violation(&game, &[1.0, 1.0, 1.0]), 0.0);
    }
}
