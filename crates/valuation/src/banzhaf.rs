//! Banzhaf and leave-one-out values — the "computationally efficient
//! alternatives" direction of §3.2.3.

use rand::Rng;

use crate::shapley::CharacteristicFn;

/// Exact (raw) Banzhaf value: the average marginal contribution over all
/// coalitions of the other players, uniformly weighted (unlike Shapley's
/// size-dependent weights). Enumerates `2^(n-1)` coalitions per player.
pub fn exact_banzhaf(game: &CharacteristicFn) -> Vec<f64> {
    let n = game.n();
    assert!(
        n <= CharacteristicFn::EXACT_LIMIT,
        "exact Banzhaf limited to small games"
    );
    if n == 0 {
        return Vec::new();
    }
    let size = 1u64 << n;
    let mut beta = vec![0.0f64; n];
    let mut counts = vec![0u64; n];
    for mask in 0..size {
        for (i, (b, c)) in beta.iter_mut().zip(counts.iter_mut()).enumerate() {
            if mask & (1 << i) == 0 {
                *b += game.value(mask | (1 << i)) - game.value(mask);
                *c += 1;
            }
        }
    }
    for (b, c) in beta.iter_mut().zip(counts) {
        *b /= c as f64;
    }
    beta
}

/// Monte-Carlo Banzhaf: sample random coalitions (each other player
/// included with probability 1/2).
pub fn monte_carlo_banzhaf(
    game: &CharacteristicFn,
    samples: usize,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let n = game.n();
    if n == 0 || samples == 0 {
        return vec![0.0; n];
    }
    let mut beta = vec![0.0f64; n];
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for _ in 0..samples {
            let mut mask: u64 = rng.gen::<u64>() & (((1u128 << n) - 1) as u64);
            mask &= !(1 << i);
            beta[i] += game.value(mask | (1 << i)) - game.value(mask);
        }
        beta[i] /= samples as f64;
    }
    beta
}

/// Leave-one-out values: `v(N) − v(N∖{i})`. The cheapest marginal-
/// contribution notion (n+1 evaluations total); ignores sub-coalition
/// structure, so complementary datasets are under-credited — E4 contrasts
/// it against Shapley.
pub fn leave_one_out(game: &CharacteristicFn) -> Vec<f64> {
    let n = game.n();
    let grand = ((1u128 << n) - 1) as u64;
    let vn = game.value(grand);
    (0..n).map(|i| vn - game.value(grand & !(1 << i))).collect()
}

/// Normalize an allocation to sum to `total` (e.g. rescale leave-one-out
/// to be budget-balanced). All-zero allocations split uniformly.
pub fn normalize_to(alloc: &[f64], total: f64) -> Vec<f64> {
    let clamped: Vec<f64> = alloc.iter().map(|a| a.max(0.0)).collect();
    let sum: f64 = clamped.iter().sum();
    if sum <= 0.0 {
        let n = alloc.len().max(1);
        return vec![total / n as f64; alloc.len()];
    }
    clamped.iter().map(|a| a / sum * total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn glove() -> CharacteristicFn {
        CharacteristicFn::new(3, |mask| {
            let left = (mask & 1 != 0) as u32;
            let right = (mask >> 1).count_ones();
            left.min(right) as f64
        })
    }

    #[test]
    fn banzhaf_on_glove_game() {
        // Marginals of player 0 (left glove) over coalitions of {1,2}:
        // {}: 0, {1}: 1, {2}: 1, {1,2}: 1 -> 3/4.
        let beta = exact_banzhaf(&glove());
        assert!((beta[0] - 0.75).abs() < 1e-9);
        assert!((beta[1] - 0.25).abs() < 1e-9);
        assert!((beta[2] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn banzhaf_additive_equals_weights() {
        let game = CharacteristicFn::new(4, |mask| mask.count_ones() as f64 * 2.0);
        let beta = exact_banzhaf(&game);
        for b in beta {
            assert!((b - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn monte_carlo_banzhaf_converges() {
        let game = glove();
        let exact = exact_banzhaf(&game);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mc = monte_carlo_banzhaf(&game, 20_000, &mut rng);
        for (e, m) in exact.iter().zip(&mc) {
            assert!((e - m).abs() < 0.02, "{exact:?} vs {mc:?}");
        }
    }

    #[test]
    fn leave_one_out_undercounts_substitutes() {
        // Two identical datasets: each is individually redundant, so LOO
        // gives both zero — while Shapley splits the value evenly. This
        // is the credit-assignment failure E4 demonstrates.
        let game = CharacteristicFn::new(2, |mask| if mask != 0 { 10.0 } else { 0.0 });
        let loo = leave_one_out(&game);
        assert_eq!(loo, vec![0.0, 0.0]);
        let phi = crate::shapley::exact_shapley(&game);
        assert!((phi[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_rescales_to_total() {
        let n = normalize_to(&[1.0, 3.0], 100.0);
        assert!((n[0] - 25.0).abs() < 1e-9);
        assert!((n[1] - 75.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_all_zero_splits_uniformly() {
        let n = normalize_to(&[0.0, 0.0, 0.0, 0.0], 8.0);
        assert_eq!(n, vec![2.0; 4]);
    }

    #[test]
    fn normalize_clamps_negatives() {
        let n = normalize_to(&[-5.0, 5.0], 10.0);
        assert_eq!(n, vec![0.0, 10.0]);
    }
}
