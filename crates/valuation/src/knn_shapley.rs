//! Exact, efficient Shapley values for K-nearest-neighbor utility —
//! "Efficient task-specific data valuation for nearest neighbor
//! algorithms" (Jia et al., VLDB'19; the paper's reference [56]).
//!
//! For the KNN utility
//! `v(S) = (1/K) Σ_{k ≤ min(K,|S|)} 1[ y_{α_k(S)} = y_test ]`
//! (fraction of the K nearest points in `S` that carry the test label),
//! the Shapley value of every training point is computable **exactly** in
//! `O(n log n)` per test point via the recursion
//!
//! ```text
//! s_{α_N}  = 1[y_{α_N} = y] / N
//! s_{α_i}  = s_{α_{i+1}} + (1[y_{α_i}=y] − 1[y_{α_{i+1}}=y]) / K
//!            · min(K, i) / i
//! ```
//!
//! where `α_1..α_N` sorts training points by distance to the test point.
//! This is the "more computationally efficient" alternative family the
//! paper's §3.2.3 asks for, and E4 benchmarks it against enumeration.

/// One labeled training point in feature space.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledPoint {
    /// Feature vector.
    pub x: Vec<f64>,
    /// Class label.
    pub y: i64,
}

impl LabeledPoint {
    /// Construct a point.
    pub fn new(x: Vec<f64>, y: i64) -> Self {
        LabeledPoint { x, y }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum()
}

/// Exact Shapley values of `train` points for the KNN utility on a single
/// test point, via the Jia et al. recursion.
pub fn knn_shapley_single(
    train: &[LabeledPoint],
    test_x: &[f64],
    test_y: i64,
    k: usize,
) -> Vec<f64> {
    let n = train.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.max(1);
    // α: indices sorted by distance ascending (ties by index: stable).
    let mut alpha: Vec<usize> = (0..n).collect();
    alpha.sort_by(|&a, &b| {
        sq_dist(&train[a].x, test_x)
            .total_cmp(&sq_dist(&train[b].x, test_x))
            .then_with(|| a.cmp(&b))
    });

    let match_y = |i: usize| -> f64 {
        if train[i].y == test_y {
            1.0
        } else {
            0.0
        }
    };

    let mut s = vec![0.0f64; n];
    // Farthest point.
    s[alpha[n - 1]] = match_y(alpha[n - 1]) / n as f64;
    // Backward recursion.
    for pos in (0..n - 1).rev() {
        let i = pos + 1; // 1-based rank of alpha[pos]
        let cur = alpha[pos];
        let next = alpha[pos + 1];
        s[cur] = s[next] + (match_y(cur) - match_y(next)) / k as f64 * (k.min(i) as f64 / i as f64);
    }
    s
}

/// Shapley values averaged over a test set (the utility of the full test
/// set is the mean per-point utility, and Shapley is linear).
pub fn knn_shapley(train: &[LabeledPoint], test: &[LabeledPoint], k: usize) -> Vec<f64> {
    let n = train.len();
    let mut total = vec![0.0f64; n];
    if test.is_empty() || n == 0 {
        return total;
    }
    for t in test {
        let s = knn_shapley_single(train, &t.x, t.y, k);
        for (acc, v) in total.iter_mut().zip(s) {
            *acc += v;
        }
    }
    for v in &mut total {
        *v /= test.len() as f64;
    }
    total
}

/// The KNN utility itself, exposed so tests/benches can cross-check the
/// closed form against generic enumeration: `v(S)` = fraction of the K
/// nearest members of `S` whose label matches, averaged over tests.
pub fn knn_utility(
    train: &[LabeledPoint],
    members: &[usize],
    test: &[LabeledPoint],
    k: usize,
) -> f64 {
    if members.is_empty() || test.is_empty() {
        return 0.0;
    }
    let k = k.max(1);
    let mut total = 0.0;
    for t in test {
        let mut order: Vec<usize> = members.to_vec();
        order.sort_by(|&a, &b| {
            sq_dist(&train[a].x, &t.x)
                .total_cmp(&sq_dist(&train[b].x, &t.x))
                .then_with(|| a.cmp(&b))
        });
        let kk = k.min(order.len());
        let hits = order[..kk].iter().filter(|&&i| train[i].y == t.y).count();
        total += hits as f64 / k as f64;
    }
    total / test.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapley::{exact_shapley, CharacteristicFn};

    fn small_train() -> Vec<LabeledPoint> {
        vec![
            LabeledPoint::new(vec![0.0], 0),
            LabeledPoint::new(vec![1.0], 1),
            LabeledPoint::new(vec![2.0], 0),
            LabeledPoint::new(vec![3.0], 1),
            LabeledPoint::new(vec![4.0], 0),
            LabeledPoint::new(vec![5.0], 1),
        ]
    }

    /// The closed form must match brute-force Shapley over the KNN
    /// utility — the strongest possible correctness check.
    #[test]
    fn closed_form_matches_enumeration() {
        let train = small_train();
        let test = vec![
            LabeledPoint::new(vec![0.2], 0),
            LabeledPoint::new(vec![2.8], 1),
        ];
        for k in [1usize, 3] {
            let train_cl = train.clone();
            let test_cl = test.clone();
            let game = CharacteristicFn::new(train.len(), move |mask| {
                let members: Vec<usize> = (0..train_cl.len())
                    .filter(|i| mask & (1 << i) != 0)
                    .collect();
                knn_utility(&train_cl, &members, &test_cl, k)
            });
            let brute = exact_shapley(&game);
            let fast = knn_shapley(&train, &test, k);
            for (b, f) in brute.iter().zip(&fast) {
                assert!(
                    (b - f).abs() < 1e-9,
                    "k={k}: brute {brute:?} vs fast {fast:?}"
                );
            }
        }
    }

    #[test]
    fn efficiency_holds() {
        let train = small_train();
        let test = vec![LabeledPoint::new(vec![1.1], 1)];
        let s = knn_shapley(&train, &test, 3);
        let total: f64 = s.iter().sum();
        let all: Vec<usize> = (0..train.len()).collect();
        let vn = knn_utility(&train, &all, &test, 3);
        assert!((total - vn).abs() < 1e-9);
    }

    #[test]
    fn nearest_matching_point_gets_most_credit() {
        let train = small_train();
        let test = vec![LabeledPoint::new(vec![0.1], 0)];
        let s = knn_shapley(&train, &test, 1);
        let best = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 0, "shapley {s:?}");
    }

    #[test]
    fn wrong_label_neighbors_get_nonpositive_credit() {
        let train = small_train();
        let test = vec![LabeledPoint::new(vec![0.9], 0)];
        let s = knn_shapley(&train, &test, 1);
        // point 1 (x=1.0, label 1) is nearest but mislabeled for this test
        assert!(s[1] <= 1e-12, "{s:?}");
    }

    #[test]
    fn empty_inputs() {
        assert!(knn_shapley(&[], &[], 1).is_empty());
        let train = small_train();
        assert_eq!(knn_shapley(&train, &[], 1), vec![0.0; 6]);
    }

    #[test]
    fn utility_of_full_set_is_knn_accuracy_for_k1() {
        let train = small_train();
        let test = vec![
            LabeledPoint::new(vec![0.1], 0), // NN = pt0 label 0: hit
            LabeledPoint::new(vec![0.9], 0), // NN = pt1 label 1: miss
        ];
        let all: Vec<usize> = (0..train.len()).collect();
        let u = knn_utility(&train, &all, &test, 1);
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scales_to_thousands_quickly() {
        // Smoke: n=2000, 20 tests; must be near-instant (O(n log n) each).
        let train: Vec<LabeledPoint> = (0..2000)
            .map(|i| LabeledPoint::new(vec![i as f64 * 0.01], (i % 2) as i64))
            .collect();
        let test: Vec<LabeledPoint> = (0..20)
            .map(|i| LabeledPoint::new(vec![i as f64], (i % 2) as i64))
            .collect();
        let s = knn_shapley(&train, &test, 5);
        assert_eq!(s.len(), 2000);
        let total: f64 = s.iter().sum();
        assert!(total.is_finite());
    }
}
