//! Property tests for revenue allocation: the Shapley axioms and
//! conservation laws over random coalitional games and random mashups.

use proptest::prelude::*;
use rand::SeedableRng;

use dmp_relation::ops::JoinKind;
use dmp_relation::{DataType, DatasetId, RelationBuilder, Value};
use dmp_valuation::banzhaf::{exact_banzhaf, leave_one_out, normalize_to};
use dmp_valuation::core_solver::{is_in_core, max_violation};
use dmp_valuation::shapley::{exact_shapley, monte_carlo_shapley, CharacteristicFn};
use dmp_valuation::sharing::{share_revenue, total_shared, SharingRule};
use dmp_valuation::RowAllocation;

/// A random monotone game over n players from random per-subset bonuses.
fn random_monotone_game(n: usize, seed: Vec<f64>) -> CharacteristicFn {
    CharacteristicFn::new(n, move |mask| {
        // monotone: sum of per-player weights + pairwise synergies
        let mut v = 0.0;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                v += seed[i % seed.len()].abs();
                for j in (i + 1)..n {
                    if mask & (1 << j) != 0 {
                        v += 0.1 * seed[(i * n + j) % seed.len()].abs();
                    }
                }
            }
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Efficiency: Σφ = v(N) − v(∅) for any game.
    #[test]
    fn shapley_efficiency(n in 1usize..8, seed in prop::collection::vec(0.1f64..5.0, 4..10)) {
        let game = random_monotone_game(n, seed);
        let phi = exact_shapley(&game);
        let total: f64 = phi.iter().sum();
        prop_assert!((total - (game.grand_value() - game.value(0))).abs() < 1e-6);
    }

    /// Monotone games give non-negative Shapley values; Banzhaf too.
    #[test]
    fn monotone_games_nonnegative_values(n in 1usize..7, seed in prop::collection::vec(0.1f64..5.0, 4..10)) {
        let game = random_monotone_game(n, seed);
        for phi in exact_shapley(&game) {
            prop_assert!(phi >= -1e-9);
        }
        for beta in exact_banzhaf(&game) {
            prop_assert!(beta >= -1e-9);
        }
    }

    /// Monte-Carlo preserves efficiency exactly (telescoping sums).
    #[test]
    fn monte_carlo_efficiency_exact(n in 2usize..7, perms in 1usize..50, rng_seed in 0u64..500) {
        let game = random_monotone_game(n, vec![1.0, 2.0, 0.5]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
        let mc = monte_carlo_shapley(&game, perms, &mut rng);
        let total: f64 = mc.iter().sum();
        prop_assert!((total - (game.grand_value() - game.value(0))).abs() < 1e-6);
    }

    /// Additive games: Shapley = LOO = the weights themselves.
    #[test]
    fn additive_game_all_methods_agree(weights in prop::collection::vec(0.0f64..10.0, 1..8)) {
        let w = weights.clone();
        let n = w.len();
        let game = CharacteristicFn::new(n, move |mask| {
            w.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, x)| x).sum()
        });
        let phi = exact_shapley(&game);
        let loo = leave_one_out(&game);
        for i in 0..n {
            prop_assert!((phi[i] - weights[i]).abs() < 1e-6);
            prop_assert!((loo[i] - weights[i]).abs() < 1e-6);
        }
        // and the weight vector is in the core of an additive game
        prop_assert!(is_in_core(&game, &weights, 1e-6));
    }

    /// normalize_to is budget-balanced for any input.
    #[test]
    fn normalization_budget_balanced(alloc in prop::collection::vec(-5.0f64..10.0, 1..10), total in 0.0f64..100.0) {
        let n = normalize_to(&alloc, total);
        let sum: f64 = n.iter().sum();
        prop_assert!((sum - total).abs() < 1e-6);
        for x in n {
            prop_assert!(x >= -1e-12);
        }
    }

    /// max_violation is zero exactly when no coalition is shortchanged.
    #[test]
    fn generous_allocations_have_no_violation(n in 1usize..6) {
        let game = CharacteristicFn::new(n, move |mask| mask.count_ones() as f64);
        // give everyone 2.0 > any marginal need
        let alloc = vec![2.0; n];
        prop_assert_eq!(max_violation(&game, &alloc), 0.0);
    }

    /// Provenance revenue sharing conserves the price for any join shape
    /// and any row weights.
    #[test]
    fn sharing_conserves_price(
        keys_l in prop::collection::vec(0i64..10, 1..20),
        keys_r in prop::collection::vec(0i64..10, 1..20),
        price in 0.1f64..500.0,
    ) {
        let mut lb = RelationBuilder::new("l").column("k", DataType::Int);
        for k in &keys_l {
            lb = lb.row(vec![Value::Int(*k)]);
        }
        let l = lb.source(DatasetId(1)).build().unwrap();
        let mut rb = RelationBuilder::new("r").column("k", DataType::Int);
        for k in &keys_r {
            rb = rb.row(vec![Value::Int(*k)]);
        }
        let r = rb.source(DatasetId(2)).build().unwrap();
        let m = l.join(&r, &[("k", "k")], JoinKind::Inner).unwrap();
        prop_assume!(!m.is_empty());
        for rule in [SharingRule::ProportionalToAtoms, SharingRule::EqualPerDataset] {
            let rows = RowAllocation::by_provenance_size(&m, price);
            let shares = share_revenue(&m, &rows, rule);
            prop_assert!((total_shared(&shares) - price).abs() < 1e-6);
        }
    }
}
