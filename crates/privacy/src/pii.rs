//! PII detection heuristics. The FAQ asks: "What if I am not sure if my
//! dataset is leaking personal information?" — the seller platform scans
//! shared columns for personally identifiable patterns before accepting a
//! registration, and routes flagged datasets through the anonymization /
//! DP pipeline instead.
//!
//! Pattern matchers are hand-rolled scanners (no regex dependency):
//! emails, North-American phone shapes, SSN-like ids, credit-card-like
//! digit runs (Luhn-checked), and IP addresses.

use dmp_relation::{Relation, Value};

/// Kinds of PII the scanner recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PiiKind {
    /// `local@domain.tld`.
    Email,
    /// 10-digit phone numbers with optional separators / +1 prefix.
    Phone,
    /// `ddd-dd-dddd` SSN shape.
    Ssn,
    /// 13–19 digit runs passing the Luhn check.
    CreditCard,
    /// Dotted-quad IPv4.
    IpAddress,
}

/// A PII finding in a column.
#[derive(Debug, Clone, PartialEq)]
pub struct PiiFinding {
    /// Column name.
    pub column: String,
    /// Kind detected.
    pub kind: PiiKind,
    /// Fraction of non-null cells matching.
    pub hit_ratio: f64,
}

/// True iff `s` looks like an email address.
pub fn is_email(s: &str) -> bool {
    let s = s.trim();
    let Some(at) = s.find('@') else { return false };
    let (local, domain) = s.split_at(at);
    let domain = &domain[1..];
    if local.is_empty() || domain.len() < 3 || domain.contains('@') {
        return false;
    }
    let Some(dot) = domain.rfind('.') else {
        return false;
    };
    let tld = &domain[dot + 1..];
    tld.len() >= 2
        && tld.chars().all(|c| c.is_ascii_alphabetic())
        && domain[..dot]
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-')
        && !domain.starts_with('.')
        && local
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "._%+-".contains(c))
}

/// Digits of a string, ignoring separators ` -().+`.
fn digits_only(s: &str) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for c in s.trim().chars() {
        if c.is_ascii_digit() {
            out.push(c as u8 - b'0');
        } else if !" -().+".contains(c) {
            return None;
        }
    }
    Some(out)
}

/// True iff `s` looks like a phone number (10 digits, or 11 with leading 1).
pub fn is_phone(s: &str) -> bool {
    match digits_only(s) {
        Some(d) if d.len() == 10 => true,
        Some(d) if d.len() == 11 && d[0] == 1 => true,
        _ => false,
    }
}

/// True iff `s` matches the `ddd-dd-dddd` SSN shape exactly.
pub fn is_ssn(s: &str) -> bool {
    let s = s.trim();
    let bytes: Vec<char> = s.chars().collect();
    bytes.len() == 11
        && bytes[3] == '-'
        && bytes[6] == '-'
        && bytes.iter().enumerate().all(|(i, c)| {
            if i == 3 || i == 6 {
                *c == '-'
            } else {
                c.is_ascii_digit()
            }
        })
}

/// Luhn checksum over digit slice.
fn luhn_ok(digits: &[u8]) -> bool {
    let mut sum = 0u32;
    for (i, &d) in digits.iter().rev().enumerate() {
        let mut v = d as u32;
        if i % 2 == 1 {
            v *= 2;
            if v > 9 {
                v -= 9;
            }
        }
        sum += v;
    }
    sum.is_multiple_of(10)
}

/// True iff `s` is a 13–19 digit run passing Luhn.
pub fn is_credit_card(s: &str) -> bool {
    match digits_only(s) {
        Some(d) if (13..=19).contains(&d.len()) => luhn_ok(&d),
        _ => false,
    }
}

/// True iff `s` is a dotted-quad IPv4 address.
pub fn is_ipv4(s: &str) -> bool {
    let parts: Vec<&str> = s.trim().split('.').collect();
    parts.len() == 4
        && parts.iter().all(|p| {
            !p.is_empty()
                && p.len() <= 3
                && p.chars().all(|c| c.is_ascii_digit())
                && p.parse::<u32>().map(|v| v <= 255).unwrap_or(false)
        })
}

/// Classify one string cell.
fn classify(s: &str) -> Option<PiiKind> {
    if is_email(s) {
        Some(PiiKind::Email)
    } else if is_ssn(s) {
        Some(PiiKind::Ssn)
    } else if is_credit_card(s) {
        Some(PiiKind::CreditCard)
    } else if is_ipv4(s) {
        Some(PiiKind::IpAddress)
    } else if is_phone(s) {
        Some(PiiKind::Phone)
    } else {
        None
    }
}

/// Scan every string column of a relation; report kinds whose hit ratio
/// exceeds `min_ratio` (a column where 60 % of cells look like emails is
/// an email column; one stray match is not).
pub fn detect_pii(rel: &Relation, min_ratio: f64) -> Vec<PiiFinding> {
    let mut findings = Vec::new();
    for col in rel.schema().names().map(str::to_string).collect::<Vec<_>>() {
        let mut counts: std::collections::HashMap<PiiKind, usize> =
            std::collections::HashMap::new();
        let mut non_null = 0usize;
        for v in rel.column(&col).expect("iterating own schema") {
            if let Value::Str(s) = v {
                non_null += 1;
                if let Some(kind) = classify(s) {
                    *counts.entry(kind).or_insert(0) += 1;
                }
            }
        }
        if non_null == 0 {
            continue;
        }
        let mut kinds: Vec<(PiiKind, usize)> = counts.into_iter().collect();
        kinds.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        for (kind, c) in kinds {
            let ratio = c as f64 / non_null as f64;
            if ratio >= min_ratio {
                findings.push(PiiFinding {
                    column: col.clone(),
                    kind,
                    hit_ratio: ratio,
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::{DataType, RelationBuilder};

    #[test]
    fn email_detection() {
        assert!(is_email("alice@example.com"));
        assert!(is_email("a.b+tag@sub.domain.org"));
        assert!(!is_email("not-an-email"));
        assert!(!is_email("missing@tld"));
        assert!(!is_email("@example.com"));
        assert!(!is_email("two@@example.com"));
    }

    #[test]
    fn phone_detection() {
        assert!(is_phone("555-123-4567"));
        assert!(is_phone("(555) 123 4567"));
        assert!(is_phone("+1 555 123 4567"));
        assert!(!is_phone("12345"));
        assert!(!is_phone("555-123-456x"));
    }

    #[test]
    fn ssn_detection() {
        assert!(is_ssn("123-45-6789"));
        assert!(!is_ssn("123456789"));
        assert!(!is_ssn("123-456-789"));
    }

    #[test]
    fn credit_card_luhn() {
        assert!(is_credit_card("4539 1488 0343 6467")); // Luhn-valid test number
        assert!(!is_credit_card("4539 1488 0343 6468")); // checksum off by one
        assert!(!is_credit_card("1234"));
    }

    #[test]
    fn ipv4_detection() {
        assert!(is_ipv4("192.168.0.1"));
        assert!(!is_ipv4("999.1.1.1"));
        assert!(!is_ipv4("1.2.3"));
        assert!(!is_ipv4("a.b.c.d"));
    }

    #[test]
    fn relation_scan_flags_email_column() {
        let mut b = RelationBuilder::new("users")
            .column("name", DataType::Str)
            .column("contact", DataType::Str);
        for i in 0..20 {
            b = b.row(vec![
                dmp_relation::Value::str(format!("user{i}")),
                dmp_relation::Value::str(format!("user{i}@mail.com")),
            ]);
        }
        let rel = b.build().unwrap();
        let findings = detect_pii(&rel, 0.5);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].column, "contact");
        assert_eq!(findings[0].kind, PiiKind::Email);
        assert!((findings[0].hit_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_matches_below_threshold_ignored() {
        let mut b = RelationBuilder::new("notes").column("text", DataType::Str);
        b = b.row(vec![dmp_relation::Value::str("contact me at x@y.com")]); // not an email cell per se
        for i in 0..19 {
            b = b.row(vec![dmp_relation::Value::str(format!("note {i}"))]);
        }
        let rel = b.build().unwrap();
        assert!(detect_pii(&rel, 0.5).is_empty());
    }

    #[test]
    fn numeric_columns_are_skipped() {
        let rel = RelationBuilder::new("t")
            .column("x", DataType::Int)
            .row(vec![dmp_relation::Value::Int(1234567890)])
            .build()
            .unwrap();
        assert!(detect_pii(&rel, 0.1).is_empty());
    }
}
