//! Per-dataset privacy-budget accounting. Sequential composition: the ε
//! of successive releases adds up; once the seller's declared budget is
//! exhausted, further releases are refused — the guardrail that makes
//! "coordinated between SMP and AMS" release protocols (§4.2) safe when
//! the arbiter combines datasets repeatedly.

use std::collections::HashMap;
use std::fmt;

use parking_lot::Mutex;

use dmp_relation::DatasetId;

/// Budget errors.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetError {
    /// The requested ε exceeds what remains.
    Exhausted {
        /// Requested ε.
        requested: f64,
        /// Remaining ε.
        remaining: f64,
    },
    /// No budget was ever registered for the dataset.
    Unregistered(DatasetId),
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
            BudgetError::Unregistered(d) => write!(f, "no privacy budget registered for {d}"),
        }
    }
}

impl std::error::Error for BudgetError {}

/// Thread-safe ε-budget ledger across datasets.
#[derive(Debug, Default)]
pub struct PrivacyBudget {
    ledgers: Mutex<HashMap<DatasetId, Ledger>>,
}

#[derive(Debug, Clone)]
struct Ledger {
    total: f64,
    spent: f64,
    releases: Vec<f64>,
}

impl PrivacyBudget {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or reset) a dataset's total budget.
    pub fn register(&self, dataset: DatasetId, total_epsilon: f64) {
        self.ledgers.lock().insert(
            dataset,
            Ledger {
                total: total_epsilon.max(0.0),
                spent: 0.0,
                releases: Vec::new(),
            },
        );
    }

    /// Attempt to spend ε on a release. Atomic check-and-spend.
    pub fn spend(&self, dataset: DatasetId, epsilon: f64) -> Result<(), BudgetError> {
        let mut map = self.ledgers.lock();
        let ledger = map
            .get_mut(&dataset)
            .ok_or(BudgetError::Unregistered(dataset))?;
        let remaining = ledger.total - ledger.spent;
        if epsilon > remaining + 1e-12 {
            return Err(BudgetError::Exhausted {
                requested: epsilon,
                remaining,
            });
        }
        ledger.spent += epsilon;
        ledger.releases.push(epsilon);
        Ok(())
    }

    /// Remaining budget (sequential composition), or `None` if
    /// unregistered.
    pub fn remaining(&self, dataset: DatasetId) -> Option<f64> {
        self.ledgers
            .lock()
            .get(&dataset)
            .map(|l| (l.total - l.spent).max(0.0))
    }

    /// Total ε spent so far.
    pub fn spent(&self, dataset: DatasetId) -> Option<f64> {
        self.ledgers.lock().get(&dataset).map(|l| l.spent)
    }

    /// Number of releases performed.
    pub fn release_count(&self, dataset: DatasetId) -> usize {
        self.ledgers
            .lock()
            .get(&dataset)
            .map(|l| l.releases.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spend_within_budget_succeeds() {
        let b = PrivacyBudget::new();
        b.register(DatasetId(1), 1.0);
        assert!(b.spend(DatasetId(1), 0.4).is_ok());
        assert!(b.spend(DatasetId(1), 0.6).is_ok());
        assert!((b.remaining(DatasetId(1)).unwrap()).abs() < 1e-9);
        assert_eq!(b.release_count(DatasetId(1)), 2);
    }

    #[test]
    fn overspend_is_refused_and_does_not_mutate() {
        let b = PrivacyBudget::new();
        b.register(DatasetId(1), 1.0);
        b.spend(DatasetId(1), 0.9).unwrap();
        let err = b.spend(DatasetId(1), 0.2).unwrap_err();
        assert!(matches!(err, BudgetError::Exhausted { .. }));
        assert!((b.spent(DatasetId(1)).unwrap() - 0.9).abs() < 1e-9);
        assert_eq!(b.release_count(DatasetId(1)), 1);
    }

    #[test]
    fn unregistered_dataset_is_an_error() {
        let b = PrivacyBudget::new();
        assert_eq!(
            b.spend(DatasetId(9), 0.1),
            Err(BudgetError::Unregistered(DatasetId(9)))
        );
        assert!(b.remaining(DatasetId(9)).is_none());
    }

    #[test]
    fn reregistration_resets() {
        let b = PrivacyBudget::new();
        b.register(DatasetId(1), 1.0);
        b.spend(DatasetId(1), 1.0).unwrap();
        b.register(DatasetId(1), 2.0);
        assert_eq!(b.remaining(DatasetId(1)), Some(2.0));
        assert_eq!(b.release_count(DatasetId(1)), 0);
    }

    #[test]
    fn concurrent_spends_never_exceed_budget() {
        use std::sync::Arc;
        let b = Arc::new(PrivacyBudget::new());
        b.register(DatasetId(1), 10.0);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0;
                for _ in 0..50 {
                    if b.spend(DatasetId(1), 0.1).is_ok() {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total_ok: i32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total_ok, 100, "exactly 10.0/0.1 spends must succeed");
        assert!(b.remaining(DatasetId(1)).unwrap() < 1e-9);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = BudgetError::Exhausted {
            requested: 0.5,
            remaining: 0.1,
        };
        assert!(e.to_string().contains("0.5"));
        let e = BudgetError::Unregistered(DatasetId(3));
        assert!(e.to_string().contains("d3"));
    }
}
