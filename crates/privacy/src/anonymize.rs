//! k-anonymity style generalization and suppression (§4.2 and [69]'s
//! warning that "datasets may leak information when combined with other
//! datasets — which is precisely what the arbiter will do").
//!
//! A release is k-anonymous over its quasi-identifier columns when every
//! combination of QI values appears in at least `k` rows. We generalize
//! numerics into buckets and truncate strings, escalating the
//! generalization level until the property holds, then suppress any
//! residual under-populated groups.

use std::collections::HashMap;

use dmp_relation::{RelResult, Relation, Value};

/// Outcome of an anonymization pass.
#[derive(Debug, Clone)]
pub struct AnonymizationReport {
    /// The k-anonymous release.
    pub relation: Relation,
    /// Generalization level used per QI column (0 = untouched).
    pub levels: Vec<(String, u32)>,
    /// Rows suppressed to reach the target.
    pub suppressed: usize,
}

/// Generalize a value at a level: numerics bucket to width `10^level`,
/// strings truncate to `max(1, 8 − 2·level)` chars. Level 0 = identity.
fn generalize(v: &Value, level: u32) -> Value {
    if level == 0 {
        return v.clone();
    }
    match v {
        Value::Int(x) => {
            let w = 10i64.pow(level.min(12));
            Value::Int((x.div_euclid(w)) * w)
        }
        Value::Float(x) => {
            let w = 10f64.powi(level as i32);
            Value::Float((x / w).floor() * w)
        }
        Value::Str(s) => {
            let keep = 8usize.saturating_sub(2 * level as usize).max(1);
            Value::str(s.chars().take(keep).collect::<String>())
        }
        other => other.clone(),
    }
}

/// Count the smallest QI-group size of a relation.
fn min_group_size(rel: &Relation, qi_idx: &[usize]) -> usize {
    if rel.is_empty() {
        return usize::MAX;
    }
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    for row in rel.rows() {
        let key: Vec<Value> = qi_idx.iter().map(|&i| row.get(i).clone()).collect();
        *groups.entry(key).or_insert(0) += 1;
    }
    groups.values().copied().min().unwrap_or(usize::MAX)
}

/// Make `rel` k-anonymous over `quasi_identifiers` by escalating
/// generalization (uniformly across QI columns) and suppressing the
/// remaining small groups.
pub fn k_anonymize(
    rel: &Relation,
    quasi_identifiers: &[&str],
    k: usize,
) -> RelResult<AnonymizationReport> {
    let qi_idx: Vec<usize> = quasi_identifiers
        .iter()
        .map(|c| rel.col_index(c))
        .collect::<RelResult<Vec<_>>>()?;
    let k = k.max(1);

    const MAX_LEVEL: u32 = 6;
    let mut level = 0u32;
    let mut current = rel.clone();
    while level < MAX_LEVEL && min_group_size(&current, &qi_idx) < k {
        level += 1;
        current = rel.clone();
        for &col in quasi_identifiers {
            current = current.map_column(col, |v| generalize(v, level))?;
        }
    }

    // Suppress residual small groups.
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    for row in current.rows() {
        let key: Vec<Value> = qi_idx.iter().map(|&i| row.get(i).clone()).collect();
        *groups.entry(key).or_insert(0) += 1;
    }
    let before = current.len();
    let filtered = current.select_fn(|row| {
        let key: Vec<Value> = qi_idx.iter().map(|&i| row.get(i).clone()).collect();
        groups[&key] >= k
    });
    let suppressed = before - filtered.len();

    Ok(AnonymizationReport {
        relation: filtered.named(format!("anon{k}({})", rel.name())),
        levels: quasi_identifiers
            .iter()
            .map(|c| (c.to_string(), level))
            .collect(),
        suppressed,
    })
}

/// Verify k-anonymity of a relation over QI columns.
pub fn is_k_anonymous(rel: &Relation, quasi_identifiers: &[&str], k: usize) -> RelResult<bool> {
    let qi_idx: Vec<usize> = quasi_identifiers
        .iter()
        .map(|c| rel.col_index(c))
        .collect::<RelResult<Vec<_>>>()?;
    Ok(rel.is_empty() || min_group_size(rel, &qi_idx) >= k.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::{DataType, RelationBuilder};

    fn patients() -> Relation {
        let mut b = RelationBuilder::new("patients")
            .column("age", DataType::Int)
            .column("zip", DataType::Str)
            .column("diagnosis", DataType::Str);
        let data = [
            (34, "60615", "flu"),
            (35, "60615", "flu"),
            (36, "60614", "cold"),
            (37, "60614", "flu"),
            (52, "60601", "cold"),
            (53, "60601", "flu"),
            (54, "60601", "flu"),
            (55, "60602", "cold"),
        ];
        for (age, zip, dx) in data {
            b = b.row(vec![Value::Int(age), Value::str(zip), Value::str(dx)]);
        }
        b.build().unwrap()
    }

    #[test]
    fn raw_table_is_not_2_anonymous() {
        let p = patients();
        assert!(!is_k_anonymous(&p, &["age", "zip"], 2).unwrap());
    }

    #[test]
    fn anonymization_reaches_k() {
        let p = patients();
        let report = k_anonymize(&p, &["age", "zip"], 2).unwrap();
        assert!(is_k_anonymous(&report.relation, &["age", "zip"], 2).unwrap());
        // non-QI column untouched
        assert!(report
            .relation
            .column("diagnosis")
            .unwrap()
            .all(|v| matches!(v, Value::Str(_))));
    }

    #[test]
    fn generalization_buckets_numerics() {
        assert_eq!(generalize(&Value::Int(37), 1), Value::Int(30));
        assert_eq!(generalize(&Value::Int(37), 2), Value::Int(0));
        assert_eq!(generalize(&Value::Float(129.0), 1), Value::Float(120.0));
        assert_eq!(generalize(&Value::Int(-7), 1), Value::Int(-10));
    }

    #[test]
    fn generalization_truncates_strings() {
        assert_eq!(generalize(&Value::str("60615"), 1), Value::str("60615")); // fits in 6 chars
        assert_eq!(generalize(&Value::str("60615"), 3), Value::str("60"));
        assert_eq!(generalize(&Value::str("60615"), 6), Value::str("6"));
    }

    #[test]
    fn level_zero_is_identity() {
        let v = Value::str("abc");
        assert_eq!(generalize(&v, 0), v);
    }

    #[test]
    fn suppression_counts_reported() {
        // one singleton that generalization cannot merge stays suppressed
        let mut b = RelationBuilder::new("t").column("qi", DataType::Str);
        for _ in 0..4 {
            b = b.row(vec![Value::str("aaaa")]);
        }
        b = b.row(vec![Value::str("zzzz")]);
        let rel = b.build().unwrap();
        let report = k_anonymize(&rel, &["qi"], 2).unwrap();
        // either generalization merged everything or the singleton went away
        assert!(is_k_anonymous(&report.relation, &["qi"], 2).unwrap());
        assert!(report.relation.len() == 5 || report.suppressed >= 1);
    }

    #[test]
    fn k_one_is_trivially_satisfied() {
        let p = patients();
        let report = k_anonymize(&p, &["age"], 1).unwrap();
        assert_eq!(report.relation.len(), p.len());
        assert_eq!(report.suppressed, 0);
        assert_eq!(report.levels[0].1, 0);
    }

    #[test]
    fn unknown_qi_column_errors() {
        assert!(k_anonymize(&patients(), &["nope"], 2).is_err());
    }

    #[test]
    fn empty_relation_is_anonymous() {
        let empty = RelationBuilder::new("e")
            .column("x", DataType::Int)
            .build()
            .unwrap();
        assert!(is_k_anonymous(&empty, &["x"], 5).unwrap());
    }
}
