//! Differential-privacy mechanisms (§4.2, [38]): Laplace and geometric
//! noise for numeric releases, Gaussian for (ε, δ)-DP, and randomized
//! response for categorical cells. Used by the seller platform to produce
//! safe releases, with the privacy–value trade-off measured in E9.

use rand::Rng;

use dmp_relation::{RelResult, Relation, Value};

/// Parameters of a differentially private release.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpParams {
    /// Privacy budget ε (> 0; smaller = more private).
    pub epsilon: f64,
    /// Query sensitivity Δ (max change from one record).
    pub sensitivity: f64,
}

impl DpParams {
    /// Construct; clamps ε and Δ to positive minima.
    pub fn new(epsilon: f64, sensitivity: f64) -> Self {
        DpParams {
            epsilon: epsilon.max(1e-9),
            sensitivity: sensitivity.max(0.0),
        }
    }

    /// The Laplace scale `b = Δ/ε`.
    pub fn laplace_scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }
}

/// Draw Laplace(0, b) noise by inverse CDF.
pub fn laplace_noise(b: f64, rng: &mut impl Rng) -> f64 {
    if b <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(-0.5..0.5);
    -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// The Laplace mechanism for a scalar query result.
pub fn laplace_mechanism(true_value: f64, params: DpParams, rng: &mut impl Rng) -> f64 {
    true_value + laplace_noise(params.laplace_scale(), rng)
}

/// The geometric mechanism (discrete Laplace) for integer-valued queries:
/// adds two-sided geometric noise with parameter `α = exp(−ε/Δ)`.
pub fn geometric_mechanism(true_value: i64, params: DpParams, rng: &mut impl Rng) -> i64 {
    let alpha = (-params.epsilon / params.sensitivity.max(1e-12)).exp();
    if alpha <= 0.0 || alpha >= 1.0 {
        return true_value;
    }
    // Difference of two geometric variables.
    let draw = |rng: &mut dyn rand::RngCore| -> i64 {
        let u: f64 = rand::Rng::gen::<f64>(rng);
        (u.ln() / alpha.ln()).floor() as i64
    };
    true_value + draw(rng) - draw(rng)
}

/// Gaussian mechanism for (ε, δ)-DP: σ = Δ·√(2 ln(1.25/δ)) / ε.
pub fn gaussian_mechanism(
    true_value: f64,
    params: DpParams,
    delta: f64,
    rng: &mut impl Rng,
) -> f64 {
    let delta = delta.clamp(1e-12, 0.5);
    let sigma = params.sensitivity * (2.0 * (1.25 / delta).ln()).sqrt() / params.epsilon;
    // Box–Muller.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    true_value + sigma * z
}

/// Randomized response for a boolean attribute with budget ε: answer
/// truthfully with probability `e^ε/(e^ε+1)`, else flip. ε-DP for one
/// bit; the workhorse for categorical perturbation.
pub fn randomized_response(truth: bool, epsilon: f64, rng: &mut impl Rng) -> bool {
    let p_truth = epsilon.exp() / (epsilon.exp() + 1.0);
    if rng.gen::<f64>() < p_truth {
        truth
    } else {
        !truth
    }
}

/// Perturb a numeric column of a relation with per-cell Laplace noise —
/// the seller-side "safe release" path. Non-numeric/null cells pass
/// through. Note: per-cell noise of scale Δ/ε gives ε-DP per cell under
/// the bounded-Δ model the seller declares.
pub fn perturb_numeric_column(
    rel: &Relation,
    col: &str,
    params: DpParams,
    rng: &mut impl Rng,
) -> RelResult<Relation> {
    let scale = params.laplace_scale();
    let mut noises: Vec<f64> = Vec::with_capacity(rel.len());
    for _ in 0..rel.len() {
        noises.push(laplace_noise(scale, rng));
    }
    let mut i = 0usize;
    rel.map_column(col, move |v| {
        let out = match v.as_f64() {
            Some(x) => Value::Float(x + noises[i % noises.len().max(1)]),
            None => v.clone(),
        };
        i += 1;
        out
    })
}

/// Estimate the mean absolute perturbation a release at ε would inject —
/// the *expected utility loss* the seller platform reports before asking
/// the seller to confirm a release (E[|Laplace(b)|] = b).
pub fn expected_absolute_noise(params: DpParams) -> f64 {
    params.laplace_scale()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn laplace_noise_is_centered_with_right_spread() {
        let mut r = rng();
        let b = 2.0;
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| laplace_noise(b, &mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mean_abs = samples.iter().map(|x| x.abs()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((mean_abs - b).abs() < 0.05, "E|X| = {mean_abs}, want {b}");
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        let tight = DpParams::new(0.1, 1.0);
        let loose = DpParams::new(10.0, 1.0);
        assert!(tight.laplace_scale() > loose.laplace_scale());
        assert_eq!(expected_absolute_noise(tight), 10.0);
    }

    #[test]
    fn geometric_mechanism_returns_integers_near_truth() {
        let mut r = rng();
        let params = DpParams::new(1.0, 1.0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| geometric_mechanism(100, params, &mut r) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn gaussian_mechanism_centered() {
        let mut r = rng();
        let params = DpParams::new(1.0, 1.0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| gaussian_mechanism(5.0, params, 1e-5, &mut r))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn randomized_response_truth_rate_matches_epsilon() {
        let mut r = rng();
        let eps = 1.0f64;
        let n = 50_000;
        let truthful = (0..n)
            .filter(|_| randomized_response(true, eps, &mut r))
            .count() as f64
            / n as f64;
        let want = eps.exp() / (eps.exp() + 1.0);
        assert!(
            (truthful - want).abs() < 0.01,
            "rate {truthful}, want {want}"
        );
    }

    #[test]
    fn perturb_column_preserves_shape_and_nulls() {
        use dmp_relation::{DataType, RelationBuilder};
        let rel = RelationBuilder::new("t")
            .column("x", DataType::Float)
            .column("s", DataType::Str)
            .row(vec![Value::Float(10.0), Value::str("a")])
            .row(vec![Value::Null, Value::str("b")])
            .build()
            .unwrap();
        let mut r = rng();
        let out = perturb_numeric_column(&rel, "x", DpParams::new(1.0, 1.0), &mut r).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.rows()[1].get(0).is_null(), "nulls pass through");
        assert!(
            out.rows()[0].get(0).as_f64().unwrap() != 10.0,
            "noise applied"
        );
        assert_eq!(out.rows()[0].get(1).as_str(), Some("a"));
    }

    #[test]
    fn high_epsilon_perturbation_is_small() {
        use dmp_relation::{DataType, RelationBuilder};
        let mut b = RelationBuilder::new("t").column("x", DataType::Float);
        for i in 0..200 {
            b = b.row(vec![Value::Float(i as f64)]);
        }
        let rel = b.build().unwrap();
        let mut r = rng();
        let out = perturb_numeric_column(&rel, "x", DpParams::new(100.0, 1.0), &mut r).unwrap();
        let max_err = rel
            .column_f64("x")
            .unwrap()
            .iter()
            .zip(out.column_f64("x").unwrap())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_err < 0.5, "max err {max_err}");
    }

    #[test]
    fn params_clamp_degenerate_inputs() {
        let p = DpParams::new(0.0, -1.0);
        assert!(p.epsilon > 0.0);
        assert_eq!(p.sensitivity, 0.0);
        assert_eq!(p.laplace_scale(), 0.0);
        let mut r = rng();
        assert_eq!(laplace_noise(0.0, &mut r), 0.0);
    }
}
