//! # dmp-privacy
//!
//! Statistical database privacy for the seller platform (paper §4.2;
//! DESIGN.md S14): "the SMP must incorporate some support for the safe
//! release of such sensitive datasets", coordinated with the arbiter, with
//! the key open question being "a good balance between protection and
//! profit" — the privacy–value curve that experiment E9 measures.
//!
//! * [`dp`] — Laplace, geometric and Gaussian mechanisms plus randomized
//!   response, over relations and scalar queries;
//! * [`budget`] — per-dataset ε-budget ledgers with sequential
//!   composition and budget-exceeded refusal;
//! * [`anonymize`] — k-anonymity style generalization and suppression;
//! * [`pii`] — PII detection heuristics (emails, phones, SSN-like ids)
//!   that gate what sellers may share (FAQ: "What if I am not sure if my
//!   dataset is leaking personal information?").

pub mod anonymize;
pub mod budget;
pub mod dp;
pub mod pii;

pub use budget::{BudgetError, PrivacyBudget};
pub use dp::{laplace_mechanism, perturb_numeric_column, DpParams};
pub use pii::{detect_pii, PiiKind};
