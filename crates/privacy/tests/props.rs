//! Property tests for the privacy substrate: budgets never overspend,
//! anonymization postconditions hold, and detectors never crash on
//! arbitrary strings.

use proptest::prelude::*;
use rand::SeedableRng;

use dmp_privacy::anonymize::{is_k_anonymous, k_anonymize};
use dmp_privacy::budget::PrivacyBudget;
use dmp_privacy::dp::{laplace_mechanism, randomized_response, DpParams};
use dmp_privacy::pii::{is_credit_card, is_email, is_ipv4, is_phone, is_ssn};
use dmp_relation::{DataType, DatasetId, RelationBuilder, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The budget ledger never lets cumulative spend exceed the total,
    /// for any sequence of requests.
    #[test]
    fn budget_never_overspends(total in 0.0f64..10.0, requests in prop::collection::vec(0.0f64..3.0, 1..20)) {
        let b = PrivacyBudget::new();
        b.register(DatasetId(1), total);
        let mut spent = 0.0;
        for r in requests {
            if b.spend(DatasetId(1), r).is_ok() {
                spent += r;
            }
        }
        prop_assert!(spent <= total + 1e-9);
        prop_assert!((b.spent(DatasetId(1)).unwrap() - spent).abs() < 1e-9);
    }

    /// Laplace noise is finite and zero-scale is exact.
    #[test]
    fn laplace_is_finite(v in -1e6f64..1e6, eps in 0.01f64..10.0, seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = laplace_mechanism(v, DpParams::new(eps, 1.0), &mut rng);
        prop_assert!(out.is_finite());
        let exact = laplace_mechanism(v, DpParams::new(eps, 0.0), &mut rng);
        prop_assert_eq!(exact, v);
    }

    /// Randomized response returns a boolean with the right bias
    /// direction: truth is always at least as likely as the flip.
    #[test]
    fn randomized_response_biased_to_truth(eps in 0.0f64..5.0, seed in 0u64..100) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 2000;
        let truthful = (0..n).filter(|_| randomized_response(true, eps, &mut rng)).count();
        prop_assert!(truthful as f64 >= n as f64 * 0.40, "eps={eps} truthful={truthful}");
    }

    /// k_anonymize postcondition: the output *is* k-anonymous, for any
    /// input table and k.
    #[test]
    fn k_anonymize_postcondition(
        ages in prop::collection::vec(0i64..100, 1..40),
        k in 1usize..6,
    ) {
        let mut b = RelationBuilder::new("t").column("age", DataType::Int);
        for a in &ages {
            b = b.row(vec![Value::Int(*a)]);
        }
        let rel = b.build().unwrap();
        let report = k_anonymize(&rel, &["age"], k).unwrap();
        prop_assert!(is_k_anonymous(&report.relation, &["age"], k).unwrap());
        prop_assert!(report.relation.len() + report.suppressed <= rel.len() + report.suppressed);
    }

    /// PII detectors never panic and are mutually exclusive enough that
    /// a plain alphabetic token matches nothing.
    #[test]
    fn pii_detectors_total(s in "[a-zA-Z]{1,20}") {
        prop_assert!(!is_email(&s) || s.contains('@'));
        prop_assert!(!is_phone(&s));
        prop_assert!(!is_ssn(&s));
        prop_assert!(!is_credit_card(&s));
        prop_assert!(!is_ipv4(&s));
    }

    /// Arbitrary unicode never panics any detector.
    #[test]
    fn pii_detectors_handle_arbitrary_input(s in "\\PC*") {
        let _ = is_email(&s);
        let _ = is_phone(&s);
        let _ = is_ssn(&s);
        let _ = is_credit_card(&s);
        let _ = is_ipv4(&s);
    }
}
