//! Property tests for tasks: satisfaction is always a valid probability,
//! evaluation is deterministic, and the generators are well-formed.

use proptest::prelude::*;

use dmp_relation::{DataType, RelationBuilder, Value};
use dmp_tasks::classifier::ClassifierTask;
use dmp_tasks::query_task::QueryCompletenessTask;
use dmp_tasks::regression::RegressionTask;
use dmp_tasks::report::CoverageTask;
use dmp_tasks::synth::{gaussian_blobs, linear_data};
use dmp_tasks::Task;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every task's satisfaction is in [0, 1] on arbitrary labeled data.
    #[test]
    fn satisfaction_is_probability(
        rows in prop::collection::vec((0i64..2, -10.0f64..10.0, -10.0f64..10.0), 0..60),
    ) {
        let mut b = RelationBuilder::new("t")
            .column("label", DataType::Int)
            .column("x", DataType::Float)
            .column("y", DataType::Float);
        for (l, x, y) in rows {
            b = b.row(vec![Value::Int(l), Value::Float(x), Value::Float(y)]);
        }
        let rel = b.build().unwrap();
        let tasks: Vec<Box<dyn Task>> = vec![
            Box::new(ClassifierTask::logistic("label")),
            Box::new(ClassifierTask::nearest_centroid("label")),
            Box::new(RegressionTask::new("x")),
            Box::new(QueryCompletenessTask::new("label", 2)),
            Box::new(CoverageTask::new(["label", "x", "zzz"])),
        ];
        for task in tasks {
            let s = task.evaluate(&rel).value();
            prop_assert!((0.0..=1.0).contains(&s), "{} -> {s}", task.name());
        }
    }

    /// Evaluation is deterministic (audit requirement of §3.2.2.2).
    #[test]
    fn evaluation_is_deterministic(n in 20usize..200, sep in 0.1f64..3.0, seed in 0u64..100) {
        let rel = gaussian_blobs(n, 2, sep, seed);
        let task = ClassifierTask::logistic("label");
        prop_assert_eq!(task.evaluate(&rel).value(), task.evaluate(&rel).value());
    }

    /// More separation never makes the (deterministic) classifier much
    /// worse: accuracy at sep+2 ≥ accuracy at sep − 0.15 slack.
    #[test]
    fn separation_helps_classification(seed in 0u64..50) {
        let hard = gaussian_blobs(300, 2, 0.3, seed);
        let easy = gaussian_blobs(300, 2, 2.8, seed);
        let task = ClassifierTask::logistic("label");
        let (h, e) = (task.evaluate(&hard).value(), task.evaluate(&easy).value());
        prop_assert!(e >= h - 0.15, "easy {e} vs hard {h}");
    }

    /// linear_data's target is reconstructible: R² near 1 at low noise.
    #[test]
    fn linear_generator_is_learnable(seed in 0u64..50, d in 1usize..5) {
        let rel = linear_data(200, d, 0.01, seed);
        let r2 = RegressionTask::new("target").evaluate(&rel).value();
        prop_assert!(r2 > 0.9, "R² {r2}");
    }

    /// Coverage task satisfaction scales with present attributes.
    #[test]
    fn coverage_counts_attributes(present in 0usize..4) {
        let all = ["a", "b", "c", "d"];
        let mut b = RelationBuilder::new("t");
        for col in all.iter().take(present.max(1)) {
            b = b.column(*col, DataType::Int);
        }
        b = b.row(vec![Value::Int(1); present.max(1)]);
        let rel = b.build().unwrap();
        let s = CoverageTask::new(all).evaluate(&rel).value();
        prop_assert!((s - present.max(1) as f64 / 4.0).abs() < 1e-9);
    }
}
