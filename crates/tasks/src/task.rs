//! The task abstraction: a WTP-function's "package" component made
//! executable. The WTP-Evaluator runs `evaluate` on each candidate mashup
//! and maps the resulting satisfaction through the buyer's price curve.

use dmp_relation::Relation;

/// Degree of satisfaction in [0, 1] (§3.2.2.1: "a metric to measure the
/// degree of satisfaction that a dataset achieves for a given task").
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Satisfaction(f64);

impl Satisfaction {
    /// Construct, clamping into [0, 1].
    pub fn new(v: f64) -> Self {
        Satisfaction(if v.is_nan() { 0.0 } else { v.clamp(0.0, 1.0) })
    }

    /// Zero satisfaction.
    pub fn zero() -> Self {
        Satisfaction(0.0)
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl From<f64> for Satisfaction {
    fn from(v: f64) -> Self {
        Satisfaction::new(v)
    }
}

/// An executable data task. Implementations must be deterministic given
/// their configured seed, so the arbiter can re-run them for audits (the
/// ex post mechanism of §3.2.2.2 depends on that).
pub trait Task: Send + Sync {
    /// A short human-readable name for logs and receipts.
    fn name(&self) -> &str;

    /// Run the task against a candidate mashup and measure satisfaction.
    fn evaluate(&self, mashup: &Relation) -> Satisfaction;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(Satisfaction::new(1.5).value(), 1.0);
        assert_eq!(Satisfaction::new(-0.2).value(), 0.0);
        assert_eq!(Satisfaction::new(f64::NAN).value(), 0.0);
        assert_eq!(Satisfaction::from(0.5).value(), 0.5);
    }

    #[test]
    fn zero_is_zero() {
        assert_eq!(Satisfaction::zero().value(), 0.0);
    }

    struct Fixed(f64);
    impl Task for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn evaluate(&self, _: &Relation) -> Satisfaction {
            Satisfaction::new(self.0)
        }
    }

    #[test]
    fn trait_objects_work() {
        use dmp_relation::{DataType, RelationBuilder};
        let rel = RelationBuilder::new("t")
            .column("x", DataType::Int)
            .build()
            .unwrap();
        let task: Box<dyn Task> = Box::new(Fixed(0.7));
        assert_eq!(task.evaluate(&rel).value(), 0.7);
        assert_eq!(task.name(), "fixed");
    }
}
