//! Relational query tasks scored by completeness — "a relational query
//! may benefit from notions of completeness borrowed from the approximate
//! query processing literature" (§3.2.2.1, citing VerdictDB [75]).

use dmp_relation::expr::Expr;
use dmp_relation::Relation;

use crate::task::{Satisfaction, Task};

/// A group-by query whose satisfaction is *group coverage*: the fraction
/// of the buyer's expected distinct groups that the mashup actually
/// contains (optionally after a filter), weighted by a minimum support
/// per group.
#[derive(Debug, Clone)]
pub struct QueryCompletenessTask {
    /// Group-by column.
    pub group_by: String,
    /// How many distinct groups the buyer expects (e.g. 50 US states).
    pub expected_groups: usize,
    /// Rows required per group for it to count as covered.
    pub min_support: usize,
    /// Optional row filter applied before grouping.
    pub filter: Option<Expr>,
}

impl QueryCompletenessTask {
    /// Coverage task over a group column.
    pub fn new(group_by: impl Into<String>, expected_groups: usize) -> Self {
        QueryCompletenessTask {
            group_by: group_by.into(),
            expected_groups: expected_groups.max(1),
            min_support: 1,
            filter: None,
        }
    }

    /// Require `n` rows per group.
    pub fn with_min_support(mut self, n: usize) -> Self {
        self.min_support = n.max(1);
        self
    }

    /// Filter rows first.
    pub fn with_filter(mut self, filter: Expr) -> Self {
        self.filter = Some(filter);
        self
    }

    /// The number of covered groups.
    pub fn covered_groups(&self, mashup: &Relation) -> Option<usize> {
        let filtered = match &self.filter {
            Some(f) => mashup.select(f).ok()?,
            None => mashup.clone(),
        };
        let idx = filtered.col_index(&self.group_by).ok()?;
        let mut counts: std::collections::HashMap<dmp_relation::Value, usize> =
            std::collections::HashMap::new();
        for row in filtered.rows() {
            let v = row.get(idx);
            if !v.is_null() {
                *counts.entry(v.clone()).or_insert(0) += 1;
            }
        }
        Some(counts.values().filter(|&&c| c >= self.min_support).count())
    }
}

impl Task for QueryCompletenessTask {
    fn name(&self) -> &str {
        "query-completeness"
    }

    fn evaluate(&self, mashup: &Relation) -> Satisfaction {
        match self.covered_groups(mashup) {
            Some(covered) => Satisfaction::new(covered as f64 / self.expected_groups as f64),
            None => Satisfaction::zero(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::{DataType, RelationBuilder, Value};

    fn regions(names: &[&str], rows_each: usize) -> Relation {
        let mut b = RelationBuilder::new("t")
            .column("region", DataType::Str)
            .column("sales", DataType::Int);
        for name in names {
            for i in 0..rows_each {
                b = b.row(vec![Value::str(*name), Value::Int(i as i64)]);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn full_coverage_is_one() {
        let rel = regions(&["eu", "us", "ap"], 5);
        let t = QueryCompletenessTask::new("region", 3);
        assert_eq!(t.evaluate(&rel).value(), 1.0);
    }

    #[test]
    fn partial_coverage_is_proportional() {
        let rel = regions(&["eu", "us"], 5);
        let t = QueryCompletenessTask::new("region", 4);
        assert_eq!(t.evaluate(&rel).value(), 0.5);
    }

    #[test]
    fn min_support_discounts_thin_groups() {
        let mut rel = regions(&["eu"], 5);
        // add a region with a single row
        rel.push_values(vec![Value::str("ap"), Value::Int(0)])
            .unwrap();
        let t = QueryCompletenessTask::new("region", 2).with_min_support(3);
        assert_eq!(t.evaluate(&rel).value(), 0.5);
    }

    #[test]
    fn filter_applies_before_grouping() {
        let rel = regions(&["eu", "us"], 5);
        let t = QueryCompletenessTask::new("region", 2)
            .with_filter(Expr::col("sales").ge(Expr::lit(100)));
        assert_eq!(t.evaluate(&rel).value(), 0.0, "filter removes everything");
    }

    #[test]
    fn missing_group_column_zero() {
        let rel = regions(&["eu"], 2);
        let t = QueryCompletenessTask::new("state", 50);
        assert_eq!(t.evaluate(&rel).value(), 0.0);
    }

    #[test]
    fn more_groups_than_expected_clamps_to_one() {
        let rel = regions(&["a", "b", "c", "d"], 2);
        let t = QueryCompletenessTask::new("region", 2);
        assert_eq!(t.evaluate(&rel).value(), 1.0);
    }

    #[test]
    fn nulls_do_not_count_as_groups() {
        let mut rel = regions(&["eu"], 2);
        rel.push_values(vec![Value::Null, Value::Int(0)]).unwrap();
        let t = QueryCompletenessTask::new("region", 2);
        assert_eq!(t.evaluate(&rel).value(), 0.5);
    }
}
