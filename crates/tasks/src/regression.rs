//! OLS regression task: satisfaction is held-out R², clamped to [0, 1].
//! Solved by normal equations with a small ridge term (no external linear
//! algebra dependency).

use rand::seq::SliceRandom;
use rand::SeedableRng;

use dmp_relation::Relation;

use crate::task::{Satisfaction, Task};

/// Solve `(XᵀX + λI) w = Xᵀy` by Gaussian elimination with partial
/// pivoting. `xs` rows are feature vectors *without* the bias column;
/// the function appends it.
pub fn ridge_fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Option<Vec<f64>> {
    let n = xs.len();
    if n == 0 || n != ys.len() {
        return None;
    }
    let d = xs[0].len() + 1; // + bias
    let aug = |x: &Vec<f64>| -> Vec<f64> {
        let mut v = x.clone();
        v.push(1.0);
        v
    };
    // Build normal equations.
    let mut a = vec![vec![0.0f64; d + 1]; d]; // [A | b]
    for (x, &y) in xs.iter().zip(ys) {
        let xa = aug(x);
        for i in 0..d {
            for j in 0..d {
                a[i][j] += xa[i] * xa[j];
            }
            a[i][d] += xa[i] * y;
        }
    }
    for (i, row) in a.iter_mut().enumerate().take(d) {
        row[i] += lambda;
    }
    // Gaussian elimination with partial pivoting.
    #[allow(clippy::needless_range_loop)]
    for col in 0..d {
        let pivot = (col..d).max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        let div = a[col][col];
        for j in col..=d {
            a[col][j] /= div;
        }
        for row in 0..d {
            if row != col {
                let factor = a[row][col];
                if factor != 0.0 {
                    for j in col..=d {
                        a[row][j] -= factor * a[col][j];
                    }
                }
            }
        }
    }
    Some(a.iter().map(|row| row[d]).collect())
}

/// Predict with weights from [`ridge_fit`] (bias last).
pub fn predict(weights: &[f64], x: &[f64]) -> f64 {
    let d = weights.len() - 1;
    x.iter()
        .take(d)
        .zip(&weights[..d])
        .map(|(xi, wi)| xi * wi)
        .sum::<f64>()
        + weights[d]
}

/// The regression task: fit on a split, score held-out R².
#[derive(Debug, Clone)]
pub struct RegressionTask {
    /// Target column.
    pub target: String,
    /// Held-out fraction.
    pub test_fraction: f64,
    /// Split seed.
    pub seed: u64,
    /// Ridge regularization strength.
    pub lambda: f64,
}

impl RegressionTask {
    /// Default task for a target column.
    pub fn new(target: impl Into<String>) -> Self {
        RegressionTask {
            target: target.into(),
            test_fraction: 0.3,
            seed: 23,
            lambda: 1e-6,
        }
    }

    /// Raw held-out R² (can be negative for a useless model).
    pub fn r_squared(&self, mashup: &Relation) -> Option<f64> {
        let target_idx = mashup.col_index(&self.target).ok()?;
        let feature_idx: Vec<usize> = mashup
            .schema()
            .fields()
            .iter()
            .enumerate()
            .filter(|(i, f)| *i != target_idx && f.dtype().is_numeric())
            .map(|(i, _)| i)
            .collect();
        if feature_idx.is_empty() {
            return None;
        }
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for row in mashup.rows() {
            let y = match row.get(target_idx).as_f64() {
                Some(v) => v,
                None => continue,
            };
            let x: Option<Vec<f64>> = feature_idx.iter().map(|&i| row.get(i).as_f64()).collect();
            if let Some(x) = x {
                xs.push(x);
                ys.push(y);
            }
        }
        if xs.len() < 10 {
            return None;
        }
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        idx.shuffle(&mut rng);
        let n_test =
            (((xs.len() as f64) * self.test_fraction).round() as usize).clamp(1, xs.len() - 2);
        let (test_idx, train_idx) = idx.split_at(n_test);
        let train_x: Vec<Vec<f64>> = train_idx.iter().map(|&i| xs[i].clone()).collect();
        let train_y: Vec<f64> = train_idx.iter().map(|&i| ys[i]).collect();
        let w = ridge_fit(&train_x, &train_y, self.lambda)?;

        let mean_y: f64 = test_idx.iter().map(|&i| ys[i]).sum::<f64>() / test_idx.len() as f64;
        let ss_tot: f64 = test_idx.iter().map(|&i| (ys[i] - mean_y).powi(2)).sum();
        let ss_res: f64 = test_idx
            .iter()
            .map(|&i| (ys[i] - predict(&w, &xs[i])).powi(2))
            .sum();
        if ss_tot < 1e-12 {
            return Some(if ss_res < 1e-9 { 1.0 } else { 0.0 });
        }
        Some(1.0 - ss_res / ss_tot)
    }
}

impl Task for RegressionTask {
    fn name(&self) -> &str {
        "regression"
    }

    fn evaluate(&self, mashup: &Relation) -> Satisfaction {
        match self.r_squared(mashup) {
            Some(r2) => Satisfaction::new(r2),
            None => Satisfaction::zero(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::linear_data;

    #[test]
    fn ridge_recovers_known_coefficients() {
        // y = 2x0 - 3x1 + 5
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64 * 0.1, (i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - 3.0 * x[1] + 5.0).collect();
        let w = ridge_fit(&xs, &ys, 1e-9).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-4, "{w:?}");
        assert!((w[1] + 3.0).abs() < 1e-4);
        assert!((w[2] - 5.0).abs() < 1e-3);
    }

    #[test]
    fn clean_linear_data_near_perfect_r2() {
        let rel = linear_data(300, 3, 0.01, 7);
        let s = RegressionTask::new("target").evaluate(&rel);
        assert!(s.value() > 0.95, "R² = {}", s.value());
    }

    #[test]
    fn noise_degrades_r2_monotonically() {
        let clean = linear_data(300, 3, 0.05, 7);
        let noisy = linear_data(300, 3, 5.0, 7);
        let t = RegressionTask::new("target");
        assert!(t.evaluate(&clean).value() > t.evaluate(&noisy).value());
    }

    #[test]
    fn missing_target_zero() {
        let rel = linear_data(100, 2, 0.1, 1);
        assert_eq!(RegressionTask::new("nope").evaluate(&rel).value(), 0.0);
    }

    #[test]
    fn singular_system_detected() {
        // all-zero features with zero ridge -> singular
        let xs = vec![vec![0.0]; 20];
        let ys = vec![1.0; 20];
        assert!(ridge_fit(&xs, &ys, 0.0).is_none());
        // ridge rescues it
        assert!(ridge_fit(&xs, &ys, 1e-3).is_some());
    }

    #[test]
    fn predict_uses_bias() {
        let w = vec![2.0, 1.0]; // y = 2x + 1
        assert!((predict(&w, &[3.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_none() {
        assert!(ridge_fit(&[], &[], 0.1).is_none());
    }
}
