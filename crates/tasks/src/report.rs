//! Report-style tasks: attribute coverage and volume. These back the
//! plain data-acquisition WTP-functions ("I need a table with these
//! columns, reasonably complete") that don't train any model.

use dmp_relation::Relation;

use crate::task::{Satisfaction, Task};

/// Satisfaction = (fraction of required attributes present with null
/// ratio ≤ `max_missing`) × (row-count factor capped at 1).
#[derive(Debug, Clone)]
pub struct CoverageTask {
    /// Required attribute names.
    pub attributes: Vec<String>,
    /// Maximum tolerated null ratio per attribute.
    pub max_missing: f64,
    /// Rows at which the volume factor saturates.
    pub target_rows: usize,
}

impl CoverageTask {
    /// Coverage over attributes with defaults (10 % nulls, 1 row).
    pub fn new<S: Into<String>>(attributes: impl IntoIterator<Item = S>) -> Self {
        CoverageTask {
            attributes: attributes.into_iter().map(Into::into).collect(),
            max_missing: 0.1,
            target_rows: 1,
        }
    }

    /// Require at least `rows` rows for full satisfaction.
    pub fn with_target_rows(mut self, rows: usize) -> Self {
        self.target_rows = rows.max(1);
        self
    }

    /// Tolerate `ratio` nulls per column.
    pub fn with_max_missing(mut self, ratio: f64) -> Self {
        self.max_missing = ratio.clamp(0.0, 1.0);
        self
    }
}

impl Task for CoverageTask {
    fn name(&self) -> &str {
        "coverage"
    }

    fn evaluate(&self, mashup: &Relation) -> Satisfaction {
        if self.attributes.is_empty() {
            return Satisfaction::new(1.0);
        }
        let mut covered = 0usize;
        for attr in &self.attributes {
            if mashup.schema().contains(attr)
                && mashup.null_ratio(attr).unwrap_or(1.0) <= self.max_missing
            {
                covered += 1;
            }
        }
        let attr_frac = covered as f64 / self.attributes.len() as f64;
        let volume = (mashup.len() as f64 / self.target_rows as f64).min(1.0);
        Satisfaction::new(attr_frac * volume)
    }
}

/// Freshness task: satisfaction decays linearly with the relation's age
/// relative to a horizon. Age is supplied externally (the arbiter knows
/// registration times; relations don't carry wall-clock).
#[derive(Debug, Clone)]
pub struct FreshnessScore {
    /// Age (logical ticks) at which satisfaction reaches zero.
    pub horizon: u64,
}

impl FreshnessScore {
    /// Score an age.
    pub fn score(&self, age: u64) -> Satisfaction {
        if self.horizon == 0 {
            return Satisfaction::new(if age == 0 { 1.0 } else { 0.0 });
        }
        Satisfaction::new(1.0 - age as f64 / self.horizon as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_relation::{DataType, RelationBuilder, Value};

    fn rel(null_every: usize, rows: usize) -> Relation {
        let mut b = RelationBuilder::new("t")
            .column("a", DataType::Int)
            .column("b", DataType::Str);
        for i in 0..rows {
            b = b.row(vec![
                if null_every > 0 && i % null_every == 0 {
                    Value::Null
                } else {
                    Value::Int(i as i64)
                },
                Value::str("x"),
            ]);
        }
        b.build().unwrap()
    }

    #[test]
    fn full_coverage_full_volume() {
        let t = CoverageTask::new(["a", "b"]);
        assert_eq!(t.evaluate(&rel(0, 10)).value(), 1.0);
    }

    #[test]
    fn missing_attribute_halves() {
        let t = CoverageTask::new(["a", "zz"]);
        assert_eq!(t.evaluate(&rel(0, 10)).value(), 0.5);
    }

    #[test]
    fn nulls_past_threshold_drop_attribute() {
        let t = CoverageTask::new(["a"]).with_max_missing(0.05);
        // every 2nd row null: 50% nulls > 5%
        assert_eq!(t.evaluate(&rel(2, 10)).value(), 0.0);
        let lenient = CoverageTask::new(["a"]).with_max_missing(0.6);
        assert_eq!(lenient.evaluate(&rel(2, 10)).value(), 1.0);
    }

    #[test]
    fn volume_scales_linearly_up_to_target() {
        let t = CoverageTask::new(["a"]).with_target_rows(20);
        assert_eq!(t.evaluate(&rel(0, 10)).value(), 0.5);
        assert_eq!(t.evaluate(&rel(0, 40)).value(), 1.0);
    }

    #[test]
    fn empty_attribute_list_trivially_satisfied() {
        let t = CoverageTask::new(Vec::<String>::new());
        assert_eq!(t.evaluate(&rel(0, 1)).value(), 1.0);
    }

    #[test]
    fn freshness_decays() {
        let f = FreshnessScore { horizon: 100 };
        assert_eq!(f.score(0).value(), 1.0);
        assert_eq!(f.score(50).value(), 0.5);
        assert_eq!(f.score(200).value(), 0.0);
        let strict = FreshnessScore { horizon: 0 };
        assert_eq!(strict.score(0).value(), 1.0);
        assert_eq!(strict.score(1).value(), 0.0);
    }
}
