//! # dmp-tasks
//!
//! Data tasks and satisfaction metrics (paper §3.2.2.1; DESIGN.md S20).
//! A WTP-function ships "a package that includes the data task that buyers
//! want to solve. For example, the code to train an ML classifier", plus
//! "a metric to measure the degree of satisfaction". The WTP-Evaluator
//! runs the task on each candidate mashup and maps satisfaction to money.
//!
//! Tasks implement [`Task`]: `evaluate(&Relation) -> satisfaction ∈ [0,1]`.
//!
//! * [`classifier`] — from-scratch logistic regression and
//!   nearest-centroid classifiers with train/test accuracy;
//! * [`regression`] — OLS linear regression with R²;
//! * [`query_task`] — relational query tasks scored by AQP-style
//!   completeness (group coverage) [75];
//! * [`report`] — coverage / freshness report tasks;
//! * [`synth`] — synthetic labeled-data generators, including the intro
//!   example's feature split across sellers.

pub mod classifier;
pub mod query_task;
pub mod regression;
pub mod report;
pub mod synth;
pub mod task;

pub use classifier::{ClassifierTask, LogisticRegression, NearestCentroid};
pub use query_task::QueryCompletenessTask;
pub use regression::RegressionTask;
pub use task::{Satisfaction, Task};
