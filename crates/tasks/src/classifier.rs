//! From-scratch classifiers for WTP evaluation: the paper's running
//! example is a buyer who "wants to build a machine learning classifier
//! [with] at least an accuracy of 80% for the responsible engineer to
//! trust the classifier" (§1). The satisfaction metric is held-out
//! accuracy on the candidate mashup.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use dmp_relation::{Relation, Value};

use crate::task::{Satisfaction, Task};

/// A dense numeric dataset extracted from a relation.
struct NumericDataset {
    xs: Vec<Vec<f64>>,
    ys: Vec<i64>,
}

/// Pull numeric feature columns + an integer-ish label column out of a
/// relation, dropping rows with nulls/non-numerics.
fn extract(rel: &Relation, label: &str) -> Option<NumericDataset> {
    let label_idx = rel.col_index(label).ok()?;
    // A feature column is numeric by declared type, or Any-typed with
    // numeric content (transformed columns come back as Any).
    let numeric_content = |i: usize| {
        rel.rows()
            .iter()
            .take(20)
            .any(|r| r.get(i).as_f64().is_some())
    };
    let feature_idx: Vec<usize> = rel
        .schema()
        .fields()
        .iter()
        .enumerate()
        .filter(|(i, f)| {
            *i != label_idx
                && (f.dtype().is_numeric()
                    || (f.dtype() == dmp_relation::DataType::Any && numeric_content(*i)))
        })
        .map(|(i, _)| i)
        .collect();
    if feature_idx.is_empty() {
        return None;
    }
    let mut xs = Vec::with_capacity(rel.len());
    let mut ys = Vec::with_capacity(rel.len());
    for row in rel.rows() {
        let y = match row.get(label_idx) {
            Value::Int(v) => *v,
            Value::Bool(b) => *b as i64,
            v => match v.as_i64() {
                Some(v) => v,
                None => continue,
            },
        };
        let feats: Option<Vec<f64>> = feature_idx.iter().map(|&i| row.get(i).as_f64()).collect();
        if let Some(x) = feats {
            xs.push(x);
            ys.push(y);
        }
    }
    if xs.is_empty() {
        None
    } else {
        Some(NumericDataset { xs, ys })
    }
}

/// Column-standardize features in place; returns (means, stds).
fn standardize(xs: &mut [Vec<f64>]) {
    if xs.is_empty() {
        return;
    }
    let d = xs[0].len();
    let n = xs.len() as f64;
    for j in 0..d {
        let mean = xs.iter().map(|x| x[j]).sum::<f64>() / n;
        let var = xs.iter().map(|x| (x[j] - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-9);
        for x in xs.iter_mut() {
            x[j] = (x[j] - mean) / std;
        }
    }
}

/// Binary logistic regression trained by batch gradient descent.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Weights (bias last).
    pub weights: Vec<f64>,
    /// Learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
}

impl LogisticRegression {
    /// Untrained model with sensible defaults.
    pub fn new() -> Self {
        LogisticRegression {
            weights: Vec::new(),
            lr: 0.5,
            epochs: 150,
        }
    }

    fn sigmoid(z: f64) -> f64 {
        1.0 / (1.0 + (-z).exp())
    }

    /// Fit on standardized features and 0/1 labels.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[i64]) {
        let n = xs.len();
        if n == 0 {
            return;
        }
        let d = xs[0].len();
        self.weights = vec![0.0; d + 1];
        for _ in 0..self.epochs {
            let mut grad = vec![0.0f64; d + 1];
            for (x, &y) in xs.iter().zip(ys) {
                let z: f64 = x
                    .iter()
                    .zip(&self.weights[..d])
                    .map(|(xi, wi)| xi * wi)
                    .sum::<f64>()
                    + self.weights[d];
                let err = Self::sigmoid(z) - (y.clamp(0, 1) as f64);
                for j in 0..d {
                    grad[j] += err * x[j];
                }
                grad[d] += err;
            }
            for (w, g) in self.weights.iter_mut().zip(&grad) {
                *w -= self.lr * g / n as f64;
            }
        }
    }

    /// Predict a 0/1 label.
    pub fn predict(&self, x: &[f64]) -> i64 {
        let d = self.weights.len().saturating_sub(1);
        let z: f64 = x
            .iter()
            .take(d)
            .zip(&self.weights[..d])
            .map(|(xi, wi)| xi * wi)
            .sum::<f64>()
            + self.weights.get(d).copied().unwrap_or(0.0);
        (Self::sigmoid(z) >= 0.5) as i64
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

/// Multi-class nearest-centroid classifier (no training hyper-parameters;
/// robust satisfaction baseline for noisy mashups).
#[derive(Debug, Clone, Default)]
pub struct NearestCentroid {
    centroids: Vec<(i64, Vec<f64>)>,
}

impl NearestCentroid {
    /// Untrained model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fit centroids per class.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[i64]) {
        let mut sums: std::collections::HashMap<i64, (Vec<f64>, usize)> =
            std::collections::HashMap::new();
        for (x, &y) in xs.iter().zip(ys) {
            let e = sums.entry(y).or_insert_with(|| (vec![0.0; x.len()], 0));
            for (s, xi) in e.0.iter_mut().zip(x) {
                *s += xi;
            }
            e.1 += 1;
        }
        self.centroids = sums
            .into_iter()
            .map(|(y, (sum, c))| (y, sum.into_iter().map(|s| s / c as f64).collect()))
            .collect();
        self.centroids.sort_by_key(|(y, _)| *y);
    }

    /// Predict the label of the nearest centroid.
    pub fn predict(&self, x: &[f64]) -> i64 {
        self.centroids
            .iter()
            .min_by(|a, b| {
                let da: f64 = a.1.iter().zip(x).map(|(c, xi)| (c - xi).powi(2)).sum();
                let db: f64 = b.1.iter().zip(x).map(|(c, xi)| (c - xi).powi(2)).sum();
                da.total_cmp(&db)
            })
            .map(|(y, _)| *y)
            .unwrap_or(0)
    }
}

/// Which model a classification task trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Binary logistic regression.
    Logistic,
    /// Multi-class nearest centroid.
    NearestCentroid,
}

/// The classification task: train on a split of the mashup, return
/// held-out accuracy as satisfaction.
#[derive(Debug, Clone)]
pub struct ClassifierTask {
    /// Label column the mashup must contain.
    pub label: String,
    /// Held-out fraction (default 0.3).
    pub test_fraction: f64,
    /// Split seed (determinism for audits).
    pub seed: u64,
    /// Model choice.
    pub model: ModelKind,
}

impl ClassifierTask {
    /// Logistic-regression task on `label`.
    pub fn logistic(label: impl Into<String>) -> Self {
        ClassifierTask {
            label: label.into(),
            test_fraction: 0.3,
            seed: 17,
            model: ModelKind::Logistic,
        }
    }

    /// Nearest-centroid task on `label`.
    pub fn nearest_centroid(label: impl Into<String>) -> Self {
        ClassifierTask {
            label: label.into(),
            test_fraction: 0.3,
            seed: 17,
            model: ModelKind::NearestCentroid,
        }
    }

    /// Train/evaluate returning raw accuracy (also used by benches).
    pub fn accuracy(&self, mashup: &Relation) -> Option<f64> {
        let mut data = extract(mashup, &self.label)?;
        if data.xs.len() < 10 {
            return None;
        }
        standardize(&mut data.xs);
        let mut idx: Vec<usize> = (0..data.xs.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        idx.shuffle(&mut rng);
        let n_test = ((data.xs.len() as f64) * self.test_fraction).round() as usize;
        let n_test = n_test.clamp(1, data.xs.len() - 1);
        let (test_idx, train_idx) = idx.split_at(n_test);

        let train_x: Vec<Vec<f64>> = train_idx.iter().map(|&i| data.xs[i].clone()).collect();
        let train_y: Vec<i64> = train_idx.iter().map(|&i| data.ys[i]).collect();

        type Predictor = Box<dyn Fn(&[f64]) -> i64>;
        let predict: Predictor = match self.model {
            ModelKind::Logistic => {
                let mut m = LogisticRegression::new();
                m.fit(&train_x, &train_y);
                Box::new(move |x| m.predict(x))
            }
            ModelKind::NearestCentroid => {
                let mut m = NearestCentroid::new();
                m.fit(&train_x, &train_y);
                Box::new(move |x| m.predict(x))
            }
        };

        // Logistic is binary: targets clamp to {0, 1}; centroid is
        // multi-class and compares raw labels.
        let target = |y: i64| match self.model {
            ModelKind::Logistic => y.clamp(0, 1),
            ModelKind::NearestCentroid => y,
        };
        let hits = test_idx
            .iter()
            .filter(|&&i| predict(&data.xs[i]) == target(data.ys[i]))
            .count();
        Some(hits as f64 / test_idx.len() as f64)
    }
}

impl Task for ClassifierTask {
    fn name(&self) -> &str {
        "classifier"
    }

    fn evaluate(&self, mashup: &Relation) -> Satisfaction {
        match self.accuracy(mashup) {
            Some(acc) => Satisfaction::new(acc),
            None => Satisfaction::zero(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::gaussian_blobs;

    #[test]
    fn logistic_separable_data_high_accuracy() {
        let rel = gaussian_blobs(400, 2, 3.0, 99);
        let task = ClassifierTask::logistic("label");
        let s = task.evaluate(&rel);
        assert!(s.value() > 0.9, "accuracy {} on separable blobs", s.value());
    }

    #[test]
    fn nearest_centroid_also_separates() {
        let rel = gaussian_blobs(400, 2, 3.0, 5);
        let task = ClassifierTask::nearest_centroid("label");
        assert!(task.evaluate(&rel).value() > 0.9);
    }

    #[test]
    fn overlapping_classes_lower_accuracy() {
        let easy = gaussian_blobs(400, 2, 3.0, 1);
        let hard = gaussian_blobs(400, 2, 0.2, 1);
        let task = ClassifierTask::logistic("label");
        assert!(task.evaluate(&easy).value() > task.evaluate(&hard).value());
    }

    #[test]
    fn missing_label_is_zero_satisfaction() {
        let rel = gaussian_blobs(100, 2, 1.0, 1);
        let task = ClassifierTask::logistic("no_such_label");
        assert_eq!(task.evaluate(&rel).value(), 0.0);
    }

    #[test]
    fn too_few_rows_is_zero() {
        let rel = gaussian_blobs(8, 2, 1.0, 1);
        let task = ClassifierTask::logistic("label");
        assert_eq!(task.evaluate(&rel).value(), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let rel = gaussian_blobs(200, 2, 1.0, 4);
        let task = ClassifierTask::logistic("label");
        assert_eq!(task.evaluate(&rel).value(), task.evaluate(&rel).value());
    }

    #[test]
    fn logistic_learns_xor_poorly_but_runs() {
        // XOR is not linearly separable: accuracy should be mediocre but
        // the pipeline must not crash.
        use dmp_relation::{DataType, RelationBuilder, Value};
        let mut b = RelationBuilder::new("xor")
            .column("x1", DataType::Float)
            .column("x2", DataType::Float)
            .column("label", DataType::Int);
        for i in 0..200 {
            let x1 = (i % 2) as f64;
            let x2 = ((i / 2) % 2) as f64;
            let y = (x1 as i64) ^ (x2 as i64);
            b = b.row(vec![Value::Float(x1), Value::Float(x2), Value::Int(y)]);
        }
        let rel = b.build().unwrap();
        let task = ClassifierTask::logistic("label");
        let s = task.evaluate(&rel).value();
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn centroid_predict_without_fit_defaults() {
        let m = NearestCentroid::new();
        assert_eq!(m.predict(&[1.0, 2.0]), 0);
    }
}
