//! Synthetic labeled-data generators, including the paper's intro
//! example (b1 / Seller 1 / Seller 2) with controlled ground truth —
//! the simulated substitute for proprietary buyer data (DESIGN.md,
//! substitutions table).

use rand::Rng;
use rand::SeedableRng;

use dmp_relation::{DataType, Relation, RelationBuilder, Value};

/// Standard normal via Box–Muller.
fn gauss(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Two-class Gaussian blobs in 2-D with configurable separation:
/// `(x1, x2, label)`. Separation ≥ 2.5 is near-linearly-separable.
pub fn gaussian_blobs(n: usize, _classes: usize, separation: f64, seed: u64) -> Relation {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = RelationBuilder::new("blobs")
        .column("x1", DataType::Float)
        .column("x2", DataType::Float)
        .column("label", DataType::Int);
    for i in 0..n {
        let class = (i % 2) as i64;
        let cx = class as f64 * separation;
        b = b.row(vec![
            Value::Float(cx + gauss(&mut rng)),
            Value::Float(cx + gauss(&mut rng)),
            Value::Int(class),
        ]);
    }
    b.build().expect("well-formed")
}

/// Linear regression data: `target = Σ w_j x_j + 1.5 + noise·N(0,1)` with
/// fixed weights `w_j = j+1`, columns `(x0..x{d-1}, target)`.
pub fn linear_data(n: usize, d: usize, noise: f64, seed: u64) -> Relation {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut builder = RelationBuilder::new("linear");
    for j in 0..d {
        builder = builder.column(format!("x{j}"), DataType::Float);
    }
    builder = builder.column("target", DataType::Float);
    for _ in 0..n {
        let xs: Vec<f64> = (0..d).map(|_| gauss(&mut rng)).collect();
        let y: f64 = xs
            .iter()
            .enumerate()
            .map(|(j, x)| (j + 1) as f64 * x)
            .sum::<f64>()
            + 1.5
            + noise * gauss(&mut rng);
        let mut row: Vec<Value> = xs.into_iter().map(Value::Float).collect();
        row.push(Value::Float(y));
        builder = builder.row(row);
    }
    builder.build().expect("well-formed")
}

/// The paper's intro example, synthesized with ground truth:
///
/// * Seller 1 owns `s1 = ⟨a, b, c⟩`;
/// * Seller 2 owns `s2 = ⟨a, b′, f(d)⟩` with `f(d) = 1.8·d + 32` (the
///   Celsius→Fahrenheit `f`) and `b′` a noisy copy of `b`;
/// * buyer b1 owns labels keyed by `a` and wants features ⟨a, b, d⟩ to
///   train a classifier to ≥ 80 % accuracy.
///
/// The label depends mostly on `d`, so s1 alone cannot reach the 80 %
/// threshold while the joined mashup (with `d` recovered through the
/// inverse mapping) can — exactly the economics of Challenge-1/3.
#[derive(Debug, Clone)]
pub struct IntroExample {
    /// Seller 1's dataset ⟨a, b, c⟩.
    pub s1: Relation,
    /// Seller 2's dataset ⟨a, b_prime, fd⟩.
    pub s2: Relation,
    /// Buyer's owned data ⟨a, label⟩.
    pub buyer_owned: Relation,
}

/// Generate the intro example with `n` entities.
pub fn intro_example(n: usize, seed: u64) -> IntroExample {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut s1 = RelationBuilder::new("s1")
        .column("a", DataType::Int)
        .column("b", DataType::Float)
        .column("c", DataType::Str);
    let mut s2 = RelationBuilder::new("s2")
        .column("a", DataType::Int)
        .column("b_prime", DataType::Float)
        .column("fd", DataType::Float);
    let mut owned = RelationBuilder::new("b1_owned")
        .column("a", DataType::Int)
        .column("label", DataType::Int);

    for i in 0..n {
        let a = i as i64;
        let b = gauss(&mut rng);
        let d = gauss(&mut rng);
        // Label driven mostly by d; b contributes weakly.
        let logit = 0.6 * b + 2.5 * d + 0.3 * gauss(&mut rng);
        let label = (logit > 0.0) as i64;
        s1 = s1.row(vec![
            Value::Int(a),
            Value::Float(b),
            Value::str(format!("cat{}", i % 5)),
        ]);
        s2 = s2.row(vec![
            Value::Int(a),
            // b' agrees with b most of the time, with occasional conflicts
            Value::Float(if i % 10 == 0 { b + 1.0 } else { b }),
            Value::Float(1.8 * d + 32.0),
        ]);
        owned = owned.row(vec![Value::Int(a), Value::Int(label)]);
    }

    IntroExample {
        s1: s1.build().expect("well-formed"),
        s2: s2.build().expect("well-formed"),
        buyer_owned: owned.build().expect("well-formed"),
    }
}

/// A synthetic "data lake" for discovery/DoD benchmarks: `n_tables`
/// tables over `n_topics` topic clusters. Tables within a topic share a
/// join key domain (`<topic>_id`) plus topic-specific attribute columns,
/// so ground-truth join edges exist within topics and not across them.
pub fn synthetic_lake(n_tables: usize, n_topics: usize, rows: usize, seed: u64) -> Vec<Relation> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_tables);
    for t in 0..n_tables {
        let topic = t % n_topics.max(1);
        let mut b = RelationBuilder::new(format!("topic{topic}_table{t}"))
            .column(format!("topic{topic}_id"), DataType::Int)
            .column(format!("attr_{t}_x"), DataType::Float)
            .column(format!("attr_{t}_y"), DataType::Str);
        for r in 0..rows {
            b = b.row(vec![
                // overlapping key domains within a topic
                Value::Int((r as i64) + (t as i64 % 3) * (rows as i64 / 4)),
                Value::Float(rng.gen_range(-1.0..1.0)),
                Value::str(format!("t{topic}v{}", r % 20)),
            ]);
        }
        out.push(b.build().expect("well-formed"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierTask;
    use dmp_relation::ops::JoinKind;

    #[test]
    fn blobs_have_expected_shape() {
        let r = gaussian_blobs(100, 2, 2.0, 1);
        assert_eq!(r.len(), 100);
        assert_eq!(r.schema().len(), 3);
        let labels: Vec<i64> = r
            .column("label")
            .unwrap()
            .filter_map(Value::as_i64)
            .collect();
        assert!(labels.contains(&0) && labels.contains(&1));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = gaussian_blobs(50, 2, 1.0, 9);
        let b = gaussian_blobs(50, 2, 1.0, 9);
        for (x, y) in a.rows().iter().zip(b.rows()) {
            assert_eq!(x.values(), y.values());
        }
    }

    #[test]
    fn intro_example_s1_alone_is_weak_joined_is_strong() {
        let ex = intro_example(600, 42);
        let task = ClassifierTask::logistic("label");

        // s1 ⋈ owned: features a, b only.
        let s1_mashup = ex
            .s1
            .join(&ex.buyer_owned, &[("a", "a")], JoinKind::Inner)
            .unwrap()
            .project(&["b", "label"])
            .unwrap();
        let weak = task.accuracy(&s1_mashup).unwrap();

        // full mashup: recover d = (fd − 32) / 1.8, then b + d features.
        let joined = ex
            .s1
            .join(&ex.s2, &[("a", "a")], JoinKind::Inner)
            .unwrap()
            .join(&ex.buyer_owned, &[("a", "a")], JoinKind::Inner)
            .unwrap();
        let with_d = joined
            .map_column("fd", |v| match v.as_f64() {
                Some(f) => Value::Float((f - 32.0) / 1.8),
                None => Value::Null,
            })
            .unwrap()
            .project(&["b", "fd", "label"])
            .unwrap();
        let strong = task.accuracy(&with_d).unwrap();

        assert!(weak < 0.8, "s1 alone should miss the 80% bar, got {weak}");
        assert!(strong >= 0.8, "full mashup should clear 80%, got {strong}");
        assert!(strong > weak + 0.1, "weak {weak} vs strong {strong}");
    }

    #[test]
    fn lake_tables_share_keys_within_topic() {
        let lake = synthetic_lake(6, 2, 50, 3);
        assert_eq!(lake.len(), 6);
        // tables 0 and 2 are topic 0; they share the key column name.
        assert!(lake[0].schema().contains("topic0_id"));
        assert!(lake[2].schema().contains("topic0_id"));
        assert!(lake[1].schema().contains("topic1_id"));
    }

    #[test]
    fn linear_data_columns() {
        let r = linear_data(20, 4, 0.1, 2);
        assert_eq!(r.schema().len(), 5);
        assert!(r.schema().contains("target"));
    }
}
