//! Index-builder benchmarks: profiling, sketching, and relationship-
//! index construction (F3's inner loops).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmp_discovery::{ColumnProfile, HyperLogLog, IndexBuilder, MetadataEngine, MinHash};
use dmp_tasks::synth::synthetic_lake;

fn bench_sketches(c: &mut Criterion) {
    c.bench_function("discovery/minhash_insert_10k", |b| {
        b.iter(|| {
            let mut mh = MinHash::default_width();
            for i in 0..10_000u64 {
                mh.insert(&i);
            }
            black_box(mh.items())
        })
    });
    c.bench_function("discovery/hll_insert_10k", |b| {
        b.iter(|| {
            let mut hll = HyperLogLog::default_precision();
            for i in 0..10_000u64 {
                hll.insert(&i);
            }
            black_box(hll.estimate())
        })
    });
}

fn bench_profile(c: &mut Criterion) {
    let lake = synthetic_lake(1, 1, 5_000, 3);
    c.bench_function("discovery/profile_5k_rows", |b| {
        b.iter(|| black_box(ColumnProfile::compute_all(&lake[0]).len()))
    });
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery/index_build");
    group.sample_size(10);
    for tables in [50usize, 200] {
        let engine = MetadataEngine::new();
        engine.register_batch("steward", synthetic_lake(tables, 8, 50, 7));
        group.bench_with_input(BenchmarkId::from_parameter(tables), &tables, |b, _| {
            b.iter(|| black_box(IndexBuilder::new().build(&engine).relationships.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sketches, bench_profile, bench_index_build);
criterion_main!(benches);
