//! E13: fusion alignment and truth-discovery cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmp_integration::fusion::{align, resolve, FusionStrategy, TruthDiscovery};
use dmp_relation::{DataType, DatasetId, Relation, RelationBuilder, Value};

fn sources(n_sources: usize, objects: usize) -> Vec<Relation> {
    (0..n_sources)
        .map(|s| {
            let mut b = RelationBuilder::new(format!("src{s}"))
                .column("obj", DataType::Int)
                .column("val", DataType::Int);
            for i in 0..objects {
                let v = if (i + s) % 10 == 0 {
                    99
                } else {
                    (i % 7) as i64
                };
                b = b.row(vec![Value::Int(i as i64), Value::Int(v)]);
            }
            b.source(DatasetId(s as u64)).build().unwrap()
        })
        .collect()
}

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion");
    for n in [3usize, 9] {
        let srcs = sources(n, 1_000);
        let refs: Vec<&Relation> = srcs.iter().collect();
        group.bench_with_input(BenchmarkId::new("align_1k_objects", n), &n, |b, _| {
            b.iter(|| black_box(align(&refs, "obj", "val").unwrap().len()))
        });
        let fused = align(&refs, "obj", "val").unwrap();
        group.bench_with_input(BenchmarkId::new("majority_resolve", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    resolve(&fused, "val", &FusionStrategy::MajorityVote)
                        .unwrap()
                        .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("truth_discovery", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    TruthDiscovery::default()
                        .run(&fused, "val")
                        .unwrap()
                        .iterations,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
