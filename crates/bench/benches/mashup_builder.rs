//! F3: the full Mashup Builder pipeline (profile -> index -> DoD).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmp_discovery::MetadataEngine;
use dmp_integration::dod::{DodEngine, TargetSpec};
use dmp_tasks::synth::synthetic_lake;

fn bench_dod(c: &mut Criterion) {
    let mut group = c.benchmark_group("mashup_builder/find_mashups");
    group.sample_size(10);
    for tables in [50usize, 200] {
        let engine = MetadataEngine::new();
        engine.register_batch("steward", synthetic_lake(tables, 8, 50, 9));
        let spec = TargetSpec::with_attributes(["topic0_id", "attr_0_x", "attr_8_x"]);
        group.bench_with_input(BenchmarkId::from_parameter(tables), &tables, |b, _| {
            // DoD construction (index snapshot) is part of the measured
            // pipeline, as in Fig. 3.
            b.iter(|| {
                let dod = DodEngine::new(&engine);
                black_box(dod.find_mashups(&spec).unwrap().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dod);
criterion_main!(benches);
