//! F2: the end-to-end DMMS round (WTP -> mashups -> evaluation ->
//! pricing -> settlement) on markets of increasing size, plus the
//! rayon-parallel vs sequential candidate-stage comparison.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmp_core::arbiter::pipeline::{
    CandidateStage, ClearingStage, ExpiryStage, RoundStage, SettlementStage,
};
use dmp_core::market::{DataMarket, MarketConfig};
use dmp_mechanism::design::MarketDesign;
use dmp_mechanism::wtp::{PriceCurve, WtpFunction};
use dmp_simulator::workload::{generate, WorkloadConfig};

fn setup(n_sellers: usize, n_buyers: usize) -> DataMarket {
    let market = DataMarket::new(
        MarketConfig::external(1).with_design(MarketDesign::posted_price_baseline(10.0)),
    );
    let w = generate(&WorkloadConfig {
        n_sellers,
        n_buyers,
        n_topics: 4,
        rows: 60,
        seed: 3,
        ..Default::default()
    });
    for (seller, tables) in &w.inventories {
        let h = market.seller(seller);
        for t in tables {
            let _ = h.share(t.clone());
        }
    }
    for d in &w.demands {
        let b = market.buyer(&d.buyer);
        b.deposit(100_000.0);
        let _ = market.submit_wtp(WtpFunction::simple(
            d.buyer.clone(),
            d.attributes.iter().cloned(),
            PriceCurve::Linear {
                min_satisfaction: 0.2,
                max_price: d.valuation,
            },
        ));
    }
    market
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmms/run_round");
    group.sample_size(10);
    for (s, b) in [(5usize, 10usize), (10, 20)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{s}s_{b}b")),
            &(s, b),
            |bench, &(s, b)| {
                bench.iter_with_setup(
                    || setup(s, b),
                    |market| black_box(market.run_round().sales.len()),
                )
            },
        );
    }
    group.finish();
}

fn bench_candidate_stage_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmms/candidate_stage");
    group.sample_size(10);
    for (label, candidate_stage) in [
        ("sequential", CandidateStage::sequential()),
        ("rayon", CandidateStage::default()),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &candidate_stage,
            |bench, &candidate_stage| {
                bench.iter_with_setup(
                    || {
                        let stages: Vec<Box<dyn RoundStage>> = vec![
                            Box::new(ExpiryStage),
                            Box::new(candidate_stage),
                            Box::new(ClearingStage),
                            Box::new(SettlementStage),
                        ];
                        (setup(12, 24), stages)
                    },
                    |(market, stages)| black_box(market.run_round_with(&stages).sales.len()),
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_round, bench_candidate_stage_parallelism);
criterion_main!(benches);
