//! Service-layer benchmarks: gateway requests/sec at 1/4/16/64
//! concurrent connections, pipelined batches on one connection, and
//! journal replay throughput (rounds/sec) — the perf baseline later
//! PRs measure against (see `BENCH_service.json` from the experiments
//! binary).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmp_core::market::MarketConfig;
use dmp_mechanism::design::MarketDesign;
use dmp_service::client::{Client, PipelinedRequest};
use dmp_service::command::{AskSpec, CellSpec, ColType, Command, OfferSpec, TableSpec};
use dmp_service::gateway::{Gateway, GatewayConfig};
use dmp_service::node::{ServiceConfig, ServiceNode};
use dmp_service::wire::Json;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dmp-bench-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn service_config(dir: std::path::PathBuf) -> ServiceConfig {
    let market = MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0));
    // fsync off: benches measure the serving path, not the disk.
    ServiceConfig::new(dir, market)
        .with_shards(4)
        .with_fsync(false)
        .with_snapshot_every(0)
}

/// Issue `requests` GET /health calls over `conns` keep-alive
/// connections in parallel.
fn drive(addr: std::net::SocketAddr, conns: usize, requests: usize) {
    let per_conn = requests / conns;
    let handles: Vec<_> = (0..conns)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..per_conn {
                    c.get("/health").unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_gateway_throughput(c: &mut Criterion) {
    let node = Arc::new(ServiceNode::open(service_config(tmp_dir("gw"))).unwrap());
    let gateway = Gateway::serve(
        Arc::clone(&node),
        GatewayConfig {
            workers: 16,
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    let addr = gateway.addr();

    let mut group = c.benchmark_group("gateway_requests");
    for conns in [1usize, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("health_x64", conns),
            &conns,
            |b, &conns| {
                b.iter(|| drive(addr, conns, 64 * conns));
            },
        );
    }
    group.finish();

    // HTTP/1.1 pipelining: 64 requests per write, responses read back
    // in order on the same connection.
    let mut client = Client::connect(addr).unwrap();
    let batch: Vec<PipelinedRequest> = (0..64).map(|_| PipelinedRequest::get("/health")).collect();
    c.bench_function("gateway_pipelined_x64", |b| {
        b.iter(|| {
            let responses = client.pipeline(&batch).unwrap();
            assert_eq!(responses.len(), batch.len());
        });
    });
    gateway.shutdown();
}

fn bench_gateway_mutations(c: &mut Criterion) {
    let node = Arc::new(ServiceNode::open(service_config(tmp_dir("gw-mut"))).unwrap());
    let gateway = Gateway::serve(Arc::clone(&node), GatewayConfig::default()).unwrap();
    let addr = gateway.addr();
    let mut client = Client::connect(addr).unwrap();
    client
        .post(
            "/enroll",
            &Json::parse(r#"{"name":"d","role":"buyer"}"#).unwrap(),
        )
        .unwrap();

    c.bench_function("gateway_journaled_deposit", |b| {
        let body = Json::parse(r#"{"account":"d","amount":1.0}"#).unwrap();
        b.iter(|| client.post("/deposits", &body).unwrap());
    });
    gateway.shutdown();
}

/// Build a journal of `rounds` populated market rounds, then measure
/// recovery (full journal replay into fresh shards).
fn bench_journal_replay(c: &mut Criterion) {
    let dir = tmp_dir("replay");
    let cfg = service_config(dir.clone());
    {
        let node = ServiceNode::open(cfg.clone()).unwrap();
        for i in 0..4 {
            node.apply(Command::Enroll {
                name: format!("s{i}"),
                role: "seller".into(),
            })
            .unwrap();
            node.apply(Command::Enroll {
                name: format!("b{i}"),
                role: "buyer".into(),
            })
            .unwrap();
            node.apply(Command::Deposit {
                account: format!("b{i}"),
                amount: 1000.0,
            })
            .unwrap();
        }
        for round in 0..16 {
            for i in 0..4 {
                let _ = node.apply(Command::SubmitAsk(AskSpec {
                    seller: format!("s{i}"),
                    table: TableSpec {
                        name: format!("t{round}_{i}"),
                        columns: vec![("k".into(), ColType::Int), ("v".into(), ColType::Float)],
                        rows: (0..6)
                            .map(|r| vec![CellSpec::Int(r), CellSpec::Float(r as f64 * 1.5)])
                            .collect(),
                    },
                    reserve: None,
                    license: None,
                }));
                let _ = node.apply(Command::SubmitOffer(OfferSpec::simple(
                    format!("b{i}"),
                    ["k", "v"],
                    15.0,
                )));
            }
            node.apply(Command::RunRound { rounds: 1 }).unwrap();
        }
    }

    c.bench_function("journal_replay_16_rounds", |b| {
        b.iter(|| {
            let node = ServiceNode::open(cfg.clone()).unwrap();
            assert!(node.applied() > 0);
            node.applied()
        });
    });
}

criterion_group!(
    benches,
    bench_gateway_throughput,
    bench_gateway_mutations,
    bench_journal_replay
);
criterion_main!(benches);
