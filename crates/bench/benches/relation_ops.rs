//! Microbenchmarks for the relational substrate: the physical operators
//! every mashup is built from (supports F2/F3 interpretation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmp_relation::ops::{AggFun, AggSpec, JoinKind};
use dmp_relation::{DataType, DatasetId, Expr, Relation, RelationBuilder, Value};

fn table(n: usize, source: u64) -> Relation {
    let mut b = RelationBuilder::new(format!("t{source}"))
        .column("k", DataType::Int)
        .column("g", DataType::Str)
        .column("v", DataType::Float);
    for i in 0..n {
        b = b.row(vec![
            Value::Int(i as i64),
            Value::str(format!("g{}", i % 20)),
            Value::Float(i as f64 * 0.5),
        ]);
    }
    b.source(DatasetId(source)).build().unwrap()
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation/hash_join");
    for n in [1_000usize, 10_000] {
        let left = table(n, 1);
        let right = table(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    left.join(&right, &[("k", "k")], JoinKind::Inner)
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let rel = table(10_000, 1);
    c.bench_function("relation/group_by_sum_10k", |b| {
        b.iter(|| {
            black_box(
                rel.aggregate(&["g"], &[AggSpec::new("v", AggFun::Sum, "total")])
                    .unwrap()
                    .len(),
            )
        })
    });
}

fn bench_select(c: &mut Criterion) {
    let rel = table(10_000, 1);
    let pred = Expr::col("v").gt(Expr::lit(2_500.0));
    c.bench_function("relation/select_10k", |b| {
        b.iter(|| black_box(rel.select(&pred).unwrap().len()))
    });
}

fn bench_distinct_provenance(c: &mut Criterion) {
    let rel = table(5_000, 1);
    let doubled = rel.union(&rel).unwrap();
    c.bench_function("relation/distinct_with_provenance_merge_10k", |b| {
        b.iter(|| black_box(doubled.distinct().len()))
    });
}

criterion_group!(
    benches,
    bench_join,
    bench_aggregate,
    bench_select,
    bench_distinct_provenance
);
criterion_main!(benches);
