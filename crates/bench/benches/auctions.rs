//! E1: allocation + payment rule microbenchmarks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmp_mechanism::allocation::{AllocationRule, Bid};
use dmp_mechanism::design::{empirical_ic_check, MarketDesign};
use dmp_mechanism::payment::PaymentRule;

fn bids(n: usize) -> Vec<Bid> {
    (0..n)
        .map(|i| Bid::new(format!("b{i}"), ((i * 37) % 100 + 1) as f64))
        .collect()
}

fn bench_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("auction/clear");
    for n in [100usize, 1_000] {
        let bs = bids(n);
        group.bench_with_input(BenchmarkId::new("vickrey_top10", n), &n, |b, _| {
            b.iter(|| {
                let winners = AllocationRule::TopK(10).allocate(&bs);
                black_box(PaymentRule::Vickrey.payments(&bs, &winners).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("rsop", n), &n, |b, _| {
            b.iter(|| black_box(PaymentRule::Rsop { seed: 7 }.payments(&bs, &[]).len()))
        });
    }
    group.finish();
}

fn bench_ic_check(c: &mut Criterion) {
    let vals: Vec<f64> = (1..=12).map(|i| i as f64 * 9.0).collect();
    let grid: Vec<f64> = (0..=20).map(|k| k as f64 / 20.0).collect();
    c.bench_function("auction/empirical_ic_check_12x21", |b| {
        let design = MarketDesign::scarce_licenses(1, 0.0);
        b.iter(|| black_box(empirical_ic_check(&design, &vals, &grid).max_gain))
    });
}

criterion_group!(benches, bench_rules, bench_ic_check);
criterion_main!(benches);
