//! E4: revenue allocation cost — exact vs sampled vs closed-form.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmp_valuation::knn_shapley::{knn_shapley, LabeledPoint};
use dmp_valuation::shapley::{exact_shapley, monte_carlo_shapley, CharacteristicFn};
use rand::SeedableRng;

fn game(n: usize) -> CharacteristicFn {
    CharacteristicFn::new(n, |mask| (mask.count_ones() as f64).sqrt())
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapley/exact");
    group.sample_size(10);
    for n in [10usize, 14, 18] {
        let g = game(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(exact_shapley(&g)[0]))
        });
    }
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let g = game(18);
    let mut group = c.benchmark_group("shapley/monte_carlo_18p");
    for samples in [100usize, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &s| {
            b.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(5);
                black_box(monte_carlo_shapley(&g, s, &mut rng)[0])
            })
        });
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let train: Vec<LabeledPoint> = (0..5_000)
        .map(|i| LabeledPoint::new(vec![(i % 97) as f64], (i % 2) as i64))
        .collect();
    let test: Vec<LabeledPoint> = (0..10)
        .map(|i| LabeledPoint::new(vec![i as f64], (i % 2) as i64))
        .collect();
    c.bench_function("shapley/knn_closed_form_5k", |b| {
        b.iter(|| black_box(knn_shapley(&train, &test, 5)[0]))
    });
}

criterion_group!(benches, bench_exact, bench_monte_carlo, bench_knn);
criterion_main!(benches);
