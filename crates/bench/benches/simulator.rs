//! E7: simulator throughput (rounds/s vs participants).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmp_core::market::MarketConfig;
use dmp_mechanism::design::MarketDesign;
use dmp_simulator::agents::{BuyerStrategy, SellerStrategy};
use dmp_simulator::engine::{SimConfig, Simulation};
use dmp_simulator::workload::{generate, WorkloadConfig};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/5_rounds");
    group.sample_size(10);
    for (s, b) in [(5usize, 10usize), (10, 30)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{s}s_{b}b")),
            &(s, b),
            |bench, &(s, b)| {
                bench.iter_with_setup(
                    || {
                        let w = generate(&WorkloadConfig {
                            n_sellers: s,
                            n_buyers: b,
                            rows: 40,
                            seed: 19,
                            ..Default::default()
                        });
                        let cfg = SimConfig::new(
                            MarketConfig::external(2)
                                .with_design(MarketDesign::posted_price_baseline(15.0)),
                            5,
                        );
                        Simulation::new(
                            cfg,
                            w,
                            vec![BuyerStrategy::Truthful],
                            vec![SellerStrategy::Honest],
                        )
                    },
                    |mut sim| black_box(sim.run(5).metrics.transactions),
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
