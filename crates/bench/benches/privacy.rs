//! E9: differential-privacy mechanism throughput and anonymization cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmp_privacy::anonymize::k_anonymize;
use dmp_privacy::dp::{laplace_mechanism, perturb_numeric_column, DpParams};
use dmp_relation::{DataType, RelationBuilder, Value};
use rand::SeedableRng;

fn bench_laplace(c: &mut Criterion) {
    let params = DpParams::new(1.0, 1.0);
    c.bench_function("privacy/laplace_scalar", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        b.iter(|| black_box(laplace_mechanism(42.0, params, &mut rng)))
    });
}

fn bench_perturb_column(c: &mut Criterion) {
    let mut group = c.benchmark_group("privacy/perturb_column");
    for n in [1_000usize, 10_000] {
        let mut b = RelationBuilder::new("t").column("x", DataType::Float);
        for i in 0..n {
            b = b.row(vec![Value::Float(i as f64)]);
        }
        let rel = b.build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(7);
                black_box(
                    perturb_numeric_column(&rel, "x", DpParams::new(1.0, 1.0), &mut rng)
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_k_anonymize(c: &mut Criterion) {
    let mut b = RelationBuilder::new("p")
        .column("age", DataType::Int)
        .column("zip", DataType::Str);
    for i in 0..2_000 {
        b = b.row(vec![
            Value::Int(20 + (i % 60) as i64),
            Value::str(format!("{:05}", 60000 + i % 300)),
        ]);
    }
    let rel = b.build().unwrap();
    c.bench_function("privacy/k_anonymize_2k_k5", |bench| {
        bench.iter(|| {
            black_box(
                k_anonymize(&rel, &["age", "zip"], 5)
                    .unwrap()
                    .relation
                    .len(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_laplace,
    bench_perturb_column,
    bench_k_anonymize
);
criterion_main!(benches);
