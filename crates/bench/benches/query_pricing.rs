//! E10: arbitrage detection and revenue optimization cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmp_mechanism::query_pricing::{
    find_arbitrage, optimize_uniform_pricing, Demand, WeightedCoveragePricing,
};
use rand::{Rng, SeedableRng};

fn demand(n: usize, attrs: usize) -> Vec<Demand> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    (0..n)
        .map(|_| Demand {
            view: (rng.gen::<u32>() % (1 << attrs)).max(1),
            budget: 5.0 + rng.gen::<f64>() * 50.0,
        })
        .collect()
}

fn bench_arbitrage_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_pricing/find_arbitrage");
    for n in [50usize, 200] {
        let d = demand(n, 12);
        let views: Vec<u32> = d.iter().map(|x| x.view).collect();
        let p = WeightedCoveragePricing::uniform(12, 3.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(find_arbitrage(&p, &views).len()))
        });
    }
    group.finish();
}

fn bench_optimize(c: &mut Criterion) {
    let d = demand(200, 12);
    c.bench_function("query_pricing/optimize_uniform_200", |b| {
        b.iter(|| black_box(optimize_uniform_pricing(12, &d).1))
    });
}

criterion_group!(benches, bench_arbitrage_scan, bench_optimize);
criterion_main!(benches);
