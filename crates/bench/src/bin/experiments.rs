//! The experiment harness: regenerates every table of DESIGN.md §2
//! (F1–F3, E1–E16), printing paper-claim vs measured shape. Run all:
//!
//! ```text
//! cargo run --release -p dmp-bench --bin experiments
//! ```
//!
//! or a subset: `... --bin experiments f3 e4 e10`.

use std::collections::HashMap;

use rand::SeedableRng;

use dmp_bench::harness::{f2, f3, pct, time_ms, ExperimentTable};
use dmp_core::license::License;
use dmp_core::market::{DataMarket, MarketConfig};
use dmp_discovery::{IndexBuilder, MetadataEngine};
use dmp_integration::dod::{DodEngine, TargetSpec};
use dmp_integration::fusion::{align, resolve, FusionStrategy, TruthDiscovery};
use dmp_integration::mapping;
use dmp_mechanism::allocation::Bid;
use dmp_mechanism::design::{empirical_ic_check, MarketDesign};
use dmp_mechanism::elicitation::ExPostMechanism;
use dmp_mechanism::query_pricing::{
    find_arbitrage, optimize_uniform_pricing, revenue, Demand, NaivePricing, PriceFunction,
    WeightedCoveragePricing,
};
use dmp_mechanism::wtp::{PriceCurve, TaskKind, WtpFunction};
use dmp_privacy::dp::{perturb_numeric_column, DpParams};
use dmp_relation::{DataType, DatasetId, RelationBuilder, Value};
use dmp_simulator::agents::{BuyerStrategy, SellerStrategy};
use dmp_simulator::engine::{SimConfig, Simulation};
use dmp_simulator::scenario::Scenario;
use dmp_simulator::workload::{generate, WorkloadConfig};
use dmp_tasks::classifier::ClassifierTask;
use dmp_tasks::synth::{gaussian_blobs, intro_example, synthetic_lake};
use dmp_tasks::Task;
use dmp_valuation::banzhaf::leave_one_out;
use dmp_valuation::knn_shapley::{knn_shapley, knn_utility, LabeledPoint};
use dmp_valuation::shapley::{exact_shapley, max_abs_error, monte_carlo_shapley, CharacteristicFn};
use dmp_valuation::sharing::total_shared;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("data-market-platform experiment suite (DESIGN.md section 2)\n");
    if want("f1") {
        f1_pipeline();
    }
    if want("f2") {
        f2_dmms_pipeline();
    }
    if want("f3") {
        f3_mashup_builder();
    }
    if want("e1") {
        e1_truthfulness();
    }
    if want("e2") {
        e2_intro_example();
    }
    if want("e3") {
        e3_ex_post();
    }
    if want("e4") {
        e4_shapley();
    }
    if want("e5") {
        e5_revenue_sharing();
    }
    if want("e6") {
        e6_adversarial();
    }
    if want("e7") {
        e7_throughput();
    }
    if want("e8") {
        e8_extrinsic_value();
    }
    if want("e9") {
        e9_privacy_value();
    }
    if want("e10") {
        e10_query_pricing();
    }
    if want("e11") {
        e11_opportunists();
    }
    if want("e12") {
        e12_market_kinds();
    }
    if want("e13") {
        e13_fusion();
    }
    if want("e14") {
        e14_negotiation();
    }
    if want("e15") {
        e15_recommendations();
    }
    if want("e16") {
        e16_licensing();
    }
    if want("svc") {
        svc_service_baseline();
    }
}

/// F1 — Fig. 1: the same design object drives the simulator and a
/// deployed DMMS.
fn f1_pipeline() {
    let mut t = ExperimentTable::new(
        "F1  Fig.1 pipeline: design -> simulate -> deploy",
        &[
            "design",
            "sim tx",
            "sim revenue",
            "sim welfare",
            "deploy tx",
            "deploy revenue",
        ],
    );
    for (name, market) in [
        ("internal-welfare", MarketConfig::internal()),
        (
            "external-posted",
            MarketConfig::external(5).with_design(MarketDesign::posted_price_baseline(20.0)),
        ),
    ] {
        // Simulate (Fig. 1 (3)).
        let sim = Scenario::market_kind(7, market.clone(), name).run();
        // Deploy (Fig. 1 (4)) and push one real workload through.
        let deployed = DataMarket::new(market);
        let w = generate(&WorkloadConfig {
            n_sellers: 4,
            n_buyers: 6,
            seed: 7,
            ..Default::default()
        });
        for (seller, tables) in &w.inventories {
            let h = deployed.seller(seller);
            for table in tables {
                let _ = h.share(table.clone());
            }
        }
        for d in &w.demands {
            let b = deployed.buyer(&d.buyer);
            b.deposit(1_000.0);
            let wtp = WtpFunction::simple(
                d.buyer.clone(),
                d.attributes.iter().cloned(),
                PriceCurve::Linear {
                    min_satisfaction: 0.2,
                    max_price: d.valuation,
                },
            );
            let _ = deployed.submit_wtp(wtp);
        }
        let report = deployed.run_round();
        t.row(vec![
            name.into(),
            sim.metrics.transactions.to_string(),
            f2(sim.metrics.revenue),
            f2(sim.metrics.welfare),
            report.sales.len().to_string(),
            f2(report.revenue),
        ]);
    }
    t.print();
}

/// F2 — Fig. 2: full transaction pipeline latency vs market size.
fn f2_dmms_pipeline() {
    let mut t = ExperimentTable::new(
        "F2  DMMS pipeline: round latency vs market size",
        &["datasets", "offers", "round ms", "sales", "ms/offer"],
    );
    for (n_sellers, n_buyers) in [(5usize, 5usize), (10, 20), (20, 40)] {
        let market = DataMarket::new(
            MarketConfig::external(1).with_design(MarketDesign::posted_price_baseline(10.0)),
        );
        let w = generate(&WorkloadConfig {
            n_sellers,
            n_buyers,
            n_topics: 4,
            rows: 100,
            seed: 3,
            ..Default::default()
        });
        let mut datasets = 0;
        for (seller, tables) in &w.inventories {
            let h = market.seller(seller);
            for table in tables {
                if h.share(table.clone()).is_ok() {
                    datasets += 1;
                }
            }
        }
        for d in &w.demands {
            let b = market.buyer(&d.buyer);
            b.deposit(10_000.0);
            let _ = market.submit_wtp(WtpFunction::simple(
                d.buyer.clone(),
                d.attributes.iter().cloned(),
                PriceCurve::Linear {
                    min_satisfaction: 0.2,
                    max_price: d.valuation,
                },
            ));
        }
        let (report, ms) = time_ms(|| market.run_round());
        t.row(vec![
            datasets.to_string(),
            n_buyers.to_string(),
            f2(ms),
            report.sales.len().to_string(),
            f2(ms / n_buyers as f64),
        ]);
    }
    t.print();
}

/// F3 — Fig. 3: profile -> index -> DoD pipeline scaling.
fn f3_mashup_builder() {
    let mut t = ExperimentTable::new(
        "F3  Mashup Builder: index build + DoD vs lake size",
        &[
            "tables",
            "columns",
            "ingest ms",
            "index ms",
            "join edges",
            "dod ms",
            "candidates",
        ],
    );
    for n_tables in [50usize, 200, 500] {
        let lake = synthetic_lake(n_tables, 8, 50, 9);
        let engine = MetadataEngine::new();
        let (_, ingest_ms) = time_ms(|| {
            engine.register_batch("steward", lake.clone());
        });
        let (idx, index_ms) = time_ms(|| IndexBuilder::new().build(&engine));
        let edges = idx.relationships.len();
        let (cands, dod_ms) = time_ms(|| {
            let dod = DodEngine::new(&engine);
            let spec = TargetSpec::with_attributes(["topic0_id", "attr_0_x", "attr_8_x"]);
            dod.find_mashups(&spec).map(|c| c.len()).unwrap_or(0)
        });
        t.row(vec![
            n_tables.to_string(),
            (n_tables * 3).to_string(),
            f2(ingest_ms),
            f2(index_ms),
            edges.to_string(),
            f2(dod_ms),
            cands.to_string(),
        ]);
    }
    t.print();
}

/// E1 — §3.2.1: which allocation/payment pairs are gameable?
fn e1_truthfulness() {
    let mut t = ExperimentTable::new(
        "E1  Incentive compatibility of allocation/payment designs",
        &["design", "max deviation gain", "IC?"],
    );
    // Irregular valuations: a big gap below the top bidder makes the
    // shading incentive of non-truthful rules visible on a finite grid.
    let valuations: Vec<f64> = vec![
        12.0, 19.0, 33.0, 47.0, 52.0, 58.0, 64.0, 71.0, 83.0, 95.0, 101.0, 140.0,
    ];
    let grid: Vec<f64> = (0..=60).map(|k| k as f64 / 40.0).collect();
    let designs = vec![
        (
            "first-price (naive)",
            MarketDesign {
                payment: dmp_mechanism::payment::PaymentRule::FirstPrice,
                allocation: dmp_mechanism::allocation::AllocationRule::TopK(1),
                ..MarketDesign::posted_price_baseline(0.0)
            },
        ),
        (
            "posted-price(50)",
            MarketDesign::posted_price_baseline(50.0),
        ),
        ("vickrey top-1", MarketDesign::scarce_licenses(1, 0.0)),
        ("rsop digital-goods", MarketDesign::external_revenue(13)),
    ];
    for (name, design) in designs {
        let report = empirical_ic_check(&design, &valuations, &grid);
        t.row(vec![
            name.into(),
            f2(report.max_gain),
            if report.is_ic {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t.print();
}

/// E2 — the intro example, end to end.
fn e2_intro_example() {
    let mut t = ExperimentTable::new(
        "E2  Intro example: b1 + s1<a,b,c> + s2<a,b',f(d)> with 80%/90% steps",
        &["scenario", "accuracy", "price", "s1 revenue", "s2 revenue"],
    );
    let curve = PriceCurve::Step(vec![(0.8, 100.0), (0.9, 150.0)]);

    for only_s1 in [true, false] {
        let ex = intro_example(600, 42);
        let market = DataMarket::new(
            MarketConfig::external(4).with_design(MarketDesign::posted_price_baseline(40.0)),
        );
        let s1 = market.seller("seller1");
        s1.share(ex.s1.clone()).unwrap();
        if !only_s1 {
            let s2 = market.seller("seller2");
            s2.share(ex.s2.clone()).unwrap();
        }
        let b1 = market.buyer("b1");
        b1.deposit(1_000.0);
        let mut wtp = WtpFunction::simple("b1", ["a", "b", "c", "fd"], curve.clone());
        wtp.task = TaskKind::Classification {
            label: "label".into(),
        };
        wtp.owned_data = Some(ex.buyer_owned.clone());
        wtp.min_rows = 50;
        market.submit_wtp(wtp).unwrap();
        let report = market.run_round();
        let (accuracy, price) = report
            .sales
            .first()
            .map(|s| (s.satisfaction, s.price))
            .unwrap_or((0.0, 0.0));
        t.row(vec![
            if only_s1 {
                "s1 only".into()
            } else {
                "s1 + s2 mashup".into()
            },
            f3(accuracy),
            f2(price),
            f2(market.balance("seller1")),
            f2(market.balance("seller2")),
        ]);
    }
    // The mapping-recovery sub-result: f(d) = 1.8d + 32 discovered and
    // inverted from paired samples (negotiation round artifact).
    let pairs: Vec<(Value, Value)> = (0..20)
        .map(|i| {
            let d = i as f64;
            (Value::Float(1.8 * d + 32.0), Value::Float(d))
        })
        .collect();
    if let Some(mapping::Mapping::Affine { scale, offset }) = mapping::discover(&pairs) {
        t.row(vec![
            "f'(fd)->d discovered".into(),
            format!("scale={scale:.4}"),
            format!("offset={offset:.2}"),
            "-".into(),
            "-".into(),
        ]);
    }
    t.print();
}

/// E3 — §3.2.2.2: the ex post mechanism makes truthful reporting optimal.
fn e3_ex_post() {
    let mut t = ExperimentTable::new(
        "E3  Ex post elicitation: optimal report vs audit strength (v=100)",
        &["audit q", "penalty l", "q*l", "optimal report", "truthful?"],
    );
    for (q, l) in [(0.1, 1.5), (0.3, 2.0), (0.5, 2.5), (0.8, 1.5), (1.0, 1.0)] {
        let mech = ExPostMechanism {
            audit_prob: q,
            penalty_mult: l,
            exclusion_rounds: 0,
            round_value: 0.0,
        };
        let opt = mech.optimal_report(100.0);
        t.row(vec![
            f2(q),
            f2(l),
            f2(q * l),
            f2(opt),
            if (opt - 100.0).abs() < 1e-6 {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t.print();
}

/// A superadditive game resembling dataset coverage.
fn coverage_like_game(n: usize) -> CharacteristicFn {
    CharacteristicFn::new(n, move |mask| {
        let s = mask.count_ones() as f64;
        // diminishing returns + a pivotal player 0
        s.sqrt() + if mask & 1 != 0 { 0.5 } else { 0.0 }
    })
}

/// E4 — §3.2.3: Shapley cost vs efficient alternatives.
fn e4_shapley() {
    // (a) exact blow-up vs Monte-Carlo.
    let mut ta = ExperimentTable::new(
        "E4a  Revenue allocation runtime: exact vs Monte-Carlo(1000)",
        &["players", "exact ms", "mc ms", "mc max err"],
    );
    for n in [8usize, 12, 16, 18] {
        let game = coverage_like_game(n);
        let (exact, exact_ms) = time_ms(|| exact_shapley(&game));
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (mc, mc_ms) = time_ms(|| monte_carlo_shapley(&game, 1_000, &mut rng));
        ta.row(vec![
            n.to_string(),
            f2(exact_ms),
            f2(mc_ms),
            f3(max_abs_error(&exact, &mc)),
        ]);
    }
    ta.print();

    // (b) Monte-Carlo error vs samples.
    let mut tb = ExperimentTable::new(
        "E4b  Monte-Carlo error ~ 1/sqrt(samples) (12-player game)",
        &["samples", "max abs err"],
    );
    let game = coverage_like_game(12);
    let exact = exact_shapley(&game);
    for samples in [10usize, 100, 1_000, 10_000] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mc = monte_carlo_shapley(&game, samples, &mut rng);
        tb.row(vec![samples.to_string(), f3(max_abs_error(&exact, &mc))]);
    }
    tb.print();

    // (c) KNN-Shapley closed form at scale.
    let mut tc = ExperimentTable::new(
        "E4c  KNN-Shapley (Jia et al. [56]): exact closed form",
        &["train points", "closed-form ms", "efficiency check"],
    );
    for n in [1_000usize, 5_000, 20_000] {
        let train: Vec<LabeledPoint> = (0..n)
            .map(|i| LabeledPoint::new(vec![(i % 97) as f64, (i % 13) as f64], (i % 2) as i64))
            .collect();
        let test: Vec<LabeledPoint> = (0..20)
            .map(|i| LabeledPoint::new(vec![i as f64, i as f64], (i % 2) as i64))
            .collect();
        let (s, ms) = time_ms(|| knn_shapley(&train, &test, 5));
        let all: Vec<usize> = (0..n).collect();
        let total: f64 = s.iter().sum();
        let vn = knn_utility(&train, &all, &test, 5);
        tc.row(vec![
            n.to_string(),
            f2(ms),
            if (total - vn).abs() < 1e-6 {
                "sum=v(N) ok".into()
            } else {
                "FAIL".into()
            },
        ]);
    }
    tc.print();

    // (d) leave-one-out mis-credits substitutes.
    let mut td = ExperimentTable::new(
        "E4d  Substitute datasets: Shapley vs leave-one-out credit",
        &[
            "method",
            "dataset A",
            "dataset B (duplicate)",
            "dataset C (unique)",
        ],
    );
    // A and B are perfect substitutes; C is unique.
    let game = CharacteristicFn::new(3, |mask| {
        let ab = (mask & 0b011 != 0) as u32 as f64 * 0.5;
        let c = (mask & 0b100 != 0) as u32 as f64 * 0.5;
        ab + c
    });
    let phi = exact_shapley(&game);
    td.row(vec!["shapley".into(), f3(phi[0]), f3(phi[1]), f3(phi[2])]);
    let loo = leave_one_out(&game);
    td.row(vec![
        "leave-one-out".into(),
        f3(loo[0]),
        f3(loo[1]),
        f3(loo[2]),
    ]);
    td.print();
}

/// E5 — provenance revenue sharing on the intro example.
fn e5_revenue_sharing() {
    let ex = intro_example(400, 8);
    let metadata = MetadataEngine::new();
    let id1 = metadata.register("s1", "seller1", ex.s1);
    let id2 = metadata.register("s2", "seller2", ex.s2);
    let dod = DodEngine::new(&metadata);
    let spec = TargetSpec::with_attributes(["a", "c", "fd"]);
    let cands = dod.find_mashups(&spec).expect("mashups");
    let full = cands
        .iter()
        .find(|c| (c.coverage - 1.0).abs() < 1e-9)
        .expect("full coverage candidate");

    let mut t = ExperimentTable::new(
        "E5  Revenue sharing via provenance (price = 100)",
        &["method", "s1 share", "s2 share", "total"],
    );
    for (name, design) in [
        ("uniform+provenance", MarketDesign::internal_welfare()),
        ("shapley", MarketDesign::external_revenue(2)),
        (
            "leave-one-out",
            MarketDesign {
                revenue_allocation: dmp_mechanism::design::RevenueAllocationMethod::LeaveOneOut,
                ..MarketDesign::external_revenue(2)
            },
        ),
    ] {
        let shares = dmp_core::arbiter::revenue::dataset_shares(&design, &full.relation, 100.0);
        let s1 = shares
            .iter()
            .find(|s| s.dataset == id1)
            .map(|s| s.amount)
            .unwrap_or(0.0);
        let s2 = shares
            .iter()
            .find(|s| s.dataset == id2)
            .map(|s| s.amount)
            .unwrap_or(0.0);
        t.row(vec![name.into(), f2(s1), f2(s2), f2(total_shared(&shares))]);
    }
    t.print();
}

/// E6 — §6.1 effectiveness: adversarial mixes vs designs.
fn e6_adversarial() {
    let mut t = ExperimentTable::new(
        "E6  Robustness: welfare/revenue vs adversarial fraction",
        &[
            "design",
            "adversarial",
            "welfare",
            "revenue",
            "honest seller rev",
            "fill rate",
        ],
    );
    for (dname, design) in [
        ("posted(20)", MarketDesign::posted_price_baseline(20.0)),
        ("rsop", MarketDesign::external_revenue(21)),
    ] {
        for frac in [0.0, 0.3, 0.6] {
            let result = Scenario::adversarial(17, frac, design.clone()).run();
            t.row(vec![
                dname.into(),
                pct(frac),
                f2(result.metrics.welfare),
                f2(result.metrics.revenue),
                f2(result.metrics.honest_seller_revenue),
                pct(result.metrics.fill_rate),
            ]);
        }
    }
    t.print();
}

/// E7 — §6.1 efficiency: simulator throughput scaling.
fn e7_throughput() {
    let mut t = ExperimentTable::new(
        "E7  Simulator throughput vs participants",
        &["sellers", "buyers", "rounds", "total ms", "rounds/s", "tx"],
    );
    for (s, b) in [(5usize, 10usize), (10, 30), (20, 60)] {
        let w = generate(&WorkloadConfig {
            n_sellers: s,
            n_buyers: b,
            n_topics: 4,
            rows: 60,
            seed: 19,
            ..Default::default()
        });
        let cfg = SimConfig::new(
            MarketConfig::external(2).with_design(MarketDesign::posted_price_baseline(15.0)),
            5,
        );
        let mut sim = Simulation::new(
            cfg,
            w,
            vec![BuyerStrategy::Truthful],
            vec![SellerStrategy::Honest],
        );
        let (result, ms) = time_ms(|| sim.run(5));
        t.row(vec![
            s.to_string(),
            b.to_string(),
            "5".into(),
            f2(ms),
            f2(5_000.0 / ms),
            result.metrics.transactions.to_string(),
        ]);
    }
    t.print();
}

/// E8 — §2: value is extrinsic (demand-driven), not intrinsic.
fn e8_extrinsic_value() {
    // (a) same dataset, rising demand under RSOP -> rising realized price.
    let mut ta = ExperimentTable::new(
        "E8a  Same dataset, different demand (RSOP digital goods)",
        &["buyers", "mean price paid", "revenue"],
    );
    for n_buyers in [2usize, 10, 40] {
        let design = MarketDesign::external_revenue(23);
        let bids: Vec<Bid> = (0..n_buyers)
            .map(|i| Bid::new(format!("b{i}"), 20.0 + (i % 10) as f64 * 8.0))
            .collect();
        let valuations: Vec<f64> = bids.iter().map(|b| b.amount).collect();
        let outcome = design.run_auction(&bids, &valuations);
        let paid: Vec<f64> = outcome.payments.iter().map(|(_, p)| *p).collect();
        let mean = if paid.is_empty() {
            0.0
        } else {
            paid.iter().sum::<f64>() / paid.len() as f64
        };
        ta.row(vec![
            n_buyers.to_string(),
            f2(mean),
            f2(outcome.measure.revenue),
        ]);
    }
    ta.print();

    // (b) intrinsic property (missing values) only matters when demanded.
    let mut tb = ExperimentTable::new(
        "E8b  Missing values only matter when the task demands them",
        &["missing ratio", "strict-buyer bid", "lenient-buyer bid"],
    );
    for missing in [0.0f64, 0.2, 0.4] {
        let mut b = RelationBuilder::new("t").column("a", DataType::Int);
        for i in 0..100 {
            let null = (i as f64 / 100.0) < missing;
            b = b.row(vec![if null { Value::Null } else { Value::Int(i) }]);
        }
        let rel = b.source(DatasetId(1)).build().unwrap();
        let mut strict = WtpFunction::simple("strict", ["a"], PriceCurve::Constant(100.0));
        strict.constraints.max_missing_ratio = Some(0.05);
        let lenient = WtpFunction::simple("lenient", ["a"], PriceCurve::Constant(100.0));
        let sb = dmp_core::arbiter::wtp_evaluator::evaluate(&strict, &rel).bid;
        let lb = dmp_core::arbiter::wtp_evaluator::evaluate(&lenient, &rel).bid;
        tb.row(vec![pct(missing), f2(sb), f2(lb)]);
    }
    tb.print();
}

/// E9 — §4.2: the privacy–value curve.
fn e9_privacy_value() {
    let mut t = ExperimentTable::new(
        "E9  Privacy vs value: satisfaction and price vs epsilon",
        &["epsilon", "accuracy", "price (steps 0.8/0.9)"],
    );
    let curve = PriceCurve::Step(vec![(0.8, 100.0), (0.9, 150.0)]);
    let task = ClassifierTask::logistic("label");
    let clean = gaussian_blobs(600, 2, 2.5, 31);
    for eps in [0.05f64, 0.2, 0.5, 1.0, 3.0, 10.0] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let params = DpParams::new(eps, 2.0);
        let noisy = perturb_numeric_column(&clean, "x1", params, &mut rng).unwrap();
        let noisy = perturb_numeric_column(&noisy, "x2", params, &mut rng).unwrap();
        let acc = task.evaluate(&noisy).value();
        t.row(vec![f2(eps), f3(acc), f2(curve.price(acc))]);
    }
    t.print();
}

/// E10 — §8.2: arbitrage-free query pricing.
fn e10_query_pricing() {
    let mut t = ExperimentTable::new(
        "E10  Query pricing: arbitrage count and revenue",
        &["pricing", "views", "arbitrage opportunities", "revenue"],
    );
    let n_attrs = 10usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    // Random demand profile over random views.
    let demand: Vec<Demand> = (0..40)
        .map(|_| {
            let view = (rand::Rng::gen::<u32>(&mut rng) % (1 << n_attrs)).max(1);
            let budget = 5.0 + rand::Rng::gen::<f64>(&mut rng) * 50.0;
            Demand { view, budget }
        })
        .collect();
    let views: Vec<u32> = demand.iter().map(|d| d.view).collect();

    // Naive: independent random prices per view (today's markets).
    let mut naive = NaivePricing::new();
    for &v in &views {
        naive.set(v, 5.0 + rand::Rng::gen::<f64>(&mut rng) * 50.0);
    }
    let arb = find_arbitrage(&naive, &views);
    t.row(vec![
        "naive per-view".into(),
        views.len().to_string(),
        arb.len().to_string(),
        f2(revenue(&naive, &demand)),
    ]);

    // Arbitrage-free weighted coverage, revenue-optimized uniform weight.
    let (opt, opt_rev) = optimize_uniform_pricing(n_attrs, &demand);
    let arb = find_arbitrage(&opt, &views);
    t.row(vec![
        "arbitrage-free (optimized)".into(),
        views.len().to_string(),
        arb.len().to_string(),
        f2(opt_rev),
    ]);

    // A hand-weighted arbitrage-free variant for reference.
    let weighted = WeightedCoveragePricing::new((0..n_attrs).map(|i| 2.0 + i as f64).collect());
    let arb = find_arbitrage(&weighted, &views);
    t.row(vec![
        "arbitrage-free (static)".into(),
        views.len().to_string(),
        arb.len().to_string(),
        f2(revenue(&weighted, &demand)),
    ]);
    let _ = weighted.price(1); // exercise the trait directly
    t.print();
}

/// E11 — §7.1: opportunists fill unmet demand.
fn e11_opportunists() {
    let mut t = ExperimentTable::new(
        "E11  Economic opportunities: opportunistic sellers",
        &["scenario", "fill rate", "welfare", "transactions"],
    );
    for with in [false, true] {
        let scenario = Scenario::opportunist(29, with);
        // Demand an attribute nobody sells at the start.
        let mut workload = scenario.workload();
        for d in &mut workload.demands {
            d.attributes = vec!["exotic_signal".into()];
        }
        let cfg = SimConfig::new(scenario.market.clone(), scenario.rounds);
        let mut sim = Simulation::new(
            cfg,
            workload,
            scenario.buyers.clone(),
            scenario.sellers.clone(),
        );
        let result = sim.run(scenario.rounds);
        t.row(vec![
            scenario.name.clone(),
            pct(result.metrics.fill_rate),
            f2(result.metrics.welfare),
            result.metrics.transactions.to_string(),
        ]);
    }
    t.print();

    // E11b: arbitrageurs (§7.1) — buy, transform, relist, when licenses
    // allow resale.
    let mut tb = ExperimentTable::new(
        "E11b  Arbitrageurs: relisted datasets under resale licenses",
        &["scenario", "relisted datasets", "market datasets end"],
    );
    for resale in [false, true] {
        let w = generate(&WorkloadConfig {
            n_sellers: 4,
            n_buyers: 8,
            n_topics: 2,
            rows: 40,
            seed: 11,
            ..Default::default()
        });
        let mut cfg = SimConfig::new(
            MarketConfig::external(1).with_design(MarketDesign::posted_price_baseline(5.0)),
            5,
        );
        if resale {
            cfg = cfg.with_resale();
        }
        let mut sim = Simulation::new(
            cfg,
            w,
            vec![BuyerStrategy::Truthful],
            vec![
                SellerStrategy::Honest,
                SellerStrategy::Arbitrageur { budget: 100.0 },
            ],
        );
        sim.run(5);
        let relisted = sim
            .market()
            .metadata()
            .entries()
            .iter()
            .filter(|e| e.name.contains("curated"))
            .count();
        tb.row(vec![
            if resale {
                "resale allowed".into()
            } else {
                "standard licenses".into()
            },
            relisted.to_string(),
            sim.market().metadata().len().to_string(),
        ]);
    }
    tb.print();
}

/// E12 — §3.3: internal vs external vs barter configurations.
fn e12_market_kinds() {
    let mut t = ExperimentTable::new(
        "E12  Market design space: same lake, three market kinds",
        &["kind", "transactions", "revenue", "fill rate", "welfare"],
    );
    for (name, market) in [
        ("internal (points)", MarketConfig::internal()),
        (
            "external (money)",
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(20.0)),
        ),
        ("barter (credits)", MarketConfig::barter()),
    ] {
        let result = Scenario::market_kind(13, market, name).run();
        t.row(vec![
            name.into(),
            result.metrics.transactions.to_string(),
            f2(result.metrics.revenue),
            pct(result.metrics.fill_rate),
            f2(result.metrics.welfare),
        ]);
    }
    t.print();
}

/// E13 — §5.3: fusion operators / truth discovery accuracy.
fn e13_fusion() {
    let mut t = ExperimentTable::new(
        "E13  Fusion: value accuracy vs source error rate (200 objects)",
        &[
            "sources",
            "err rate",
            "single src",
            "majority",
            "truth discovery",
        ],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(47);
    for (n_sources, err) in [(3usize, 0.1f64), (5, 0.2), (9, 0.3), (9, 0.4)] {
        let objects = 200usize;
        let truth: Vec<i64> = (0..objects).map(|i| (i % 7) as i64).collect();
        // Source 0 is more reliable, to give truth discovery signal.
        let sources: Vec<_> = (0..n_sources)
            .map(|s| {
                let my_err = if s == 0 { err * 0.5 } else { err };
                let mut b = RelationBuilder::new(format!("src{s}"))
                    .column("obj", DataType::Int)
                    .column("val", DataType::Int);
                for (i, &tv) in truth.iter().enumerate() {
                    let v = if rand::Rng::gen::<f64>(&mut rng) < my_err {
                        tv + 1 + (rand::Rng::gen::<u32>(&mut rng) % 5) as i64
                    } else {
                        tv
                    };
                    b = b.row(vec![Value::Int(i as i64), Value::Int(v)]);
                }
                b.source(DatasetId(s as u64)).build().unwrap()
            })
            .collect();
        let refs: Vec<&dmp_relation::Relation> = sources.iter().collect();
        let fused = align(&refs, "obj", "val").unwrap();

        let accuracy = |rel: &dmp_relation::Relation| -> f64 {
            let mut hits = 0usize;
            for row in rel.rows() {
                let obj = row.get(0).as_i64().unwrap() as usize;
                if row.get(1).as_i64() == Some(truth[obj]) {
                    hits += 1;
                }
            }
            hits as f64 / truth.len() as f64
        };

        let single = accuracy(&sources[1]);
        let majority = accuracy(&resolve(&fused, "val", &FusionStrategy::MajorityVote).unwrap());
        let td = TruthDiscovery::default().run(&fused, "val").unwrap();
        let tdacc = accuracy(&td.resolved);
        t.row(vec![
            n_sources.to_string(),
            pct(err),
            f3(single),
            f3(majority),
            f3(tdacc),
        ]);
    }
    t.print();
}

/// E14 — §4.1: negotiation rounds unlock blocked integrations.
fn e14_negotiation() {
    let mut t = ExperimentTable::new(
        "E14  Negotiation: seller-provided mapping table unlocks attribute d",
        &["phase", "best coverage", "missing", "candidates"],
    );
    // s2 publishes fd = f(d); the buyer wants d itself.
    let ex = intro_example(300, 51);
    let metadata = MetadataEngine::new();
    metadata.register("s2", "seller2", ex.s2.clone());
    let spec = TargetSpec::with_attributes(["a", "d"]);
    {
        let dod = DodEngine::new(&metadata);
        let cands = dod.find_mashups(&spec).unwrap();
        let best_cov = cands.iter().map(|c| c.coverage).fold(0.0, f64::max);
        t.row(vec![
            "before negotiation".into(),
            f2(best_cov),
            "d".into(),
            cands.len().to_string(),
        ]);
    }
    // Negotiation round: the arbiter asks seller2 how to recover d; the
    // seller publishes the fd -> d mapping table.
    let table = {
        let mut b = RelationBuilder::new("fd_to_d")
            .column("fd", DataType::Float)
            .column("d", DataType::Float);
        let fds: Vec<f64> = ex.s2.column_f64("fd").unwrap();
        for fd in fds {
            b = b.row(vec![Value::Float(fd), Value::Float((fd - 32.0) / 1.8)]);
        }
        b.build().unwrap()
    };
    metadata.register("fd_to_d", "seller2", table);
    {
        let dod = DodEngine::new(&metadata);
        let cands = dod.find_mashups(&spec).unwrap();
        let best_cov = cands.iter().map(|c| c.coverage).fold(0.0, f64::max);
        t.row(vec![
            "after mapping table".into(),
            f2(best_cov),
            if best_cov >= 1.0 {
                "-".into()
            } else {
                "d".into()
            },
            cands.len().to_string(),
        ]);
    }
    t.print();
}

/// E15 — §4.1 services: CF recommendations vs popularity baseline.
fn e15_recommendations() {
    use dmp_core::arbiter::services::{recommend, recommend_popular, Purchase};
    let mut rng = rand::rngs::StdRng::seed_from_u64(61);
    // 100 buyers, 30 datasets in 6 taste clusters of 5.
    let n_buyers = 100usize;
    let clusters = 6usize;
    let per_cluster = 5usize;
    let mut history: Vec<Purchase> = Vec::new();
    let mut holdout: HashMap<String, DatasetId> = HashMap::new();
    for b in 0..n_buyers {
        let cluster = b % clusters;
        let base = (cluster * per_cluster) as u64;
        // Buys 3 random datasets from its cluster; holds out a 4th.
        let mut picks: Vec<u64> = (0..per_cluster as u64).collect();
        use rand::seq::SliceRandom;
        picks.shuffle(&mut rng);
        let buyer = format!("buyer{b}");
        let bought: Vec<DatasetId> = picks[..3].iter().map(|&p| DatasetId(base + p)).collect();
        holdout.insert(buyer.clone(), DatasetId(base + picks[3]));
        history.push(Purchase {
            buyer,
            datasets: bought,
        });
    }
    let mut cf_hits = 0usize;
    let mut pop_hits = 0usize;
    for (buyer, held) in &holdout {
        if recommend(&history, buyer, 3).contains(held) {
            cf_hits += 1;
        }
        if recommend_popular(&history, buyer, 3).contains(held) {
            pop_hits += 1;
        }
    }
    let mut t = ExperimentTable::new(
        "E15  Recommendations: hit-rate@3 on held-out purchases",
        &["method", "hit rate"],
    );
    t.row(vec![
        "item-based CF".into(),
        pct(cf_hits as f64 / n_buyers as f64),
    ]);
    t.row(vec![
        "popularity".into(),
        pct(pop_hits as f64 / n_buyers as f64),
    ]);
    t.print();
}

/// E16 — §4.4: exclusive licensing creates scarcity and a tax.
fn e16_licensing() {
    let mut t = ExperimentTable::new(
        "E16  Licensing: exclusivity tax and denial-of-access",
        &[
            "license",
            "buyer1 price",
            "buyer2 same-round",
            "buyer2 after hold",
        ],
    );
    for exclusive in [false, true] {
        let market = DataMarket::new(
            MarketConfig::external(67).with_design(MarketDesign::posted_price_baseline(20.0)),
        );
        let seller = market.seller("s");
        let mut b = RelationBuilder::new("signal").column("x", DataType::Int);
        for i in 0..50 {
            b = b.row(vec![Value::Int(i)]);
        }
        let id = seller.share(b.build().unwrap()).unwrap();
        if exclusive {
            seller
                .set_license(
                    id,
                    License::Exclusive {
                        tax_rate: 0.5,
                        hold_rounds: 2,
                    },
                )
                .unwrap();
        }
        let b1 = market.buyer("b1");
        b1.deposit(1_000.0);
        let b2 = market.buyer("b2");
        b2.deposit(1_000.0);
        market
            .submit_wtp(WtpFunction::simple("b1", ["x"], PriceCurve::Constant(60.0)))
            .unwrap();
        let r1 = market.run_round();
        let b1_price = r1.sales.first().map(|s| s.price).unwrap_or(0.0);
        let offer2 = market
            .submit_wtp(WtpFunction::simple("b2", ["x"], PriceCurve::Constant(60.0)))
            .unwrap();
        let r2 = market.run_round();
        let b2_now = if r2.sales.iter().any(|s| s.buyer == "b2") {
            "served"
        } else {
            "DENIED"
        };
        // run past the hold
        market.run_round();
        market.run_round();
        let b2_later = if matches!(
            market.offer(offer2).map(|o| o.state),
            Some(dmp_core::market::OfferState::Fulfilled { .. })
        ) {
            "served"
        } else {
            "DENIED"
        };
        t.row(vec![
            if exclusive {
                "exclusive(+50%, 2 rounds)".into()
            } else {
                "standard".into()
            },
            f2(b1_price),
            b2_now.into(),
            b2_later.into(),
        ]);
    }
    t.print();
}

/// SVC — service-layer perf baseline: gateway throughput at 1/4/16/64
/// concurrent connections (plus a 64-deep pipelined series) and
/// journal replay speed. Emits `BENCH_service.json` so later PRs can
/// diff against this trajectory.
fn svc_service_baseline() {
    use dmp_service::client::Client;
    use dmp_service::command::{AskSpec, CellSpec, ColType, Command, OfferSpec, TableSpec};
    use dmp_service::gateway::{Gateway, GatewayConfig};
    use dmp_service::node::{ServiceConfig, ServiceNode};
    use dmp_service::wire::Json;
    use std::sync::Arc;

    let tmp = |name: &str| {
        let dir = std::env::temp_dir().join(format!("dmp-exp-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    };
    let service_config = |dir: std::path::PathBuf| {
        let market =
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0));
        ServiceConfig::new(dir, market)
            .with_shards(4)
            .with_fsync(false)
            .with_snapshot_every(0)
    };

    let mut t = ExperimentTable::new(
        "SVC  dmp-service baseline: gateway + journal replay",
        &["metric", "config", "throughput"],
    );
    let mut json_rows: Vec<(String, Json)> = Vec::new();

    // Gateway read path at increasing connection counts.
    let node = Arc::new(ServiceNode::open(service_config(tmp("svc-gw"))).unwrap());
    let gateway = Gateway::serve(
        Arc::clone(&node),
        GatewayConfig {
            workers: 16,
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    let addr = gateway.addr();
    // Request/response (one in-flight request per connection) at
    // increasing connection counts. Connections are multiplexed over a
    // bounded pool of driver threads (as wrk does): each thread writes
    // one request on every socket it owns, then reads every response —
    // so concurrency measures the *server's* multiplexing, not how
    // many client threads the box can context-switch. Each point is a
    // timed window (connections pre-established, threads released by a
    // barrier) and the best of three trials, to keep scheduler noise on
    // a small shared box out of the trajectory.
    let measure_conns = |conns: usize| -> f64 {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        use std::sync::Barrier;
        // Two driver threads saturate the evented server on this box;
        // more merely multiply client-side context switches.
        let threads = conns.min(2);
        let per_thread = conns / threads;
        let barrier = Arc::new(Barrier::new(threads + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let stop = Arc::clone(&stop);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    use std::io::{BufReader, Write};
                    let req = b"GET /health HTTP/1.1\r\nhost: bench\r\ncontent-length: 0\r\n\r\n";
                    let mut socks: Vec<_> = (0..per_thread)
                        .map(|_| {
                            let s = std::net::TcpStream::connect(addr).unwrap();
                            s.set_nodelay(true).unwrap();
                            let w = s.try_clone().unwrap();
                            (BufReader::new(s), w)
                        })
                        .collect();
                    barrier.wait();
                    let mut count = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        for (_, w) in &mut socks {
                            w.write_all(req).unwrap();
                        }
                        for (r, _) in &mut socks {
                            let (status, _, _) = dmp_service::http::read_response_full(r).unwrap();
                            assert_eq!(status, 200);
                        }
                        count += socks.len();
                    }
                    total.fetch_add(count, Ordering::Relaxed);
                })
            })
            .collect();
        barrier.wait();
        let started = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        // The elapsed clock runs until every in-flight round drains, so
        // the tail requests are inside the window they are divided by.
        total.load(Ordering::Relaxed) as f64 / started.elapsed().as_secs_f64()
    };
    // Request-latency quantiles ride along for free: the reactor
    // records every request into the telemetry histograms, so the
    // bench snapshots them around each workload and reports the
    // delta's p50/p99 next to the throughput number.
    let metrics = dmp_service::metrics::metrics();
    let health_before = metrics
        .request_us(dmp_service::metrics::Endpoint::Health)
        .snapshot();
    for conns in [1usize, 4, 16, 64] {
        let rps = (0..5)
            .map(|_| measure_conns(conns))
            .fold(f64::MIN, f64::max);
        t.row(vec![
            "gateway GET /health".into(),
            format!("{conns} conn(s)"),
            format!("{} req/s", f2(rps)),
        ]);
        json_rows.push((format!("gateway_health_rps_{conns}conn"), Json::Num(rps)));
    }
    // HTTP/1.1 pipelining: one connection, requests batched 64 deep —
    // one write and one ordered read-out per batch instead of one
    // round trip per request. Same timed-window, best-of-three shape.
    {
        use dmp_service::client::PipelinedRequest;
        const BATCH: usize = 64;
        let batch: Vec<PipelinedRequest> = (0..BATCH)
            .map(|_| PipelinedRequest::get("/health"))
            .collect();
        let measure_pipelined = || -> f64 {
            let mut c = Client::connect(addr).unwrap();
            let started = std::time::Instant::now();
            let mut count = 0usize;
            while started.elapsed() < std::time::Duration::from_millis(400) {
                let responses = c.pipeline(&batch).unwrap();
                assert_eq!(responses.len(), BATCH);
                count += BATCH;
            }
            count as f64 / started.elapsed().as_secs_f64()
        };
        let rps = (0..5).map(|_| measure_pipelined()).fold(f64::MIN, f64::max);
        t.row(vec![
            "gateway GET /health (pipelined)".into(),
            format!("1 conn, {BATCH}-deep"),
            format!("{} req/s", f2(rps)),
        ]);
        json_rows.push(("gateway_pipelined_rps".into(), Json::Num(rps)));
    }
    // p50/p99 over every /health request the benches above issued.
    let health = metrics
        .request_us(dmp_service::metrics::Endpoint::Health)
        .snapshot()
        .delta_since(&health_before);
    let (h50, h99) = (health.quantile(0.5), health.quantile(0.99));
    t.row(vec![
        "gateway GET /health latency".into(),
        format!("{} requests", health.count()),
        format!("p50 {h50}us / p99 {h99}us"),
    ]);
    json_rows.push(("gateway_health_p50_us".into(), Json::Num(h50 as f64)));
    json_rows.push(("gateway_health_p99_us".into(), Json::Num(h99 as f64)));
    // Journaled mutation path (every request is a WAL append + apply).
    let mut c = Client::connect(addr).unwrap();
    c.post(
        "/enroll",
        &Json::parse(r#"{"name":"d","role":"buyer"}"#).unwrap(),
    )
    .unwrap();
    const DEPOSITS: usize = 512;
    let deposit_before = metrics
        .request_us(dmp_service::metrics::Endpoint::Deposits)
        .snapshot();
    let body = Json::parse(r#"{"account":"d","amount":1.0}"#).unwrap();
    let (_, ms) = time_ms(|| {
        for _ in 0..DEPOSITS {
            c.post("/deposits", &body).unwrap();
        }
    });
    let wps = DEPOSITS as f64 / (ms / 1e3);
    t.row(vec![
        "gateway POST /deposits (journaled)".into(),
        "1 conn".into(),
        format!("{} req/s", f2(wps)),
    ]);
    json_rows.push(("gateway_deposit_rps_1conn".into(), Json::Num(wps)));
    let deposit = metrics
        .request_us(dmp_service::metrics::Endpoint::Deposits)
        .snapshot()
        .delta_since(&deposit_before);
    let (d50, d99) = (deposit.quantile(0.5), deposit.quantile(0.99));
    t.row(vec![
        "gateway POST /deposits latency".into(),
        format!("{} requests", deposit.count()),
        format!("p50 {d50}us / p99 {d99}us"),
    ]);
    json_rows.push(("gateway_deposit_p50_us".into(), Json::Num(d50 as f64)));
    json_rows.push(("gateway_deposit_p99_us".into(), Json::Num(d99 as f64)));
    gateway.shutdown();

    // Journal replay: rebuild 16 populated rounds from the WAL.
    let dir = tmp("svc-replay");
    let cfg = service_config(dir.clone());
    const ROUNDS: usize = 16;
    {
        let node = ServiceNode::open(cfg.clone()).unwrap();
        for i in 0..4 {
            node.apply(Command::Enroll {
                name: format!("s{i}"),
                role: "seller".into(),
            })
            .unwrap();
            node.apply(Command::Enroll {
                name: format!("b{i}"),
                role: "buyer".into(),
            })
            .unwrap();
            node.apply(Command::Deposit {
                account: format!("b{i}"),
                amount: 1000.0,
            })
            .unwrap();
        }
        for round in 0..ROUNDS {
            for i in 0..4 {
                let _ = node.apply(Command::SubmitAsk(AskSpec {
                    seller: format!("s{i}"),
                    table: TableSpec {
                        name: format!("t{round}_{i}"),
                        columns: vec![("k".into(), ColType::Int), ("v".into(), ColType::Float)],
                        rows: (0..6)
                            .map(|r| vec![CellSpec::Int(r), CellSpec::Float(r as f64 * 1.5)])
                            .collect(),
                    },
                    reserve: None,
                    license: None,
                }));
                let _ = node.apply(Command::SubmitOffer(OfferSpec::simple(
                    format!("b{i}"),
                    ["k", "v"],
                    15.0,
                )));
            }
            node.apply(Command::RunRound { rounds: 1 }).unwrap();
        }
    }
    let (applied, ms) = time_ms(|| ServiceNode::open(cfg.clone()).unwrap().applied());
    let rounds_per_s = ROUNDS as f64 / (ms / 1e3);
    let cmds_per_s = applied as f64 / (ms / 1e3);
    t.row(vec![
        "journal replay".into(),
        format!("{ROUNDS} rounds, {applied} cmds"),
        format!("{} rounds/s ({} cmds/s)", f2(rounds_per_s), f2(cmds_per_s)),
    ]);
    json_rows.push((
        "journal_replay_rounds_per_s".into(),
        Json::Num(rounds_per_s),
    ));
    json_rows.push(("journal_replay_cmds_per_s".into(), Json::Num(cmds_per_s)));

    // Recovery scaling: with materialized snapshots + journal
    // compaction (`keep_snapshots(1)`), recovery time is O(state +
    // journal tail), not O(total history). The probe holds the *state*
    // constant (deposit churn over a fixed account set — balances
    // change, nothing accumulates) while the command history grows 8x:
    // the compacted journal never holds more than ~snapshot_every
    // records, so both recoveries restore the same small snapshot plus
    // a bounded tail and must land within a constant factor of each
    // other. CI asserts that ratio and that the long run's journal
    // stayed bounded after compaction.
    {
        let recovery_probe = |name: &str, deposits: usize| -> (f64, u64, u64) {
            let cfg = service_config(tmp(name))
                .with_snapshot_every(64)
                .with_keep_snapshots(1);
            {
                let node = ServiceNode::open(cfg.clone()).unwrap();
                for i in 0..4 {
                    node.apply(Command::Enroll {
                        name: format!("b{i}"),
                        role: "buyer".into(),
                    })
                    .unwrap();
                }
                for d in 0..deposits {
                    node.apply(Command::Deposit {
                        account: format!("b{}", d % 4),
                        amount: 1.0 + (d % 97) as f64 / 7.0,
                    })
                    .unwrap();
                }
            }
            let journal_bytes = std::fs::metadata(cfg.dir.join("journal.wal"))
                .expect("journal must exist")
                .len();
            // Best of three: recovery is milliseconds, so one scheduler
            // hiccup would otherwise dominate the ratio CI checks.
            let mut best = f64::MAX;
            let mut applied = 0u64;
            for _ in 0..3 {
                let (a, ms) = time_ms(|| ServiceNode::open(cfg.clone()).unwrap().applied());
                applied = a;
                if ms < best {
                    best = ms;
                }
            }
            (best, journal_bytes, applied)
        };
        const SHORT_DEPOSITS: usize = 256;
        const LONG_DEPOSITS: usize = 2048;
        let (short_ms, _, short_applied) = recovery_probe("svc-recovery-short", SHORT_DEPOSITS);
        let (long_ms, long_journal, long_applied) =
            recovery_probe("svc-recovery-long", LONG_DEPOSITS);
        t.row(vec![
            "recovery (short history)".into(),
            format!("{short_applied} cmds journaled, compacted"),
            format!("{} ms", f2(short_ms)),
        ]);
        t.row(vec![
            "recovery (long history)".into(),
            format!("{long_applied} cmds journaled, compacted"),
            format!("{} ms ({} B journal)", f2(long_ms), long_journal),
        ]);
        json_rows.push(("recovery_ms_short_history".into(), Json::Num(short_ms)));
        json_rows.push(("recovery_ms_long_history".into(), Json::Num(long_ms)));
        json_rows.push((
            "journal_bytes_after_compaction".into(),
            Json::Num(long_journal as f64),
        ));
    }

    // Two-phase cross-shard exchange throughput: a 4-shard router with
    // buyers and sellers scattered across shards, fresh offers every
    // round, candidate phase shard-parallel, one global clearing pass,
    // ordered settlement on the shared ledger.
    {
        use dmp_service::shard::ShardRouter;
        let market =
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0));
        let router = ShardRouter::new(&market, 4);
        for i in 0..8 {
            router
                .apply(&Command::Enroll {
                    name: format!("s{i}"),
                    role: "seller".into(),
                })
                .unwrap();
            router
                .apply(&Command::Enroll {
                    name: format!("b{i}"),
                    role: "buyer".into(),
                })
                .unwrap();
            router
                .apply(&Command::Deposit {
                    account: format!("b{i}"),
                    amount: 1e6,
                })
                .unwrap();
            let _ = router.apply(&Command::SubmitAsk(AskSpec {
                seller: format!("s{i}"),
                table: TableSpec {
                    name: format!("t{i}"),
                    columns: vec![("k".into(), ColType::Int), ("v".into(), ColType::Float)],
                    rows: (0..6)
                        .map(|r| vec![CellSpec::Int(r), CellSpec::Float(r as f64 * 1.5)])
                        .collect(),
                },
                reserve: None,
                license: None,
            }));
        }
        const XROUNDS: usize = 64;
        let mut cross_trades = 0usize;
        let (_, ms) = time_ms(|| {
            for round in 0..XROUNDS {
                for i in 0..8 {
                    let _ = router.apply(&Command::SubmitOffer(OfferSpec::simple(
                        format!("b{}", (round + i) % 8),
                        ["k", "v"],
                        15.0,
                    )));
                }
                cross_trades += router.run_round().cross_shard;
            }
        });
        let xrps = XROUNDS as f64 / (ms / 1e3);
        t.row(vec![
            "cross-shard exchange round".into(),
            format!("4 shards, 8 offers/round, {cross_trades} cross-shard trades"),
            format!("{} rounds/s", f2(xrps)),
        ]);
        json_rows.push(("cross_shard_rounds_per_s".into(), Json::Num(xrps)));
    }

    // Distributed topology: the same two-phase exchange, but with the
    // candidate phase farmed out to three full-replica workers over
    // real loopback sockets and settlement re-executed on every
    // replica. Workers are in-process [`WorkerNode`]s behind their own
    // gateways — the wire cost is real, the process-spawn cost is not
    // what this row measures. The conflict-component quantile rides
    // along from the same rounds.
    {
        use dmp_service::coordinator::WorkerPool;
        use dmp_service::shard::Outcome;
        use dmp_service::worker::{WorkerConfig, WorkerNode};

        let market =
            MarketConfig::external(3).with_design(MarketDesign::posted_price_baseline(10.0));
        let node = Arc::new(ServiceNode::open(service_config(tmp("svc-dist"))).unwrap());
        let worker_gateways: Vec<Gateway> = (0..3)
            .map(|_| {
                let worker = Arc::new(WorkerNode::new(WorkerConfig::new(market.clone(), 4)));
                Gateway::serve_service(
                    worker,
                    GatewayConfig {
                        addr: "127.0.0.1:0".into(),
                        ..GatewayConfig::default()
                    },
                )
                .unwrap()
            })
            .collect();
        let addrs: Vec<_> = worker_gateways.iter().map(|g| g.addr()).collect();
        let pool = Arc::new(WorkerPool::connect(node.fingerprint(), 4, &addrs).unwrap());
        assert_eq!(pool.provision_all(&node), 3, "all bench workers provision");
        WorkerPool::attach(&pool, &node);
        for i in 0..8 {
            node.apply(Command::Enroll {
                name: format!("s{i}"),
                role: "seller".into(),
            })
            .unwrap();
            node.apply(Command::Enroll {
                name: format!("b{i}"),
                role: "buyer".into(),
            })
            .unwrap();
            node.apply(Command::Deposit {
                account: format!("b{i}"),
                amount: 1e6,
            })
            .unwrap();
            let _ = node.apply(Command::SubmitAsk(AskSpec {
                seller: format!("s{i}"),
                table: TableSpec {
                    name: format!("t{i}"),
                    columns: vec![("k".into(), ColType::Int), ("v".into(), ColType::Float)],
                    rows: (0..6)
                        .map(|r| vec![CellSpec::Int(r), CellSpec::Float(r as f64 * 1.5)])
                        .collect(),
                },
                reserve: None,
                license: None,
            }));
        }
        const DROUNDS: usize = 32;
        let mut components: Vec<usize> = Vec::new();
        let (_, ms) = time_ms(|| {
            for round in 0..DROUNDS {
                for i in 0..8 {
                    let _ = node.apply(Command::SubmitOffer(OfferSpec::simple(
                        format!("b{}", (round + i) % 8),
                        ["k", "v"],
                        15.0,
                    )));
                }
                if let Ok(Outcome::RoundsRun(reports)) = node.apply(Command::RunRound { rounds: 1 })
                {
                    components.extend(reports.iter().map(|r| r.components));
                }
            }
        });
        assert_eq!(pool.live_workers(), 3, "no bench worker may drop out");
        components.sort_unstable();
        let components_p50 = components.get(components.len() / 2).copied().unwrap_or(0);
        let drps = DROUNDS as f64 / (ms / 1e3);
        t.row(vec![
            "distributed exchange round".into(),
            format!("1 coordinator + 3 workers over sockets, {DROUNDS} rounds"),
            format!("{} rounds/s", f2(drps)),
        ]);
        t.row(vec![
            "settlement conflict components".into(),
            format!("p50 over {} rounds", components.len()),
            format!("{components_p50} components"),
        ]);
        json_rows.push(("distributed_rounds_per_s".into(), Json::Num(drps)));
        json_rows.push((
            "settlement_components_p50".into(),
            Json::Num(components_p50 as f64),
        ));
        for gateway in worker_gateways {
            gateway.shutdown();
        }
    }
    t.print();

    let out = Json::Obj(json_rows).dump();
    std::fs::write("BENCH_service.json", &out).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json: {out}\n");
}
