//! # dmp-bench
//!
//! Shared harness utilities for the experiment suite (DESIGN.md §2).
//! Criterion benches live in `benches/`; the `experiments` binary prints
//! the per-experiment tables recorded in EXPERIMENTS.md.

pub mod harness;

pub use harness::{table, ExperimentTable};
