//! Shared experiment harness: table building + quick timing helpers used
//! by the `experiments` binary and the Criterion benches.

use std::time::Instant;

pub use dmp_simulator::report::{f2, f3, pct, render_table};

/// A growing experiment table printed at the end of a run.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ExperimentTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        render_table(&self.title, &headers, &self.rows)
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Build a convenience table in one call.
pub fn table(title: &str, headers: &[&str], rows: Vec<Vec<String>>) -> String {
    render_table(title, headers, &rows)
}

/// Time a closure, returning `(result, milliseconds)`.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_accumulates_rows() {
        let mut t = ExperimentTable::new("t", &["a", "b"]);
        assert!(t.is_empty());
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("== t =="));
    }

    #[test]
    fn timing_returns_result() {
        let (v, ms) = time_ms(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }
}
