//! Cached [`dmp_telemetry`] handles for every instrumented service
//! layer.
//!
//! All handles are resolved once, on first use, into one
//! [`ServiceMetrics`] singleton — after that the hot paths (reactor,
//! apply pool, journal, round pipeline) touch only relaxed atomics and
//! never the registry mutex. `GET /metrics` renders the global
//! registry on the reactor thread; because recording is handle-based,
//! rendering can never contend with the WAL or apply-pool locks.

use std::sync::{Arc, OnceLock};

use dmp_telemetry::{global, Counter, Gauge, Histogram};

use crate::command::Command;

/// The request endpoints latency and counts are broken out by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /health` (inline on the reactor).
    Health,
    /// `GET /metrics` (inline on the reactor).
    Metrics,
    /// `GET /trace` (inline on the reactor).
    Trace,
    /// `GET /ledger` and `GET /ledger/:name`.
    Ledger,
    /// `POST /enroll`.
    Enroll,
    /// `POST /deposits`.
    Deposits,
    /// `POST /offers`.
    Offers,
    /// `POST /asks`.
    Asks,
    /// `POST /licenses`.
    Licenses,
    /// `POST /rounds`.
    Rounds,
    /// `POST /snapshot`.
    Snapshot,
    /// Anything else (404s, bad methods).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 12] = [
        Endpoint::Health,
        Endpoint::Metrics,
        Endpoint::Trace,
        Endpoint::Ledger,
        Endpoint::Enroll,
        Endpoint::Deposits,
        Endpoint::Offers,
        Endpoint::Asks,
        Endpoint::Licenses,
        Endpoint::Rounds,
        Endpoint::Snapshot,
        Endpoint::Other,
    ];

    /// Classify a request path (the label every request series uses).
    pub fn of(path: &str) -> Endpoint {
        match path {
            "/health" => Endpoint::Health,
            "/metrics" => Endpoint::Metrics,
            "/trace" => Endpoint::Trace,
            "/enroll" => Endpoint::Enroll,
            "/deposits" => Endpoint::Deposits,
            "/offers" => Endpoint::Offers,
            "/asks" => Endpoint::Asks,
            "/licenses" => Endpoint::Licenses,
            "/rounds" => Endpoint::Rounds,
            "/snapshot" => Endpoint::Snapshot,
            p if p == "/ledger" || p.starts_with("/ledger/") => Endpoint::Ledger,
            _ => Endpoint::Other,
        }
    }

    /// Stable label value (also the tracer span name for apply jobs).
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Health => "/health",
            Endpoint::Metrics => "/metrics",
            Endpoint::Trace => "/trace",
            Endpoint::Ledger => "/ledger",
            Endpoint::Enroll => "/enroll",
            Endpoint::Deposits => "/deposits",
            Endpoint::Offers => "/offers",
            Endpoint::Asks => "/asks",
            Endpoint::Licenses => "/licenses",
            Endpoint::Rounds => "/rounds",
            Endpoint::Snapshot => "/snapshot",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL
            .iter()
            .position(|e| *e == self)
            .expect("every endpoint is in ALL")
    }
}

/// The command kinds apply time is broken out by.
pub fn command_kind(cmd: &Command) -> &'static str {
    match cmd {
        Command::Enroll { .. } => "enroll",
        Command::Deposit { .. } => "deposit",
        Command::SubmitOffer(_) => "offer",
        Command::SubmitAsk(_) => "ask",
        Command::GrantLicense { .. } => "license",
        Command::RunRound { .. } => "run_round",
    }
}

const COMMAND_KINDS: [&str; 6] = ["enroll", "deposit", "offer", "ask", "license", "run_round"];

/// The cross-shard round phases (see `ShardRouter::run_round`).
pub(crate) const ROUND_PHASES: [&str; 4] = ["candidates", "exchange", "settlement", "close"];

/// Every metric handle the service records into.
pub struct ServiceMetrics {
    /// `dmp_gateway_accepts_total`.
    pub gateway_accepts: Arc<Counter>,
    /// `dmp_gateway_connections` (currently open).
    pub gateway_connections: Arc<Gauge>,
    requests: Vec<Arc<Counter>>,
    request_us: Vec<Arc<Histogram>>,
    /// `dmp_gateway_pipeline_depth` (in-flight requests per connection,
    /// sampled at parse time).
    pub pipeline_depth: Arc<Histogram>,
    /// `dmp_gateway_backpressure_stalls_total` (read-interest drops).
    pub backpressure_stalls: Arc<Counter>,
    /// `dmp_gateway_idle_reaps_total` (timer-wheel closes).
    pub idle_reaps: Arc<Counter>,
    /// `dmp_gateway_parse_errors_total`.
    pub parse_errors: Arc<Counter>,
    /// `dmp_apply_queue_depth` (jobs queued to the apply pool).
    pub apply_queue_depth: Arc<Gauge>,
    /// `dmp_apply_queue_wait_us` (parse → dequeue).
    pub apply_queue_wait_us: Arc<Histogram>,
    apply_us: Vec<Arc<Histogram>>,
    /// `dmp_journal_appends_total`.
    pub journal_appends: Arc<Counter>,
    /// `dmp_journal_bytes_total` (framed bytes written).
    pub journal_bytes: Arc<Counter>,
    /// `dmp_journal_append_us` (frame + write + flush + fsync).
    pub journal_append_us: Arc<Histogram>,
    /// `dmp_journal_fsync_us` (the `fdatasync` alone).
    pub journal_fsync_us: Arc<Histogram>,
    /// `dmp_journal_poisoned_total` (failed rollbacks).
    pub journal_poisoned: Arc<Counter>,
    /// `dmp_snapshot_writes_total`.
    pub snapshot_writes: Arc<Counter>,
    /// `dmp_snapshot_failures_total`.
    pub snapshot_failures: Arc<Counter>,
    /// `dmp_snapshot_write_us`.
    pub snapshot_write_us: Arc<Histogram>,
    /// `dmp_snapshot_bytes_total` (encoded snapshot file bytes written).
    pub snapshot_bytes: Arc<Counter>,
    /// `dmp_snapshot_pruned_total` (superseded snapshots removed under
    /// the retention knob).
    pub snapshots_pruned: Arc<Counter>,
    /// `dmp_journal_compactions_total` (prefix truncations after a
    /// verified durable snapshot).
    pub journal_compactions: Arc<Counter>,
    /// `dmp_journal_compacted_bytes_total` (journal bytes dropped by
    /// prefix truncation).
    pub journal_compacted_bytes: Arc<Counter>,
    /// `dmp_recovery_replay_us` (whole `ServiceNode::open` recovery).
    pub recovery_replay_us: Arc<Histogram>,
    /// `dmp_recovery_snapshot_verified_total` (digest matched).
    pub recovery_snapshot_verified: Arc<Counter>,
    /// `dmp_recovery_snapshot_rejected_total` (digest mismatch; fell
    /// back to full journal replay).
    pub recovery_snapshot_rejected: Arc<Counter>,
    /// `dmp_rounds_total` (cross-shard rounds completed).
    pub rounds_total: Arc<Counter>,
    round_phase_us: Vec<Arc<Histogram>>,
    /// `dmp_round_cross_shard_sales_total`.
    pub cross_shard_sales: Arc<Counter>,
    /// `dmp_round_settlement_components` (conflict components per round).
    pub settlement_components: Arc<Histogram>,
    worker_rpc_us: Vec<Arc<Histogram>>,
    /// `dmp_worker_rpc_failures_total` (RPCs that errored; the worker is
    /// marked dead and its shards re-dispatched).
    pub worker_rpc_failures: Arc<Counter>,
    /// `dmp_worker_redispatch_total` (shard candidate computations
    /// re-dispatched to another worker after a failure).
    pub worker_redispatch: Arc<Counter>,
}

/// The internal coordinator→worker RPCs latency is broken out by.
pub(crate) const WORKER_RPCS: [&str; 5] = ["apply", "candidates", "settle", "digest", "restore"];

/// The process-global service metrics (handles resolved on first use).
pub fn metrics() -> &'static ServiceMetrics {
    static M: OnceLock<ServiceMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = global();
        ServiceMetrics {
            gateway_accepts: r.counter(
                "dmp_gateway_accepts_total",
                "Connections accepted by the reactor.",
            ),
            gateway_connections: r.gauge(
                "dmp_gateway_connections",
                "Connections currently registered with the reactor.",
            ),
            requests: Endpoint::ALL
                .iter()
                .map(|e| {
                    r.counter(
                        &format!("dmp_gateway_requests_total{{endpoint=\"{}\"}}", e.label()),
                        "Requests completed, by endpoint.",
                    )
                })
                .collect(),
            request_us: Endpoint::ALL
                .iter()
                .map(|e| {
                    r.histogram(
                        &format!("dmp_gateway_request_us{{endpoint=\"{}\"}}", e.label()),
                        "Request wall latency (parse to response ready), microseconds.",
                    )
                })
                .collect(),
            pipeline_depth: r.histogram(
                "dmp_gateway_pipeline_depth",
                "In-flight pipelined requests per connection, sampled at parse time.",
            ),
            backpressure_stalls: r.counter(
                "dmp_gateway_backpressure_stalls_total",
                "Times the reactor stopped reading a socket at the pipeline cap.",
            ),
            idle_reaps: r.counter(
                "dmp_gateway_idle_reaps_total",
                "Idle connections closed by the timer wheel.",
            ),
            parse_errors: r.counter(
                "dmp_gateway_parse_errors_total",
                "Requests rejected by the HTTP parser.",
            ),
            apply_queue_depth: r.gauge(
                "dmp_apply_queue_depth",
                "Jobs queued to the apply pool, not yet picked up.",
            ),
            apply_queue_wait_us: r.histogram(
                "dmp_apply_queue_wait_us",
                "Time a job waited in the apply queue, microseconds.",
            ),
            apply_us: COMMAND_KINDS
                .iter()
                .map(|k| {
                    r.histogram(
                        &format!("dmp_apply_us{{kind=\"{k}\"}}"),
                        "Command apply time (journal append + market mutation), microseconds.",
                    )
                })
                .collect(),
            journal_appends: r.counter("dmp_journal_appends_total", "Journal records appended."),
            journal_bytes: r.counter(
                "dmp_journal_bytes_total",
                "Framed journal bytes written (length prefix + CRC + payload).",
            ),
            journal_append_us: r.histogram(
                "dmp_journal_append_us",
                "Full journal append (encode + verify + write + flush + fsync), microseconds.",
            ),
            journal_fsync_us: r.histogram(
                "dmp_journal_fsync_us",
                "The fdatasync portion of a journal append, microseconds.",
            ),
            journal_poisoned: r.counter(
                "dmp_journal_poisoned_total",
                "Failed append rollbacks that poisoned the journal.",
            ),
            snapshot_writes: r.counter("dmp_snapshot_writes_total", "Snapshots written."),
            snapshot_failures: r.counter(
                "dmp_snapshot_failures_total",
                "Snapshot writes that failed (node continues on the journal).",
            ),
            snapshot_write_us: r.histogram(
                "dmp_snapshot_write_us",
                "Snapshot write (serialize + tmp + fsync + rename), microseconds.",
            ),
            snapshot_bytes: r.counter(
                "dmp_snapshot_bytes_total",
                "Encoded snapshot file bytes written.",
            ),
            snapshots_pruned: r.counter(
                "dmp_snapshot_pruned_total",
                "Superseded snapshots removed under the retention knob.",
            ),
            journal_compactions: r.counter(
                "dmp_journal_compactions_total",
                "Journal prefix truncations after a verified durable snapshot.",
            ),
            journal_compacted_bytes: r.counter(
                "dmp_journal_compacted_bytes_total",
                "Journal bytes dropped by prefix truncation.",
            ),
            recovery_replay_us: r.histogram(
                "dmp_recovery_replay_us",
                "Crash recovery (snapshot load + digest verify + journal replay), microseconds.",
            ),
            recovery_snapshot_verified: r.counter(
                "dmp_recovery_snapshot_verified_total",
                "Recoveries whose snapshot digest verified.",
            ),
            recovery_snapshot_rejected: r.counter(
                "dmp_recovery_snapshot_rejected_total",
                "Recoveries that rejected a snapshot (digest mismatch) and replayed the full journal.",
            ),
            rounds_total: r.counter("dmp_rounds_total", "Cross-shard rounds completed."),
            round_phase_us: ROUND_PHASES
                .iter()
                .map(|p| {
                    r.histogram(
                        &format!("dmp_round_phase_us{{phase=\"{p}\"}}"),
                        "Wall time of one cross-shard round phase, microseconds.",
                    )
                })
                .collect(),
            cross_shard_sales: r.counter(
                "dmp_round_cross_shard_sales_total",
                "Settled sales whose mashup crossed a shard boundary.",
            ),
            settlement_components: r.histogram(
                "dmp_round_settlement_components",
                "Conflict components the round's cleared sales partitioned into.",
            ),
            worker_rpc_us: WORKER_RPCS
                .iter()
                .map(|rpc| {
                    r.histogram(
                        &format!("dmp_worker_rpc_us{{rpc=\"{rpc}\"}}"),
                        "Coordinator-side wall latency of one worker RPC, microseconds.",
                    )
                })
                .collect(),
            worker_rpc_failures: r.counter(
                "dmp_worker_rpc_failures_total",
                "Worker RPCs that failed (the worker is marked dead).",
            ),
            worker_redispatch: r.counter(
                "dmp_worker_redispatch_total",
                "Shard candidate computations re-dispatched after a worker failure.",
            ),
        }
    })
}

impl ServiceMetrics {
    /// Count one completed request and record its wall latency.
    pub fn record_request(&self, endpoint: Endpoint, elapsed: std::time::Duration) {
        let i = endpoint.index();
        self.requests[i].inc();
        self.request_us[i].record_duration_us(elapsed);
    }

    /// The request-latency histogram for one endpoint (benches read
    /// quantiles from its snapshots).
    pub fn request_us(&self, endpoint: Endpoint) -> &Histogram {
        &self.request_us[endpoint.index()]
    }

    /// The request counter for one endpoint.
    pub fn requests_total(&self, endpoint: Endpoint) -> u64 {
        self.requests[endpoint.index()].get()
    }

    /// The apply-time histogram for one command.
    pub fn apply_us(&self, cmd: &Command) -> &Histogram {
        let kind = command_kind(cmd);
        let i = COMMAND_KINDS
            .iter()
            .position(|k| *k == kind)
            .expect("every kind is in COMMAND_KINDS");
        &self.apply_us[i]
    }

    /// The phase-time histogram for one round phase (index into
    /// [`ROUND_PHASES`]).
    pub(crate) fn round_phase_us(&self, phase: usize) -> &Histogram {
        &self.round_phase_us[phase]
    }

    /// The latency histogram for one coordinator→worker RPC (a name
    /// from [`WORKER_RPCS`]; unknown names map to the first entry).
    pub(crate) fn worker_rpc_us(&self, rpc: &str) -> &Histogram {
        let i = WORKER_RPCS.iter().position(|k| *k == rpc).unwrap_or(0);
        &self.worker_rpc_us[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_classification() {
        assert_eq!(Endpoint::of("/health"), Endpoint::Health);
        assert_eq!(Endpoint::of("/ledger"), Endpoint::Ledger);
        assert_eq!(Endpoint::of("/ledger/alice"), Endpoint::Ledger);
        assert_eq!(Endpoint::of("/metrics"), Endpoint::Metrics);
        assert_eq!(Endpoint::of("/nope"), Endpoint::Other);
        for e in Endpoint::ALL {
            assert_eq!(Endpoint::ALL[e.index()], e);
        }
    }

    #[test]
    fn handles_resolve_and_record() {
        let m = metrics();
        let before = m.requests_total(Endpoint::Health);
        m.record_request(Endpoint::Health, std::time::Duration::from_micros(5));
        assert_eq!(m.requests_total(Endpoint::Health), before + 1);
        m.apply_us(&Command::RunRound { rounds: 1 }).record(10);
        assert!(m.apply_us(&Command::RunRound { rounds: 1 }).count() >= 1);
    }
}
