//! The gateway's readiness reactor: one thread multiplexing every
//! connection over an OS readiness queue ([`polling::Poller`] — epoll
//! on Linux), with a sharded apply pool executing journaled commands
//! off the reactor thread.
//!
//! ```text
//!             ┌────────────────────── reactor thread ──────────────────────┐
//!  accept ──▶ │ non-blocking accept → register(token, READ)                │
//!             │                                                            │
//!  readable ─▶│ read loop → RequestParser.feed → requests (pipelined)      │
//!             │    GET /health        → answered inline (atomics only)     │
//!             │    everything else    → Job{token, seq} → apply pool ─┐    │
//!             │                                                       │    │
//!  waker ────▶│ drain Completions → done[seq] → ordered write-out     │    │
//!             │    (responses leave in request order; partial writes  │    │
//!             │     park in `wb` under WRITE interest)                │    │
//!             │                                                       │    │
//!  timer ────▶│ TimerWheel.advance → close idle connections           │    │
//!             └───────────────────────────────────────────────────────┼────┘
//!                                                                     ▼
//!                      apply workers (conn-sharded): route() → node.apply
//!                      → journal fsync → Completion → waker.wake()
//! ```
//!
//! Invariants:
//!
//! * **Ordered responses.** Every parsed request gets a per-connection
//!   sequence number; responses are written strictly in sequence order
//!   no matter which thread finished first. Pipelined clients see
//!   responses in request order (RFC 9112 §9.3.2).
//! * **Per-connection command order.** A connection's non-GET requests
//!   all hash to the same apply worker, so its mutations journal in the
//!   order it sent them.
//! * **Bounded pipelining.** At most `max_pipeline` requests per
//!   connection are in flight; past that the reactor stops *reading*
//!   the socket (read interest drops), pushing backpressure into the
//!   peer's TCP window instead of server memory.
//! * **No blocking on the reactor thread.** Only requests the
//!   service's [`Service::handle_inline`] vouches for (lock-free
//!   observability endpoints) are answered inline; any request that
//!   can touch a lock or the disk runs on the pool.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polling::{Interest, Poller, Waker};

use crate::gateway::{err_body, GatewayConfig, Service};
use crate::http::{HttpError, Request, RequestParser, Response};
use crate::metrics::{metrics, Endpoint};
use crate::timer::TimerWheel;

/// Token of the accept socket.
pub(crate) const TOKEN_LISTENER: usize = 0;
/// Token of the cross-thread waker fd.
pub(crate) const TOKEN_WAKER: usize = 1;
/// First token handed to an accepted connection.
pub(crate) const TOKEN_BASE: usize = 2;

/// Read chunk size. Level-triggered polling re-arms anything beyond
/// this, so it bounds per-syscall work, not throughput.
const READ_CHUNK: usize = 16 * 1024;

/// A parsed request travelling to the apply pool.
pub(crate) struct Job {
    token: usize,
    seq: u64,
    req: Request,
    close: bool,
    /// Endpoint classification (latency/count series label).
    endpoint: Endpoint,
    /// Parse time; queue wait and wall latency measure from here.
    start: Instant,
}

/// A serialized response travelling back to the reactor.
pub(crate) struct Completion {
    token: usize,
    seq: u64,
    bytes: Vec<u8>,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Responses finished out of order, keyed by request sequence.
    done: BTreeMap<u64, Vec<u8>>,
    /// Next request sequence to assign at parse time.
    next_seq: u64,
    /// Next response sequence the socket owes the peer.
    next_write: u64,
    /// Bytes committed to the socket, partially written.
    wb: Vec<u8>,
    wb_pos: usize,
    /// Interest currently installed in the poller.
    interest: Interest,
    /// No more requests will be read (peer EOF, `Connection: close`,
    /// or a parse error already queued its final response).
    read_closed: bool,
    /// Close the socket once every assigned response has been flushed.
    closing: bool,
    /// Idle deadline (authoritative; the wheel holds lazy copies).
    deadline: Instant,
}

impl Conn {
    fn new(stream: TcpStream, deadline: Instant) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(),
            done: BTreeMap::new(),
            next_seq: 0,
            next_write: 0,
            wb: Vec::new(),
            wb_pos: 0,
            interest: Interest::READ,
            read_closed: false,
            closing: false,
            deadline,
        }
    }

    /// Requests parsed but not yet moved into the write buffer.
    fn in_flight(&self) -> u64 {
        self.next_seq - self.next_write
    }

    fn write_pending(&self) -> bool {
        self.wb_pos < self.wb.len()
    }

    /// Nothing left to produce or flush for this peer.
    fn drained(&self) -> bool {
        self.in_flight() == 0 && self.done.is_empty() && !self.write_pending()
    }
}

pub(crate) struct Reactor {
    pub(crate) cfg: GatewayConfig,
    pub(crate) svc: Arc<dyn Service>,
    pub(crate) poller: Poller,
    pub(crate) waker: Arc<Waker>,
    pub(crate) listener: TcpListener,
    pub(crate) job_txs: Vec<Sender<Job>>,
    pub(crate) completions: Receiver<Completion>,
    pub(crate) stop: Arc<AtomicBool>,
}

/// Spawn one apply worker: drains its job queue in FIFO order, runs the
/// route handler (journal append + market mutation for POSTs), and
/// wakes the reactor with the serialized response.
pub(crate) fn apply_worker(
    svc: Arc<dyn Service>,
    jobs: Receiver<Job>,
    completions: Sender<Completion>,
    waker: Arc<Waker>,
) {
    let m = metrics();
    while let Ok(job) = jobs.recv() {
        m.apply_queue_depth.dec();
        m.apply_queue_wait_us
            .record_duration_us(job.start.elapsed());
        let response = {
            let _span = dmp_telemetry::tracer().span(job.endpoint.label(), job.seq);
            svc.handle(&job.req)
        };
        m.record_request(job.endpoint, job.start.elapsed());
        let bytes = response.to_bytes(!job.close);
        if completions
            .send(Completion {
                token: job.token,
                seq: job.seq,
                bytes,
            })
            .is_err()
        {
            return; // reactor gone: shutdown
        }
        let _ = waker.wake();
    }
}

impl Reactor {
    /// Run the event loop until the stop flag is raised.
    pub(crate) fn run(self) {
        let idle = self.cfg.read_timeout;
        // Wheel geometry: 32 buckets spanning 2× the idle timeout, so
        // one lap covers every deadline and ticks stay coarse.
        let tick = (idle / 16).clamp(Duration::from_millis(5), Duration::from_millis(500));
        let mut wheel = TimerWheel::new(tick, 32);
        let mut conns: HashMap<usize, Conn> = HashMap::new();
        let mut next_token = TOKEN_BASE;
        let mut events = Vec::new();

        loop {
            let timeout = wheel.next_timeout(Instant::now());
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_all(&mut conns, &mut next_token, &mut wheel),
                    TOKEN_WAKER => self.waker.drain(),
                    token => {
                        let Some(mut conn) = conns.remove(&token) else {
                            continue; // closed earlier in this batch
                        };
                        let keep = (!ev.readable || self.on_readable(&mut conn))
                            && self.pump(&mut conn, token);
                        if keep {
                            conns.insert(token, conn);
                        } else {
                            let _ = self.poller.deregister(conn.stream.as_raw_fd());
                            metrics().gateway_connections.dec();
                        }
                    }
                }
            }
            self.drain_completions(&mut conns);
            let now = Instant::now();
            for token in wheel.advance(now) {
                self.check_deadline(token, now, &mut conns, &mut wheel, idle);
            }
        }
        // Teardown: deregister before the sockets drop (poller drops
        // with us, but the fallback backend keeps a registry).
        for (_, conn) in conns.drain() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            metrics().gateway_connections.dec();
        }
        // job_txs drop here: apply workers drain their queues and exit.
    }

    fn accept_all(
        &self,
        conns: &mut HashMap<usize, Conn>,
        next_token: &mut usize,
        wheel: &mut TimerWheel,
    ) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = *next_token;
                    *next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    let deadline = Instant::now() + self.cfg.read_timeout;
                    wheel.schedule(token as u64, deadline);
                    conns.insert(token, Conn::new(stream, deadline));
                    let m = metrics();
                    m.gateway_accepts.inc();
                    m.gateway_connections.inc();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient accept errors (EMFILE, aborted handshake):
                // stop this batch, the listener stays registered.
                Err(_) => return,
            }
        }
    }

    /// Pull whatever the socket has. Returns `false` to drop the
    /// connection immediately (I/O error with nothing worth flushing).
    fn on_readable(&self, conn: &mut Conn) -> bool {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if conn.read_closed || conn.in_flight() >= self.cfg.max_pipeline as u64 {
                return true; // paused: bytes stay in the kernel buffer
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    return true; // half-close: flush what is owed first
                }
                Ok(n) => {
                    conn.deadline = Instant::now() + self.cfg.read_timeout;
                    conn.parser.feed(&chunk[..n]);
                    if n < READ_CHUNK {
                        return true; // short read: socket is drained
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false, // reset: nothing to salvage
            }
        }
    }

    /// Turn buffered bytes into requests, dispatch them, move finished
    /// responses out in order, and re-arm interest. Returns `false`
    /// when the connection is finished and must be dropped.
    fn pump(&self, conn: &mut Conn, token: usize) -> bool {
        self.drain_parser(conn, token);
        if !flush(conn) {
            return false;
        }
        if (conn.closing || conn.read_closed) && conn.drained() {
            return false; // everything owed has left; close cleanly
        }
        let want = Interest {
            read: !conn.read_closed && conn.in_flight() < self.cfg.max_pipeline as u64,
            write: conn.write_pending(),
        };
        if conn.interest.read && !want.read && !conn.read_closed {
            // Transition into the paused state: the pipeline cap is
            // pushing backpressure into the peer's TCP window.
            metrics().backpressure_stalls.inc();
        }
        if want != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_err()
            {
                return false;
            }
            conn.interest = want;
        }
        true
    }

    fn drain_parser(&self, conn: &mut Conn, token: usize) {
        while !conn.read_closed && conn.in_flight() < self.cfg.max_pipeline as u64 {
            match conn.parser.next(self.cfg.max_body) {
                Ok(Some(req)) => {
                    let m = metrics();
                    let start = Instant::now();
                    let endpoint = Endpoint::of(&req.path);
                    let close = req.wants_close();
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    m.pipeline_depth.record(conn.in_flight());
                    if close {
                        // Last request on this connection: stop reading
                        // now, close once its response has flushed.
                        conn.read_closed = true;
                        conn.closing = true;
                    }
                    if let Some(response) = self.svc.handle_inline(&req) {
                        // The service vouched this path is lock-free
                        // (observability endpoints): answered on the
                        // reactor thread without risking a stall behind
                        // a round running on the pool.
                        conn.done.insert(seq, response.to_bytes(!close));
                        m.record_request(endpoint, start.elapsed());
                    } else {
                        let worker = token % self.job_txs.len();
                        m.apply_queue_depth.inc();
                        let _ = self.job_txs[worker].send(Job {
                            token,
                            seq,
                            req,
                            close,
                            endpoint,
                            start,
                        });
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    metrics().parse_errors.inc();
                    let response = match e {
                        HttpError::TooLarge => Response::json(413, err_body("request too large")),
                        HttpError::Malformed(msg) => Response::json(400, err_body(&msg)),
                        // Eof/Io never surface from the buffer parser,
                        // but close defensively if they do.
                        _ => Response::json(400, err_body("bad request")),
                    };
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.done.insert(seq, response.to_bytes(false));
                    conn.read_closed = true;
                    conn.closing = true;
                    return;
                }
            }
        }
    }

    fn drain_completions(&self, conns: &mut HashMap<usize, Conn>) {
        loop {
            match self.completions.try_recv() {
                Ok(c) => {
                    let Some(mut conn) = conns.remove(&c.token) else {
                        continue; // connection died while the job ran
                    };
                    conn.done.insert(c.seq, c.bytes);
                    if self.pump(&mut conn, c.token) {
                        conns.insert(c.token, conn);
                    } else {
                        let _ = self.poller.deregister(conn.stream.as_raw_fd());
                        metrics().gateway_connections.dec();
                    }
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return,
            }
        }
    }

    fn check_deadline(
        &self,
        token: u64,
        now: Instant,
        conns: &mut HashMap<usize, Conn>,
        wheel: &mut TimerWheel,
        idle: Duration,
    ) {
        let token_us = token as usize;
        let Some(conn) = conns.get(&token_us) else {
            return; // already closed; lazy wheel entry expires silently
        };
        if conn.in_flight() > 0 || conn.write_pending() || !conn.done.is_empty() {
            // Not idle — requests are being applied or responses are
            // draining. Check again a full idle period from now.
            wheel.schedule(token, now + idle);
            return;
        }
        if conn.deadline <= now {
            // Genuinely idle past the deadline: close. A pinned worker
            // is exactly what this prevents — the reactor sheds the
            // socket without any thread ever having blocked on it.
            let conn = conns.remove(&token_us).expect("checked above");
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            let m = metrics();
            m.idle_reaps.inc();
            m.gateway_connections.dec();
        } else {
            // Activity moved the authoritative deadline; re-arm lazily.
            wheel.schedule(token, conn.deadline);
        }
    }
}

/// Move ordered responses into the write buffer and push bytes at the
/// socket until it would block. Returns `false` on write failure.
fn flush(conn: &mut Conn) -> bool {
    while let Some(bytes) = conn.done.remove(&conn.next_write) {
        conn.wb.extend_from_slice(&bytes);
        conn.next_write += 1;
    }
    while conn.wb_pos < conn.wb.len() {
        match conn.stream.write(&conn.wb[conn.wb_pos..]) {
            Ok(0) => return false,
            Ok(n) => conn.wb_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.wb_pos == conn.wb.len() {
        conn.wb.clear();
        conn.wb_pos = 0;
    }
    true
}
